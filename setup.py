"""Setup shim.

All metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works on environments whose setuptools predates native
PEP 660 editable-wheel support (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
