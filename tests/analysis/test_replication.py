"""Tests for the replication harness."""

import math

import numpy as np
import pytest

from repro.analysis.replication import replicate_synthesizer
from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.exceptions import ConfigurationError
from repro.queries.cumulative import HammingAtLeast
from repro.queries.window import AtLeastMOnes


def window_factory(panel, rho=math.inf):
    def factory(generator):
        return FixedWindowSynthesizer(
            horizon=panel.horizon, window=3, rho=rho, seed=generator,
            noise_method="vectorized",
        )

    return factory


class TestReplicateSynthesizer:
    def test_shapes(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel),
            small_markov_panel,
            [AtLeastMOnes(3, 1), AtLeastMOnes(3, 2)],
            times=[3, 6],
            n_reps=4,
            seed=0,
        )
        assert result.answers.shape == (4, 2, 2)
        assert result.truth.shape == (2, 2)
        assert result.n_reps == 4
        assert result.query_names == ("at_least_1_of_3", "at_least_2_of_3")

    def test_oracle_runs_have_zero_error(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel),
            small_markov_panel,
            [AtLeastMOnes(3, 1)],
            times=[3, 5, 8],
            n_reps=3,
            seed=1,
        )
        assert np.allclose(result.errors(), 0.0)
        assert np.allclose(result.max_abs_error_per_rep(), 0.0)

    def test_undefined_times_are_nan(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel),
            small_markov_panel,
            [AtLeastMOnes(3, 1)],
            times=[2, 3],  # query undefined at t=2
            n_reps=2,
            seed=2,
        )
        assert np.isnan(result.truth[0, 0])
        assert np.isnan(result.answers[:, 0, 0]).all()

    def test_cumulative_release_dispatch(self, small_markov_panel):
        def factory(generator):
            return CumulativeSynthesizer(
                horizon=small_markov_panel.horizon, rho=math.inf, seed=generator
            )

        result = replicate_synthesizer(
            factory,
            small_markov_panel,
            [HammingAtLeast(2)],
            times=[4, 8],
            n_reps=2,
            seed=3,
        )
        assert np.allclose(result.errors(), 0.0)

    def test_reproducible_across_calls(self, small_markov_panel):
        kwargs = dict(
            dataset=small_markov_panel,
            queries=[AtLeastMOnes(3, 1)],
            times=[3, 6],
            n_reps=3,
            seed=7,
        )
        a = replicate_synthesizer(window_factory(small_markov_panel, rho=0.1), **kwargs)
        b = replicate_synthesizer(window_factory(small_markov_panel, rho=0.1), **kwargs)
        assert np.allclose(a.answers, b.answers)

    def test_reps_are_independent(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel, rho=0.05),
            small_markov_panel,
            [AtLeastMOnes(3, 1)],
            times=[6],
            n_reps=6,
            seed=8,
        )
        assert len(set(result.answers[:, 0, 0].tolist())) > 1

    def test_summary_and_summaries(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel, rho=0.1),
            small_markov_panel,
            [AtLeastMOnes(3, 1), AtLeastMOnes(3, 3)],
            times=[3, 6],
            n_reps=5,
            seed=9,
        )
        summaries = result.summaries()
        assert len(summaries) == 2
        assert summaries[1].label == "at_least_3_of_3"
        with pytest.raises(ConfigurationError):
            result.summary(5)

    def test_custom_answer_fn(self, small_markov_panel):
        calls = []

        def spy(release, query, t, debias):
            calls.append((query.name, t, debias))
            return 0.5

        result = replicate_synthesizer(
            window_factory(small_markov_panel),
            small_markov_panel,
            [AtLeastMOnes(3, 1)],
            times=[3],
            n_reps=1,
            seed=10,
            debias=False,
            answer_fn=spy,
        )
        assert calls == [("at_least_1_of_3", 3, False)]
        assert result.answers[0, 0, 0] == 0.5

    def test_validation(self, small_markov_panel):
        with pytest.raises(ConfigurationError):
            replicate_synthesizer(
                window_factory(small_markov_panel), small_markov_panel, [], [3], 2
            )
        with pytest.raises(ConfigurationError):
            replicate_synthesizer(
                window_factory(small_markov_panel),
                small_markov_panel,
                [AtLeastMOnes(3, 1)],
                [],
                2,
            )
        with pytest.raises(ConfigurationError):
            replicate_synthesizer(
                window_factory(small_markov_panel),
                small_markov_panel,
                [AtLeastMOnes(3, 1)],
                [3],
                0,
            )
