"""Tests for the replication harness."""

import math

import numpy as np
import pytest

from repro.analysis.replication import replicate_synthesizer
from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.exceptions import ConfigurationError
from repro.queries.cumulative import HammingAtLeast, HammingExactly
from repro.queries.window import AtLeastMOnes


def window_factory(panel, rho=math.inf):
    def factory(generator):
        return FixedWindowSynthesizer(
            horizon=panel.horizon, window=3, rho=rho, seed=generator,
            noise_method="vectorized",
        )

    return factory


class TestReplicateSynthesizer:
    def test_shapes(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel),
            small_markov_panel,
            [AtLeastMOnes(3, 1), AtLeastMOnes(3, 2)],
            times=[3, 6],
            n_reps=4,
            seed=0,
        )
        assert result.answers.shape == (4, 2, 2)
        assert result.truth.shape == (2, 2)
        assert result.n_reps == 4
        assert result.query_names == ("at_least_1_of_3", "at_least_2_of_3")

    def test_oracle_runs_have_zero_error(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel),
            small_markov_panel,
            [AtLeastMOnes(3, 1)],
            times=[3, 5, 8],
            n_reps=3,
            seed=1,
        )
        assert np.allclose(result.errors(), 0.0)
        assert np.allclose(result.max_abs_error_per_rep(), 0.0)

    def test_undefined_times_are_nan(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel),
            small_markov_panel,
            [AtLeastMOnes(3, 1)],
            times=[2, 3],  # query undefined at t=2
            n_reps=2,
            seed=2,
        )
        assert np.isnan(result.truth[0, 0])
        assert np.isnan(result.answers[:, 0, 0]).all()

    def test_cumulative_release_dispatch(self, small_markov_panel):
        def factory(generator):
            return CumulativeSynthesizer(
                horizon=small_markov_panel.horizon, rho=math.inf, seed=generator
            )

        result = replicate_synthesizer(
            factory,
            small_markov_panel,
            [HammingAtLeast(2)],
            times=[4, 8],
            n_reps=2,
            seed=3,
        )
        assert np.allclose(result.errors(), 0.0)

    def test_reproducible_across_calls(self, small_markov_panel):
        kwargs = dict(
            dataset=small_markov_panel,
            queries=[AtLeastMOnes(3, 1)],
            times=[3, 6],
            n_reps=3,
            seed=7,
        )
        a = replicate_synthesizer(window_factory(small_markov_panel, rho=0.1), **kwargs)
        b = replicate_synthesizer(window_factory(small_markov_panel, rho=0.1), **kwargs)
        assert np.allclose(a.answers, b.answers)

    def test_reps_are_independent(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel, rho=0.05),
            small_markov_panel,
            [AtLeastMOnes(3, 1)],
            times=[6],
            n_reps=6,
            seed=8,
        )
        assert len(set(result.answers[:, 0, 0].tolist())) > 1

    def test_summary_and_summaries(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel, rho=0.1),
            small_markov_panel,
            [AtLeastMOnes(3, 1), AtLeastMOnes(3, 3)],
            times=[3, 6],
            n_reps=5,
            seed=9,
        )
        summaries = result.summaries()
        assert len(summaries) == 2
        assert summaries[1].label == "at_least_3_of_3"
        with pytest.raises(ConfigurationError):
            result.summary(5)

    def test_custom_answer_fn(self, small_markov_panel):
        calls = []

        def spy(release, query, t, debias):
            calls.append((query.name, t, debias))
            return 0.5

        result = replicate_synthesizer(
            window_factory(small_markov_panel),
            small_markov_panel,
            [AtLeastMOnes(3, 1)],
            times=[3],
            n_reps=1,
            seed=10,
            debias=False,
            answer_fn=spy,
            # The spy records calls in-process; forked workers would keep
            # their side effects, so pin the serial strategy here.
            strategy="serial",
        )
        assert calls == [("at_least_1_of_3", 3, False)]
        assert result.answers[0, 0, 0] == 0.5

    def test_validation(self, small_markov_panel):
        with pytest.raises(ConfigurationError):
            replicate_synthesizer(
                window_factory(small_markov_panel), small_markov_panel, [], [3], 2
            )
        with pytest.raises(ConfigurationError):
            replicate_synthesizer(
                window_factory(small_markov_panel),
                small_markov_panel,
                [AtLeastMOnes(3, 1)],
                [],
                2,
            )
        with pytest.raises(ConfigurationError):
            replicate_synthesizer(
                window_factory(small_markov_panel),
                small_markov_panel,
                [AtLeastMOnes(3, 1)],
                [3],
                0,
            )


def cumulative_factory(panel, rho=math.inf, engine="vectorized", counter="binary_tree"):
    # engine is pinned (not env-resolved): the batched-strategy tests need
    # the native bank even when the suite runs under REPRO_ENGINE=scalar.
    def factory(generator):
        return CumulativeSynthesizer(
            horizon=panel.horizon, rho=rho, counter=counter, seed=generator,
            engine=engine, noise_method="vectorized",
        )

    return factory


class TestStrategies:
    """The batched / process / serial strategies agree where promised."""

    def test_noiseless_bit_exact_across_strategies(self, small_markov_panel):
        kwargs = dict(
            dataset=small_markov_panel,
            queries=[HammingAtLeast(1), HammingAtLeast(3)],
            times=[2, 5, 8],
            n_reps=4,
            seed=0,
        )
        results = {
            s: replicate_synthesizer(
                cumulative_factory(small_markov_panel), strategy=s, **kwargs
            )
            for s in ("serial", "process", "batched")
        }
        assert (results["serial"].answers == results["batched"].answers).all()
        assert (results["serial"].answers == results["process"].answers).all()

    def test_process_bit_exact_with_noise(self, small_markov_panel):
        # Same spawned per-rep generators => identical answers, noise and all.
        kwargs = dict(
            dataset=small_markov_panel,
            queries=[AtLeastMOnes(3, 1)],
            times=[3, 6],
            n_reps=5,
            seed=1,
        )
        serial = replicate_synthesizer(
            window_factory(small_markov_panel, rho=0.05), strategy="serial", **kwargs
        )
        pooled = replicate_synthesizer(
            window_factory(small_markov_panel, rho=0.05),
            strategy="process",
            n_jobs=2,
            **kwargs,
        )
        assert (serial.answers == pooled.answers).all()

    def test_batched_with_noise_shapes_truth_and_masks(self, small_markov_panel):
        kwargs = dict(
            dataset=small_markov_panel,
            queries=[HammingAtLeast(2), HammingExactly(1)],
            times=[1, 4, 8],
            n_reps=6,
            seed=2,
        )
        batched = replicate_synthesizer(
            cumulative_factory(small_markov_panel, rho=0.1),
            strategy="batched",
            **kwargs,
        )
        serial = replicate_synthesizer(
            cumulative_factory(small_markov_panel, rho=0.1),
            strategy="serial",
            **kwargs,
        )
        assert batched.answers.shape == serial.answers.shape
        assert batched.query_names == serial.query_names
        assert (batched.truth == serial.truth).all()
        assert (np.isnan(batched.answers) == np.isnan(serial.answers)).all()
        # Noise realizations differ across reps (not a broadcasting bug).
        assert len(set(batched.answers[:, 0, -1].tolist())) > 1

    def test_auto_uses_batched_for_cumulative(self, small_markov_panel, monkeypatch):
        # auto == batched for an eligible factory: identical under one seed.
        calls = []
        from repro.core import replicated

        original = replicated.replicate_cumulative

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(replicated, "replicate_cumulative", spy)
        monkeypatch.delenv("REPRO_REPLICATION_STRATEGY", raising=False)
        replicate_synthesizer(
            cumulative_factory(small_markov_panel),
            small_markov_panel,
            [HammingAtLeast(1)],
            [4],
            n_reps=2,
            seed=3,
        )
        assert calls  # default strategy (auto) took the batched path

    def test_auto_falls_back_for_window_factory(self, small_markov_panel):
        result = replicate_synthesizer(
            window_factory(small_markov_panel),
            small_markov_panel,
            [AtLeastMOnes(3, 1)],
            [4],
            n_reps=2,
            seed=4,
            strategy="auto",
        )
        assert np.allclose(result.errors(), 0.0)

    def test_explicit_batched_rejects_window_factory(self, small_markov_panel):
        with pytest.raises(ConfigurationError):
            replicate_synthesizer(
                window_factory(small_markov_panel),
                small_markov_panel,
                [AtLeastMOnes(3, 1)],
                [4],
                n_reps=2,
                strategy="batched",
            )

    def test_explicit_batched_rejects_scalar_engine(self, small_markov_panel):
        with pytest.raises(ConfigurationError):
            replicate_synthesizer(
                cumulative_factory(small_markov_panel, engine="scalar"),
                small_markov_panel,
                [HammingAtLeast(1)],
                [4],
                n_reps=2,
                strategy="batched",
            )

    def test_explicit_batched_rejects_fallback_counter(self, small_markov_panel):
        with pytest.raises(ConfigurationError):
            replicate_synthesizer(
                cumulative_factory(small_markov_panel, counter="honaker"),
                small_markov_panel,
                [HammingAtLeast(1)],
                [4],
                n_reps=2,
                strategy="batched",
            )

    def test_custom_answer_fn_skips_batched(self, small_markov_panel):
        calls = []

        def spy(release, query, t, debias):
            calls.append(t)
            return 0.0

        replicate_synthesizer(
            cumulative_factory(small_markov_panel),
            small_markov_panel,
            [HammingAtLeast(1)],
            [4],
            n_reps=1,
            seed=5,
            answer_fn=spy,
            strategy="auto",
        )
        assert calls == [4]

    def test_unknown_strategy_rejected(self, small_markov_panel):
        with pytest.raises(ConfigurationError):
            replicate_synthesizer(
                window_factory(small_markov_panel),
                small_markov_panel,
                [AtLeastMOnes(3, 1)],
                [4],
                n_reps=1,
                strategy="gpu",
            )


class TestStrategyResolution:
    def test_env_var_resolution(self, monkeypatch):
        from repro.analysis.replication import resolve_strategy

        monkeypatch.delenv("REPRO_REPLICATION_STRATEGY", raising=False)
        assert resolve_strategy(None) == "auto"
        monkeypatch.setenv("REPRO_REPLICATION_STRATEGY", "serial")
        assert resolve_strategy(None) == "serial"
        assert resolve_strategy("batched") == "batched"  # explicit beats env
        monkeypatch.setenv("REPRO_REPLICATION_STRATEGY", "sclar")
        with pytest.raises(ConfigurationError):
            resolve_strategy(None)

    def test_n_jobs_resolution(self, monkeypatch):
        from repro.analysis.replication import resolve_n_jobs

        monkeypatch.delenv("REPRO_N_JOBS", raising=False)
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(None) >= 1
        monkeypatch.setenv("REPRO_N_JOBS", "2")
        assert resolve_n_jobs(None) == 2
        monkeypatch.setenv("REPRO_N_JOBS", "zero")
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(None)
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(0)


class TestStrategySoftening:
    """window_strategy / cumulative_strategy downgrade inapplicable 'batched'."""

    def test_window_strategy_softens_explicit_and_env(self, monkeypatch):
        from repro.analysis.replication import window_strategy

        monkeypatch.delenv("REPRO_REPLICATION_STRATEGY", raising=False)
        assert window_strategy("batched") == "auto"
        assert window_strategy("process") == "process"
        assert window_strategy(None) == "auto"
        # The env var must soften exactly like the explicit flag.
        monkeypatch.setenv("REPRO_REPLICATION_STRATEGY", "batched")
        assert window_strategy(None) == "auto"

    def test_cumulative_strategy_softens_ineligible_combos(self, monkeypatch):
        from repro.analysis.replication import cumulative_strategy

        monkeypatch.delenv("REPRO_REPLICATION_STRATEGY", raising=False)
        assert cumulative_strategy("batched", "vectorized", "binary_tree") == "batched"
        assert cumulative_strategy("batched", "scalar", "binary_tree") == "auto"
        assert cumulative_strategy("batched", "vectorized", "honaker") == "auto"
        assert cumulative_strategy("serial", "scalar", "honaker") == "serial"
        monkeypatch.setenv("REPRO_REPLICATION_STRATEGY", "batched")
        assert cumulative_strategy(None, "vectorized", "honaker") == "auto"

    def test_window_experiment_runs_under_batched_env(
        self, small_markov_panel, monkeypatch
    ):
        from repro.experiments.sweeps import _mean_abs_error

        monkeypatch.setenv("REPRO_REPLICATION_STRATEGY", "batched")
        error = _mean_abs_error(
            small_markov_panel, 0.1, n_reps=2, seed=0, noise_method="vectorized"
        )
        assert error >= 0.0


class TestHammingExactlyAboveHorizon:
    def test_all_strategies_agree_on_structurally_empty_threshold(
        self, small_markov_panel
    ):
        horizon = small_markov_panel.horizon
        query = HammingExactly(horizon + 2)
        kwargs = dict(
            dataset=small_markov_panel,
            queries=[query],
            times=[horizon],
            n_reps=2,
            seed=6,
        )
        for strategy in ("serial", "process", "batched"):
            result = replicate_synthesizer(
                cumulative_factory(small_markov_panel), strategy=strategy, **kwargs
            )
            assert (result.answers == 0.0).all(), strategy
