"""Tests for the noise-aware confidence intervals."""


import pytest

from repro.analysis.confidence import (
    cumulative_answer_ci,
    normal_quantile,
    window_answer_ci,
)
from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.generators import two_state_markov
from repro.exceptions import ConfigurationError
from repro.queries.cumulative import HammingAtLeast
from repro.queries.window import AllOnes, AtLeastMOnes
from repro.rng import spawn


class TestNormalQuantile:
    def test_known_values(self):
        assert normal_quantile(0.95) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.99) == pytest.approx(2.575829, abs=1e-4)
        assert normal_quantile(0.6826894921) == pytest.approx(1.0, abs=1e-4)

    def test_symmetric_small_level(self):
        assert normal_quantile(0.5) == pytest.approx(0.674490, abs=1e-4)

    def test_extreme_levels(self):
        assert normal_quantile(0.9999) == pytest.approx(3.890592, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            normal_quantile(0.0)
        with pytest.raises(ConfigurationError):
            normal_quantile(1.0)

    def test_monotone(self):
        assert normal_quantile(0.9) < normal_quantile(0.95) < normal_quantile(0.99)


@pytest.fixture(scope="module")
def panel():
    return two_state_markov(2500, 12, p_stay=0.85, p_enter=0.02, seed=0)


class TestWindowCI:
    def test_interval_contains_estimate(self, panel):
        synth = FixedWindowSynthesizer(
            horizon=12, window=3, rho=0.05, seed=1, noise_method="vectorized"
        )
        release = synth.run(panel)
        query = AtLeastMOnes(3, 1)
        lower, upper = window_answer_ci(release, query, 6)
        estimate = release.answer(query, 6)
        assert lower < estimate < upper

    def test_width_shrinks_with_budget(self, panel):
        query = AllOnes(3)

        def width(rho):
            synth = FixedWindowSynthesizer(
                horizon=12, window=3, rho=rho, seed=2, noise_method="vectorized"
            )
            release = synth.run(panel)
            lower, upper = window_answer_ci(release, query, 9)
            return upper - lower

        assert width(0.5) < width(0.005)

    def test_width_grows_with_level(self, panel):
        synth = FixedWindowSynthesizer(
            horizon=12, window=3, rho=0.05, seed=3, noise_method="vectorized"
        )
        release = synth.run(panel)
        query = AllOnes(3)
        narrow = window_answer_ci(release, query, 6, level=0.80)
        wide = window_answer_ci(release, query, 6, level=0.99)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_unsupported_width_rejected(self, panel):
        synth = FixedWindowSynthesizer(
            horizon=12, window=3, rho=0.05, seed=4, noise_method="vectorized"
        )
        release = synth.run(panel)
        with pytest.raises(ConfigurationError):
            window_answer_ci(release, AllOnes(4), 6)

    def test_empirical_coverage(self, panel):
        # 95% nominal: across 40 independent runs, the truth should fall
        # inside in the vast majority (allow Monte-Carlo slack: >= 85%).
        query = AtLeastMOnes(3, 2)
        t = 12
        truth = query.evaluate(panel, t)
        covered = 0
        runs = 40
        for generator in spawn(5, runs):
            synth = FixedWindowSynthesizer(
                horizon=12, window=3, rho=0.02, seed=generator,
                noise_method="vectorized",
            )
            release = synth.run(panel)
            lower, upper = window_answer_ci(release, query, t, level=0.95)
            covered += lower <= truth <= upper
        assert covered / runs >= 0.85


class TestCumulativeCI:
    def test_interval_contains_estimate(self, panel):
        synth = CumulativeSynthesizer(
            horizon=12, rho=0.05, seed=6, noise_method="vectorized"
        )
        release = synth.run(panel)
        query = HammingAtLeast(3)
        lower, upper = cumulative_answer_ci(release, query, 8)
        assert lower < release.answer(query, 8) < upper

    def test_inactive_threshold_degenerate_interval(self, panel):
        synth = CumulativeSynthesizer(
            horizon=12, rho=0.05, seed=7, noise_method="vectorized"
        )
        # Observe only 2 rounds: counter b=5 not created yet.
        columns = panel.columns()
        synth.observe(next(columns))
        synth.observe(next(columns))
        release = synth.release
        lower, upper = cumulative_answer_ci(release, HammingAtLeast(5), 2)
        assert lower == upper == 0.0

    def test_non_threshold_query_rejected(self, panel):
        synth = CumulativeSynthesizer(
            horizon=12, rho=0.05, seed=8, noise_method="vectorized"
        )
        release = synth.run(panel)
        with pytest.raises(ConfigurationError):
            cumulative_answer_ci(release, AllOnes(3), 6)

    def test_empirical_coverage(self, panel):
        query = HammingAtLeast(3)
        t = 12
        truth = query.evaluate(panel, t)
        covered = 0
        runs = 40
        for generator in spawn(9, runs):
            synth = CumulativeSynthesizer(
                horizon=12, rho=0.02, seed=generator, noise_method="vectorized"
            )
            release = synth.run(panel)
            lower, upper = cumulative_answer_ci(release, query, t, level=0.95)
            covered += lower <= truth <= upper
        assert covered / runs >= 0.85


class TestZeroVarianceNoise:
    """CIs must stay finite and NaN-free when the noise has zero variance."""

    @pytest.fixture
    def panel(self):
        return two_state_markov(400, 12, 0.8, 0.1, seed=3)

    def test_window_ci_infinite_rho(self, panel):
        import math

        synth = FixedWindowSynthesizer(horizon=12, window=3, rho=math.inf, seed=1)
        release = synth.run(panel)
        query = AtLeastMOnes(3, 1)
        lower, upper = window_answer_ci(release, query, 6)
        assert math.isfinite(lower) and math.isfinite(upper)
        # sigma = 0 leaves only the rounding term: a degenerate-width band
        # still brackets its own estimate.
        assert lower <= release.answer(query, 6) <= upper

    def test_cumulative_ci_infinite_rho(self, panel):
        import math

        synth = CumulativeSynthesizer(horizon=12, rho=math.inf, seed=1)
        release = synth.run(panel)
        lower, upper = cumulative_answer_ci(release, HammingAtLeast(3), 12)
        assert math.isfinite(lower) and math.isfinite(upper)
        assert lower <= release.answer(HammingAtLeast(3), 12) <= upper

    def test_interval_width_shrinks_with_level(self, panel):
        synth = FixedWindowSynthesizer(horizon=12, window=3, rho=0.05, seed=2)
        release = synth.run(panel)
        query = AtLeastMOnes(3, 1)
        narrow = window_answer_ci(release, query, 6, level=0.5)
        wide = window_answer_ci(release, query, 6, level=0.99)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])
