"""Tests for metrics, series summaries, and text table rendering."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    SeriesSummary,
    bias,
    max_abs_error,
    percentile_bands,
    rmse,
)
from repro.analysis.tables import render_comparison_table, render_series_table
from repro.exceptions import ConfigurationError


class TestScalarMetrics:
    def test_max_abs_error(self):
        assert max_abs_error([1.0, 2.0, 3.5], [1.0, 2.5, 3.0]) == pytest.approx(0.5)

    def test_max_abs_error_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            max_abs_error(np.array([]), np.array([]))

    def test_rmse_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="rmse"):
            rmse(np.array([]), np.array([]))

    def test_bias_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="bias"):
            bias(np.array([]), 1.0)

    @pytest.mark.parametrize("metric", [max_abs_error, bias, rmse])
    def test_shape_mismatch_rejected(self, metric):
        with pytest.raises(ConfigurationError, match="broadcast"):
            metric(np.zeros((2, 3)), np.zeros(4))

    def test_broadcastable_shapes_accepted(self):
        # (reps, times) against a (times,) truth row is the common layout.
        estimates = np.array([[1.0, 2.0], [3.0, 4.0]])
        truth = np.array([1.0, 2.0])
        assert max_abs_error(estimates, truth) == pytest.approx(2.0)
        assert rmse(estimates, truth) == pytest.approx(np.sqrt(2.0))

    def test_bias_signed(self):
        assert bias([1.0, 3.0], 1.0) == pytest.approx(1.0)
        assert bias([0.0, 0.0], 1.0) == pytest.approx(-1.0)

    def test_rmse(self):
        assert rmse([0.0, 2.0], 1.0) == pytest.approx(1.0)

    def test_percentile_bands_shape(self):
        samples = np.random.default_rng(0).normal(size=(100, 5))
        bands = percentile_bands(samples)
        assert bands.shape == (3, 5)
        assert (bands[0] <= bands[1]).all() and (bands[1] <= bands[2]).all()

    def test_percentile_bands_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile_bands(np.zeros((0, 3)))


class TestSeriesSummary:
    def make_summary(self):
        rng = np.random.default_rng(1)
        x = np.arange(1, 6)
        truth = np.linspace(0.1, 0.5, 5)
        samples = truth[None, :] + rng.normal(0, 0.01, size=(200, 5))
        return SeriesSummary.from_samples(x, samples, truth, label="test")

    def test_band_ordering(self):
        summary = self.make_summary()
        assert (summary.lower <= summary.median).all()
        assert (summary.median <= summary.upper).all()

    def test_covers_truth(self):
        summary = self.make_summary()
        assert summary.covers_truth().all()

    def test_max_mean_bias_small_for_unbiased(self):
        summary = self.make_summary()
        assert summary.max_mean_bias < 0.005

    def test_max_median_error(self):
        summary = self.make_summary()
        assert summary.max_median_error < 0.01

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            SeriesSummary.from_samples([1, 2], np.zeros((10, 3)), [0.0, 0.0])
        with pytest.raises(ConfigurationError):
            SeriesSummary.from_samples([1, 2], np.zeros((10, 2)), [0.0, 0.0, 0.0])

    def test_single_repetition(self):
        # One repetition collapses every quantile onto the sample itself.
        x = np.arange(1, 4)
        samples = np.array([[0.1, 0.2, 0.3]])
        summary = SeriesSummary.from_samples(x, samples, [0.1, 0.2, 0.3])
        assert np.array_equal(summary.median, samples[0])
        assert np.array_equal(summary.lower, samples[0])
        assert np.array_equal(summary.upper, samples[0])
        assert np.array_equal(summary.mean, samples[0])
        assert summary.max_median_error == 0.0
        assert summary.covers_truth().all()

    def test_constant_series_zero_variance(self):
        # Zero-variance noise (e.g. the non-private oracle replicated)
        # must produce a degenerate band with no NaNs anywhere.
        x = np.arange(1, 5)
        samples = np.full((30, 4), 0.25)
        summary = SeriesSummary.from_samples(x, samples, np.full(4, 0.25))
        for series in (summary.median, summary.lower, summary.upper, summary.mean):
            assert np.isfinite(series).all()
            assert np.array_equal(series, np.full(4, 0.25))
        assert summary.max_mean_bias == 0.0
        assert summary.covers_truth().all()
        assert rmse(samples, np.full(4, 0.25)) == 0.0
        assert max_abs_error(samples, np.full(4, 0.25)) == 0.0
        assert bias(samples, 0.25) == 0.0

    def test_percentile_bands_single_repetition(self):
        bands = percentile_bands(np.array([[1.0, 2.0, 3.0]]))
        assert bands.shape == (3, 3)
        assert np.isfinite(bands).all()
        assert np.array_equal(bands[0], bands[2])


class TestRendering:
    def test_series_table_contains_all_columns(self):
        summary = SeriesSummary.from_samples(
            [1, 2, 3], np.random.default_rng(2).random((50, 3)), [0.5, 0.5, 0.5],
            label="demo",
        )
        text = render_series_table(summary)
        for header in ("truth", "median", "p2.5", "p97.5", "mean"):
            assert header in text
        assert "demo" in text
        assert len(text.splitlines()) == 3 + 3  # header block + 3 rows

    def test_series_table_extra_columns(self):
        summary = SeriesSummary.from_samples(
            [1, 2], np.random.default_rng(3).random((20, 2)), [0.5, 0.5]
        )
        text = render_series_table(summary, extra_columns={"bound": np.array([0.9, 0.9])})
        assert "bound" in text
        assert "0.9000" in text

    def test_comparison_table(self):
        rows = [
            {"method": "a", "error": 0.5},
            {"method": "b", "error": 0.25},
        ]
        text = render_comparison_table(rows, ["method", "error"], title="demo")
        assert "demo" in text
        assert "0.2500" in text

    def test_comparison_table_missing_cells(self):
        rows = [{"method": "a"}]
        text = render_comparison_table(rows, ["method", "error"])
        assert "a" in text
