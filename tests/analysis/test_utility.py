"""Tests for the pMSE utility scorer and replicated utility harness."""

import numpy as np
import pytest

from repro.analysis.utility import (
    PMSEProbe,
    PMSEScore,
    expected_null_pmse,
    panel_hamming_codes,
    panel_window_codes,
    pmse_panels,
    pmse_release,
    propensity_pmse,
    propensity_pmse_counts,
    score_synthesizer,
    utility_answer,
)
from repro.baselines.clamped import ClampingBaseline
from repro.baselines.nonprivate import NonPrivateSynthesizer
from repro.baselines.recompute import RecomputeBaseline
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.categorical import CategoricalDataset
from repro.data.dataset import LongitudinalDataset
from repro.data.generators import two_state_markov
from repro.exceptions import ConfigurationError, DataValidationError
from repro.queries.window import AtLeastMOnes


class TestPropensityPMSE:
    def test_identical_codes_score_zero(self):
        codes = np.array([0, 1, 2, 3, 0, 1])
        score = propensity_pmse(codes, codes.copy())
        assert score.pmse == 0.0
        assert score.ratio == 0.0

    def test_fresh_sample_ratio_near_one(self):
        # Independent draws from one distribution should average ratio ~1.
        rng = np.random.default_rng(0)
        ratios = []
        for _ in range(200):
            real = rng.integers(0, 8, size=400)
            synthetic = rng.integers(0, 8, size=400)
            ratios.append(propensity_pmse(real, synthetic, n_cells=8).ratio)
        assert np.mean(ratios) == pytest.approx(1.0, abs=0.15)

    def test_shifted_distribution_scores_large(self):
        rng = np.random.default_rng(1)
        real = rng.integers(0, 4, size=500)
        synthetic = rng.integers(4, 8, size=500)
        assert propensity_pmse(real, synthetic).ratio > 10.0

    def test_single_cell_ratio_zero_by_convention(self):
        score = propensity_pmse(np.zeros(10, dtype=int), np.zeros(7, dtype=int))
        assert score.null_pmse == 0.0
        assert score.ratio == 0.0

    @pytest.mark.parametrize(
        "real, synthetic",
        [
            (np.array([]), np.array([0])),
            (np.array([0]), np.array([])),
            (np.zeros((2, 2), dtype=int), np.array([0])),
            (np.array([0.5]), np.array([0])),
            (np.array([-1]), np.array([0])),
        ],
    )
    def test_invalid_codes_rejected(self, real, synthetic):
        with pytest.raises(DataValidationError):
            propensity_pmse(real, synthetic)

    def test_n_cells_too_small_rejected(self):
        with pytest.raises(DataValidationError, match="n_cells"):
            propensity_pmse(np.array([0, 5]), np.array([1]), n_cells=4)

    def test_matches_counts_variant(self):
        rng = np.random.default_rng(2)
        real = rng.integers(0, 6, size=300)
        synthetic = rng.integers(0, 6, size=200)
        from_codes = propensity_pmse(real, synthetic, n_cells=6)
        from_counts = propensity_pmse_counts(
            np.bincount(real, minlength=6), np.bincount(synthetic, minlength=6)
        )
        assert from_codes == from_counts


class TestPropensityPMSECounts:
    def test_fractional_counts_accepted(self):
        score = propensity_pmse_counts([10.5, 4.25], [10.5, 4.25])
        assert score.pmse == 0.0
        assert score.n_real == pytest.approx(14.75)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DataValidationError, match="cell space"):
            propensity_pmse_counts([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_negative_counts_rejected(self):
        with pytest.raises(DataValidationError, match="non-negative"):
            propensity_pmse_counts([1.0, -0.5], [1.0, 1.0])

    def test_zero_mass_rejected(self):
        with pytest.raises(DataValidationError, match="positive mass"):
            propensity_pmse_counts([0.0, 0.0], [1.0, 1.0])


class TestExpectedNullPMSE:
    def test_closed_form(self):
        # df * c(1-c) / N with c = 1/2, N = 200.
        assert expected_null_pmse(100, 100, 7) == pytest.approx(7 * 0.25 / 200)

    def test_zero_df(self):
        assert expected_null_pmse(10, 10, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_null_pmse(0, 10, 3)
        with pytest.raises(ConfigurationError):
            expected_null_pmse(10, 10, -1)


class TestFeaturizers:
    @pytest.fixture
    def panel(self):
        return two_state_markov(100, 8, 0.8, 0.1, seed=0)

    def test_window_codes_match_dataset(self, panel):
        codes = panel_window_codes(panel, 5, 3)
        assert np.array_equal(codes, panel.window_codes(5, 3))

    def test_window_width_clipped_to_t(self, panel):
        codes = panel_window_codes(panel, 2, 5)
        assert np.array_equal(codes, panel.window_codes(2, 2))

    def test_window_validation(self, panel):
        with pytest.raises(ConfigurationError):
            panel_window_codes(panel, 5, 0)
        with pytest.raises(ConfigurationError):
            panel_window_codes(panel, 9, 3)

    def test_hamming_codes_match_dataset(self, panel):
        codes = panel_hamming_codes(panel, 6)
        assert np.array_equal(codes, panel.hamming_weights(6))

    def test_hamming_needs_binary_panel(self):
        cat = CategoricalDataset(np.zeros((4, 3), dtype=np.int64), 3)
        with pytest.raises(ConfigurationError, match="hamming_weights"):
            panel_hamming_codes(cat, 2)

    def test_hamming_time_validation(self, panel):
        with pytest.raises(ConfigurationError):
            panel_hamming_codes(panel, 0)


class TestPMSEPanels:
    def test_identical_panels_score_zero(self):
        panel = two_state_markov(200, 6, 0.8, 0.1, seed=1)
        assert pmse_panels(panel, panel, 6, 3).pmse == 0.0

    def test_alphabet_mismatch_rejected(self):
        binary = two_state_markov(50, 4, 0.8, 0.1, seed=2)
        cat = CategoricalDataset(np.zeros((50, 4), dtype=np.int64), 3)
        with pytest.raises(DataValidationError, match="alphabet"):
            pmse_panels(binary, cat, 4, 2)

    def test_width_clipped_to_synthetic_horizon(self):
        real = two_state_markov(100, 8, 0.8, 0.1, seed=3)
        short = LongitudinalDataset(real.matrix[:, :2])
        score = pmse_panels(real, short, 8, 4)
        # Effective width 2 -> at most 4 binary cells.
        assert score.n_cells <= 4


class TestPMSERelease:
    @pytest.fixture
    def panel(self):
        return two_state_markov(600, 8, 0.85, 0.08, seed=4)

    def test_oracle_scores_zero(self, panel):
        release = NonPrivateSynthesizer(8).run(panel)
        assert pmse_release(panel, release, 8, 3).ratio == 0.0

    def test_padded_release_beats_clamped(self, panel):
        # The §3 story in one assertion: padding + debias scores closer to
        # the truth than clamping, under the same budget and seed count.
        reps = 6
        window_scores = []
        clamped_scores = []
        for seed in range(reps):
            window = FixedWindowSynthesizer(8, 3, 0.05, seed=seed).run(panel)
            clamped = ClampingBaseline(8, 3, 0.05, seed=seed).run(panel)
            window_scores.append(pmse_release(panel, window, 8, 3).ratio)
            clamped_scores.append(pmse_release(panel, clamped, 8, 3).ratio)
        assert 0.0 < np.mean(window_scores) < np.mean(clamped_scores)

    def test_recompute_callable_padding(self, panel):
        release = RecomputeBaseline(8, 3, 0.2, seed=0).run(panel)
        score = pmse_release(panel, release, 8, 3)
        assert np.isfinite(score.ratio)
        # The padded target inflates the real mass by n_pad per cell.
        assert score.n_real > panel.n_individuals

    def test_hamming_features(self, panel):
        release = NonPrivateSynthesizer(8).run(panel)
        score = pmse_release(panel, release, 8, 3, features="hamming")
        assert score.ratio == 0.0
        assert score.n_cells <= 9

    def test_invalid_features_rejected(self, panel):
        release = NonPrivateSynthesizer(8).run(panel)
        with pytest.raises(ConfigurationError, match="features"):
            pmse_release(panel, release, 8, 3, features="logistic")

    def test_release_without_panel_surface_rejected(self, panel):
        with pytest.raises(ConfigurationError, match="no synthetic_data"):
            pmse_release(panel, object(), 8, 3)


class TestProbeAndHarness:
    @pytest.fixture
    def panel(self):
        return two_state_markov(300, 6, 0.85, 0.08, seed=5)

    def test_probe_truth_is_zero(self, panel):
        probe = PMSEProbe(panel, 3)
        assert probe.evaluate(panel, 4) == 0.0
        assert probe.min_time() == 1

    def test_probe_validation(self, panel):
        with pytest.raises(ConfigurationError):
            PMSEProbe(panel, 0)
        with pytest.raises(ConfigurationError):
            PMSEProbe(panel, 3, features="nope")

    def test_utility_answer_dispatch(self, panel):
        release = NonPrivateSynthesizer(6).run(panel)
        probe = PMSEProbe(panel, 3)
        query = AtLeastMOnes(3, 1)
        assert utility_answer(release, probe, 6, True) == 0.0
        assert utility_answer(release, query, 6, True) == pytest.approx(
            query.evaluate(panel, 6)
        )

    def test_score_synthesizer_report(self, panel):
        report = score_synthesizer(
            lambda g: FixedWindowSynthesizer(6, 3, 0.2, seed=g),
            panel,
            [AtLeastMOnes(3, 1)],
            [3, 4, 5, 6],
            n_reps=3,
            seed=11,
            width=3,
            label="window",
            strategy="serial",
        )
        assert report.label == "window"
        assert report.probe_names == ("pmse_ratio",)
        assert report.pmse_ratios().shape == (3, 4)
        assert np.isfinite(report.mean_pmse_ratio)
        assert np.isfinite(report.final_pmse_ratio)
        assert report.query_rmse() > 0.0
        assert report.query_max_abs_error() >= report.query_rmse()

    def test_score_synthesizer_deterministic(self, panel):
        def run():
            return score_synthesizer(
                lambda g: FixedWindowSynthesizer(6, 3, 0.2, seed=g),
                panel,
                [AtLeastMOnes(3, 1)],
                [3, 6],
                n_reps=2,
                seed=42,
                strategy="serial",
            )

        first, second = run(), run()
        assert np.array_equal(first.grid.answers, second.grid.answers)

    def test_unknown_row_rejected(self, panel):
        report = score_synthesizer(
            lambda g: NonPrivateSynthesizer(6),
            panel,
            [AtLeastMOnes(3, 1)],
            [6],
            n_reps=1,
            seed=0,
            strategy="serial",
        )
        with pytest.raises(ConfigurationError, match="unknown row"):
            report.query_rmse("nope")

    def test_report_without_queries(self, panel):
        report = score_synthesizer(
            lambda g: NonPrivateSynthesizer(6),
            panel,
            [],
            [6],
            n_reps=1,
            seed=0,
            strategy="serial",
        )
        assert report.mean_pmse_ratio == 0.0
        with pytest.raises(ConfigurationError, match="no query rows"):
            report.query_rmse()


class TestPMSEScoreDataclass:
    def test_ratio_property(self):
        score = PMSEScore(
            pmse=0.02, null_pmse=0.01, n_real=10, n_synthetic=10, n_cells=4
        )
        assert score.ratio == pytest.approx(2.0)

    def test_zero_null_ratio_zero(self):
        score = PMSEScore(
            pmse=0.0, null_pmse=0.0, n_real=10, n_synthetic=10, n_cells=1
        )
        assert score.ratio == 0.0
