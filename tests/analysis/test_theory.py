"""Tests for the closed-form bounds module."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import (
    corollary_3_3_relative_bound,
    corollary_b1_alpha,
    corollary_b1_weights_unnormalized,
    debiased_error_bound,
    default_n_pad,
    theorem_3_2_bound,
    tree_counter_error_bound,
    tree_levels,
)
from repro.exceptions import ConfigurationError


class TestTheorem32Bound:
    def test_formula(self):
        horizon, window, rho, beta = 12, 3, 0.005, 0.05
        steps = horizon - window + 1
        expected = (math.sqrt(steps / rho) + 1 / math.sqrt(2)) * math.sqrt(
            math.log(2**window * steps / beta)
        )
        assert theorem_3_2_bound(horizon, window, rho, beta) == pytest.approx(expected)

    def test_monotone_in_rho(self):
        assert theorem_3_2_bound(12, 3, 0.01, 0.05) < theorem_3_2_bound(
            12, 3, 0.001, 0.05
        )

    def test_monotone_in_horizon(self):
        assert theorem_3_2_bound(12, 3, 0.01, 0.05) < theorem_3_2_bound(
            24, 3, 0.01, 0.05
        )

    def test_monotone_in_beta(self):
        assert theorem_3_2_bound(12, 3, 0.01, 0.1) < theorem_3_2_bound(
            12, 3, 0.01, 0.01
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theorem_3_2_bound(3, 5, 0.01, 0.05)
        with pytest.raises(ConfigurationError):
            theorem_3_2_bound(12, 3, 0.0, 0.05)
        with pytest.raises(ConfigurationError):
            theorem_3_2_bound(12, 3, 0.01, 1.5)

    @given(
        horizon=st.integers(2, 48),
        rho=st.floats(1e-4, 1.0),
        beta=st.floats(0.001, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_positive(self, horizon, rho, beta):
        assert theorem_3_2_bound(horizon, min(3, horizon), rho, beta) > 0


class TestDefaultNPad:
    def test_ceil_of_bound(self):
        bound = theorem_3_2_bound(12, 3, 0.005, 0.05)
        assert default_n_pad(12, 3, 0.005, 0.05) == math.ceil(bound)

    def test_paper_scale_values(self):
        # rho = 0.005, T = 12, k = 3: padding is in the low hundreds.
        assert 100 < default_n_pad(12, 3, 0.005, 0.05) < 200
        # rho = 0.001 requires more padding than rho = 0.05.
        assert default_n_pad(12, 3, 0.001, 0.05) > default_n_pad(12, 3, 0.05, 0.05)


class TestRelativeBounds:
    def test_debiased_bound_scales_inverse_n(self):
        assert debiased_error_bound(12, 3, 0.005, 0.05, 20000) == pytest.approx(
            theorem_3_2_bound(12, 3, 0.005, 0.05) / 20000
        )

    def test_biased_bound_exceeds_debiased(self):
        debiased = debiased_error_bound(12, 3, 0.005, 0.05, 25000)
        biased = corollary_3_3_relative_bound(12, 3, 0.005, 0.05, 25000, 1.0)
        assert biased > debiased

    def test_biased_bound_grows_with_occupancy(self):
        small = corollary_3_3_relative_bound(12, 3, 0.005, 0.05, 25000, 0.01)
        large = corollary_3_3_relative_bound(12, 3, 0.005, 0.05, 25000, 0.9)
        assert large > small

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            debiased_error_bound(12, 3, 0.005, 0.05, 0)
        with pytest.raises(ConfigurationError):
            corollary_3_3_relative_bound(12, 3, 0.005, 0.05, 100, 1.5)


class TestTreeBounds:
    def test_tree_levels(self):
        assert tree_levels(1) == 1
        assert tree_levels(2) == 1
        assert tree_levels(3) == 2
        assert tree_levels(12) == 4
        assert tree_levels(16) == 4
        assert tree_levels(17) == 5

    def test_tree_levels_validation(self):
        with pytest.raises(ConfigurationError):
            tree_levels(0)

    def test_counter_bound_grows_with_time(self):
        early = tree_counter_error_bound(64, 0.1, 0.05, t=2)
        late = tree_counter_error_bound(64, 0.1, 0.05, t=63)
        assert late > early

    def test_counter_bound_default_time(self):
        assert tree_counter_error_bound(64, 0.1, 0.05) == tree_counter_error_bound(
            64, 0.1, 0.05, t=64
        )

    def test_counter_bound_validation(self):
        with pytest.raises(ConfigurationError):
            tree_counter_error_bound(10, 0.0, 0.05)
        with pytest.raises(ConfigurationError):
            tree_counter_error_bound(10, 0.1, 0.0)


class TestCorollaryB1:
    def test_weights_values(self):
        weights = corollary_b1_weights_unnormalized(12)
        assert len(weights) == 12
        # b = 1: stream length 12 -> levels 4 -> weight 64.
        assert weights[0] == 64
        # b = 12: stream length 1 -> levels 1 -> weight 1.
        assert weights[-1] == 1

    def test_weights_non_increasing(self):
        weights = corollary_b1_weights_unnormalized(20)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_alpha_formula(self):
        horizon, rho, beta, n = 12, 0.005, 0.05, 23374
        total = sum(corollary_b1_weights_unnormalized(horizon))
        expected = math.sqrt(total / rho * math.log(1 / beta)) / n
        assert corollary_b1_alpha(horizon, rho, beta, n) == pytest.approx(expected)

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            corollary_b1_alpha(12, 0.0, 0.05, 100)
        with pytest.raises(ConfigurationError):
            corollary_b1_alpha(12, 0.1, 0.05, 0)
        with pytest.raises(ConfigurationError):
            corollary_b1_alpha(12, 0.1, 2.0, 100)
