"""Tests for the RNG utilities and the public structural protocols."""

import math

import numpy as np
import pytest

from repro.rng import ExactRandom, as_generator, spawn
from repro.types import Release, StreamCounterProtocol, Synthesizer


class TestAsGenerator:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = as_generator(1)
        assert as_generator(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        assert isinstance(as_generator(sequence), np.random.Generator)


class TestSpawn:
    def test_children_independent_and_reproducible(self):
        children_a = spawn(5, 3)
        children_b = spawn(5, 3)
        for a, b in zip(children_a, children_b):
            assert np.allclose(a.random(4), b.random(4))
        draws = [tuple(child.random(4)) for child in spawn(5, 3)]
        assert len(set(draws)) == 3

    def test_spawn_count(self):
        assert len(spawn(0, 7)) == 7
        assert spawn(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(0, -1)

    def test_spawn_from_generator(self):
        children = spawn(as_generator(3), 4)
        assert len(children) == 4


class TestExactRandom:
    def test_randbits_range(self):
        random = ExactRandom(as_generator(0))
        for k in (0, 1, 5, 31, 32, 33, 64, 100):
            value = random.randbits(k)
            assert 0 <= value < (1 << k) if k else value == 0

    def test_randbits_negative_rejected(self):
        with pytest.raises(ValueError):
            ExactRandom(as_generator(0)).randbits(-1)

    def test_randrange_uniformity(self):
        random = ExactRandom(as_generator(1))
        counts = np.zeros(7, dtype=int)
        for _ in range(7000):
            counts[random.randrange(7)] += 1
        assert counts.min() > 800  # roughly uniform

    def test_randrange_large_bound(self):
        random = ExactRandom(as_generator(2))
        bound = 10**30
        values = [random.randrange(bound) for _ in range(20)]
        assert all(0 <= v < bound for v in values)
        assert len(set(values)) > 1

    def test_randrange_invalid(self):
        with pytest.raises(ValueError):
            ExactRandom(as_generator(0)).randrange(0)

    def test_bernoulli_exact_probability(self):
        random = ExactRandom(as_generator(3))
        hits = sum(random.bernoulli(1, 3) for _ in range(9000))
        assert abs(hits / 9000 - 1 / 3) < 0.02

    def test_bernoulli_edges(self):
        random = ExactRandom(as_generator(4))
        assert not random.bernoulli(0, 5)
        assert random.bernoulli(5, 5)

    def test_bernoulli_invalid(self):
        random = ExactRandom(as_generator(5))
        with pytest.raises(ValueError):
            random.bernoulli(6, 5)
        with pytest.raises(ValueError):
            random.bernoulli(1, 0)


class TestProtocols:
    def test_builtin_synthesizers_satisfy_protocol(self):
        from repro.baselines.recompute import RecomputeBaseline
        from repro.core.categorical_window import CategoricalWindowSynthesizer
        from repro.core.cumulative import CumulativeSynthesizer
        from repro.core.fixed_window import FixedWindowSynthesizer

        for synthesizer in (
            FixedWindowSynthesizer(horizon=4, window=2, rho=1.0),
            CumulativeSynthesizer(horizon=4, rho=1.0),
            CategoricalWindowSynthesizer(horizon=4, window=2, alphabet=3, rho=1.0),
            RecomputeBaseline(horizon=4, window=2, rho=1.0),
        ):
            assert isinstance(synthesizer, Synthesizer)

    def test_builtin_releases_satisfy_protocol(self, small_markov_panel):
        from repro.core.cumulative import CumulativeSynthesizer
        from repro.core.fixed_window import FixedWindowSynthesizer

        window_release = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=2, rho=math.inf
        ).run(small_markov_panel)
        cumulative_release = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=math.inf
        ).run(small_markov_panel)
        assert isinstance(window_release, Release)
        assert isinstance(cumulative_release, Release)

    def test_builtin_counters_satisfy_protocol(self):
        from repro.streams.registry import available_counters, make_counter
        from repro.streams.unbounded import UnknownHorizonCounter

        for name in available_counters():
            assert isinstance(
                make_counter(name, horizon=4, rho=1.0), StreamCounterProtocol
            )
        assert isinstance(UnknownHorizonCounter(1.0), StreamCounterProtocol)
