"""Protocol conformance: every synthesizer satisfies :class:`repro.types.Synthesizer`.

The API contract this repo's layers build on: each registered algorithm
and each baseline implements the formal ``Synthesizer`` protocol
(``observe`` / ``run`` / ``release`` / ``config_dict`` / ``state_dict``)
and its releases satisfy ``Release`` (``answer``), so the replication
harness, the utility scorer, and the serving stack can hold any of them
without ad-hoc duck typing.  The deprecated ``observe_column`` /
``observe_round`` spellings keep working for one release window and
warn.
"""

import json
import math

import numpy as np
import pytest

from repro.baselines import (
    ClampingBaseline,
    NonPrivateSynthesizer,
    PrivateDensityBaseline,
    RecomputeBaseline,
)
from repro.core import (
    CategoricalWindowSynthesizer,
    CumulativeSynthesizer,
    FixedWindowSynthesizer,
    MultiAttributeSynthesizer,
)
from repro.serve import ShardedService, StreamingSynthesizer
from repro.serve.streaming import _ALGORITHMS
from repro.types import AttributeFrame, Release, Synthesizer, as_frame

HORIZON = 6
N = 40

#: Every synthesizer the repo ships, by registry/baseline tag.
FACTORIES = {
    "fixed_window": lambda: FixedWindowSynthesizer(HORIZON, 3, 0.2, seed=0),
    "categorical_window": lambda: CategoricalWindowSynthesizer(
        HORIZON, 3, 3, 0.2, seed=0
    ),
    "cumulative": lambda: CumulativeSynthesizer(HORIZON, 0.2, seed=0),
    "multi_attribute": lambda: MultiAttributeSynthesizer(
        HORIZON, 3, 0.2, attributes=["poverty"], seed=0
    ),
    "clamped": lambda: ClampingBaseline(HORIZON, 3, 0.2, seed=0),
    "nonprivate": lambda: NonPrivateSynthesizer(HORIZON),
    "density": lambda: PrivateDensityBaseline(HORIZON, 3, 0.2, seed=0),
    "recompute": lambda: RecomputeBaseline(HORIZON, 3, 0.2, seed=0),
}


def _column(t: int) -> np.ndarray:
    return (np.arange(N) + t) % 2


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_synthesizer_protocol_conformance(tag):
    synth = FACTORIES[tag]()
    release = synth.observe(_column(1))
    assert isinstance(synth, Synthesizer), f"{tag} violates the Synthesizer protocol"
    assert isinstance(release, Release), f"{tag}.observe() must return a Release"
    assert isinstance(synth.release, Release)


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_observe_accepts_single_attribute_frames(tag):
    """The AttributeFrame value type flows through every observe()."""
    synth = FACTORIES[tag]()
    frame = as_frame(_column(1), names=getattr(synth, "attribute_names", None))
    assert isinstance(frame, AttributeFrame)
    synth.observe(frame)
    assert synth.release.t == 1


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_config_dict_is_json_serializable(tag):
    synth = FACTORIES[tag]()
    config = json.loads(json.dumps(synth.config_dict()))
    assert isinstance(config, dict) and config


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_state_dict_returns_a_dict(tag):
    synth = FACTORIES[tag]()
    synth.observe(_column(1))
    assert isinstance(synth.state_dict(), dict)


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_observe_column_shim_warns(tag):
    synth = FACTORIES[tag]()
    with pytest.warns(DeprecationWarning, match="observe"):
        synth.observe_column(_column(1))
    assert synth.release.t == 1


def test_streaming_registry_algorithms_all_conform():
    """Every ``StreamingSynthesizer`` algorithm tag wraps a Synthesizer."""
    for tag, cls in _ALGORITHMS.items():
        synth = FACTORIES[tag]()
        synth.observe(_column(1))
        assert isinstance(synth, Synthesizer), tag
        assert type(synth) is cls


def test_streaming_wrapper_shims_warn():
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=math.inf)
    with pytest.warns(DeprecationWarning, match="observe"):
        service.observe_round(_column(1))
    assert service.t == 1
    service.observe(_column(2))
    assert service.t == 2


def test_sharded_wrapper_shims_warn():
    service = ShardedService(
        2, algorithm="cumulative", horizon=HORIZON, rho=math.inf
    )
    with pytest.warns(DeprecationWarning, match="observe"):
        service.observe_round(_column(1))
    assert service.t == 1
    service.observe(_column(2))
    assert service.t == 2
    service.close()


def test_releases_answer_like_the_protocol_promises():
    """A Release's answer(query, t) is a plain float for every family."""
    from repro.queries import AtLeastMOnes, HammingAtLeast

    probes = {
        "fixed_window": AtLeastMOnes(3, 1),
        "clamped": AtLeastMOnes(3, 1),
        "recompute": AtLeastMOnes(3, 1),
        "density": AtLeastMOnes(3, 1),
        "nonprivate": AtLeastMOnes(3, 1),
        "cumulative": HammingAtLeast(1),
    }
    for tag, query in probes.items():
        synth = FACTORIES[tag]()
        for t in range(1, HORIZON + 1):
            release = synth.observe(_column(t))
        assert isinstance(release.answer(query, HORIZON), float), tag
