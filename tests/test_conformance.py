"""Protocol conformance: every synthesizer satisfies :class:`repro.types.Synthesizer`.

The API contract this repo's layers build on: each registered algorithm
and each baseline implements the formal ``Synthesizer`` protocol
(``observe`` / ``run`` / ``release`` / ``config_dict`` / ``state_dict``)
and its releases satisfy ``Release`` (``answer`` / ``answer_batch``),
so the replication harness, the utility scorer, and the serving stack
can hold any of them without ad-hoc duck typing.  The batch read path
is held to *bit-identity* with the scalar loop here: for every
synthesizer and a mixed workload, ``answer_batch`` must reproduce
``answer`` cell for cell, warm or cold cache, debiased or not.
"""

import json
import math

import numpy as np
import pytest

from repro.baselines import (
    ClampingBaseline,
    NonPrivateSynthesizer,
    PrivateDensityBaseline,
    RecomputeBaseline,
)
from repro.core import (
    CategoricalWindowSynthesizer,
    CumulativeSynthesizer,
    FixedWindowSynthesizer,
    MultiAttributeSynthesizer,
)
from repro.serve import ShardedService, StreamingSynthesizer
from repro.serve.streaming import _ALGORITHMS
from repro.types import AttributeFrame, Release, Synthesizer, as_frame

HORIZON = 6
N = 40

#: Every synthesizer the repo ships, by registry/baseline tag.
FACTORIES = {
    "fixed_window": lambda: FixedWindowSynthesizer(HORIZON, 3, 0.2, seed=0),
    "categorical_window": lambda: CategoricalWindowSynthesizer(
        HORIZON, 3, 3, 0.2, seed=0
    ),
    "cumulative": lambda: CumulativeSynthesizer(HORIZON, 0.2, seed=0),
    "multi_attribute": lambda: MultiAttributeSynthesizer(
        HORIZON, 3, 0.2, attributes=["poverty"], seed=0
    ),
    "clamped": lambda: ClampingBaseline(HORIZON, 3, 0.2, seed=0),
    "nonprivate": lambda: NonPrivateSynthesizer(HORIZON),
    "density": lambda: PrivateDensityBaseline(HORIZON, 3, 0.2, seed=0),
    "recompute": lambda: RecomputeBaseline(HORIZON, 3, 0.2, seed=0),
}


def _column(t: int) -> np.ndarray:
    return (np.arange(N) + t) % 2


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_synthesizer_protocol_conformance(tag):
    synth = FACTORIES[tag]()
    release = synth.observe(_column(1))
    assert isinstance(synth, Synthesizer), f"{tag} violates the Synthesizer protocol"
    assert isinstance(release, Release), f"{tag}.observe() must return a Release"
    assert isinstance(synth.release, Release)


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_observe_accepts_single_attribute_frames(tag):
    """The AttributeFrame value type flows through every observe()."""
    synth = FACTORIES[tag]()
    frame = as_frame(_column(1), names=getattr(synth, "attribute_names", None))
    assert isinstance(frame, AttributeFrame)
    synth.observe(frame)
    assert synth.release.t == 1


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_config_dict_is_json_serializable(tag):
    synth = FACTORIES[tag]()
    config = json.loads(json.dumps(synth.config_dict()))
    assert isinstance(config, dict) and config


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_state_dict_returns_a_dict(tag):
    synth = FACTORIES[tag]()
    synth.observe(_column(1))
    assert isinstance(synth.state_dict(), dict)


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_legacy_observe_spellings_are_gone(tag):
    """The one-release-window deprecation shims have been retired."""
    synth = FACTORIES[tag]()
    assert not hasattr(synth, "observe_column")
    assert not hasattr(synth, "observe_round")


def test_streaming_registry_algorithms_all_conform():
    """Every ``StreamingSynthesizer`` algorithm tag wraps a Synthesizer."""
    for tag, cls in _ALGORITHMS.items():
        synth = FACTORIES[tag]()
        synth.observe(_column(1))
        assert isinstance(synth, Synthesizer), tag
        assert type(synth) is cls


def test_wrapper_shims_are_gone():
    streaming = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=math.inf)
    assert not hasattr(streaming, "observe_round")
    streaming.observe(_column(1))
    assert streaming.t == 1
    sharded = ShardedService(2, algorithm="cumulative", horizon=HORIZON, rho=math.inf)
    assert not hasattr(sharded, "observe_round")
    assert not hasattr(sharded, "observe_round_async")
    sharded.observe(_column(1))
    assert sharded.t == 1
    sharded.close()


def test_releases_answer_like_the_protocol_promises():
    """A Release's answer(query, t) is a plain float for every family."""
    from repro.queries import AtLeastMOnes, HammingAtLeast

    probes = {
        "fixed_window": AtLeastMOnes(3, 1),
        "clamped": AtLeastMOnes(3, 1),
        "recompute": AtLeastMOnes(3, 1),
        "density": AtLeastMOnes(3, 1),
        "nonprivate": AtLeastMOnes(3, 1),
        "cumulative": HammingAtLeast(1),
    }
    for tag, query in probes.items():
        synth = FACTORIES[tag]()
        for t in range(1, HORIZON + 1):
            release = synth.observe(_column(t))
        assert isinstance(release.answer(query, HORIZON), float), tag


# ----------------------------------------------------------------------
# Batched read path: bit-identity with the scalar loop
# ----------------------------------------------------------------------


def _workloads():
    from repro.queries import AtLeastMOnes, HammingAtLeast, HammingExactly
    from repro.queries.categorical import CategoryAtLeastM

    window_mix = [
        AtLeastMOnes(3, 1),
        AtLeastMOnes(2, 2),
        AtLeastMOnes(4, 1),  # min_time 4 > first answerable round -> NaN cell
        AtLeastMOnes(5, 1),  # wider than the window -> record-level fallback
    ]
    return {
        "fixed_window": (window_mix, range(3, HORIZON + 1)),
        "clamped": (window_mix, range(3, HORIZON + 1)),
        "recompute": (window_mix, range(3, HORIZON + 1)),
        "density": ([AtLeastMOnes(3, 1), AtLeastMOnes(2, 2)], range(3, HORIZON + 1)),
        "nonprivate": (window_mix, range(3, HORIZON + 1)),
        "multi_attribute": (window_mix, range(3, HORIZON + 1)),
        "cumulative": (
            [HammingAtLeast(1), HammingExactly(2), HammingAtLeast(HORIZON + 9)],
            range(1, HORIZON + 1),
        ),
        "categorical_window": (
            [
                CategoryAtLeastM(3, 3, category=1, m=1),
                CategoryAtLeastM(2, 3, category=0, m=2),
            ],
            range(3, HORIZON + 1),
        ),
    }


def _scalar_reference(release, queries, times, **kwargs):
    grid = np.full((len(queries), len(times)), np.nan, dtype=np.float64)
    for qi, query in enumerate(queries):
        for ti, t in enumerate(times):
            if t >= query.min_time():
                grid[qi, ti] = release.answer(query, t, **kwargs)
    return grid


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_answer_batch_is_bit_identical_to_scalar_loop(tag):
    """Cold cache, warm cache, and scalar loop agree float-for-float."""
    queries, times = _workloads()[tag]
    times = list(times)
    synth = FACTORIES[tag]()
    for t in range(1, HORIZON + 1):
        release = synth.observe(_column(t))
    cold = release.answer_batch(queries, times)
    assert cold.shape == (len(queries), len(times))
    warm = release.answer_batch(queries, times)
    reference = _scalar_reference(release, queries, times)
    assert np.array_equal(cold, reference, equal_nan=True), tag
    assert np.array_equal(warm, reference, equal_nan=True), tag


@pytest.mark.parametrize("tag", ["fixed_window", "clamped", "categorical_window"])
def test_answer_batch_honors_debias_false(tag):
    queries, times = _workloads()[tag]
    times = list(times)
    synth = FACTORIES[tag]()
    for t in range(1, HORIZON + 1):
        release = synth.observe(_column(t))
    biased = release.answer_batch(queries, times, debias=False)
    reference = _scalar_reference(release, queries, times, debias=False)
    assert np.array_equal(biased, reference, equal_nan=True)
    debiased = release.answer_batch(queries, times)
    assert not np.array_equal(biased, debiased, equal_nan=True)
