"""Tests for the exact Bernoulli(exp(-gamma)) sampler."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.bernoulli_exp import bernoulli_exp, bernoulli_exp_le1
from repro.rng import ExactRandom, as_generator


def make_random(seed=0):
    return ExactRandom(as_generator(seed))


class TestBernoulliExpLe1:
    def test_gamma_zero_is_always_true(self):
        random = make_random()
        assert all(bernoulli_exp_le1(Fraction(0), random) for _ in range(50))

    def test_gamma_one_matches_exp_minus_one(self):
        random = make_random(1)
        n = 4000
        hits = sum(bernoulli_exp_le1(Fraction(1), random) for _ in range(n))
        assert abs(hits / n - math.exp(-1)) < 0.03

    def test_gamma_half_matches(self):
        random = make_random(2)
        n = 4000
        hits = sum(bernoulli_exp_le1(Fraction(1, 2), random) for _ in range(n))
        assert abs(hits / n - math.exp(-0.5)) < 0.03

    def test_rejects_gamma_above_one(self):
        with pytest.raises(ValueError):
            bernoulli_exp_le1(Fraction(3, 2), make_random())

    def test_rejects_negative_gamma(self):
        with pytest.raises(ValueError):
            bernoulli_exp_le1(Fraction(-1, 2), make_random())

    def test_returns_bool(self):
        assert isinstance(bernoulli_exp_le1(Fraction(1, 3), make_random()), bool)


class TestBernoulliExp:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bernoulli_exp(Fraction(-1), make_random())

    def test_large_gamma_rarely_true(self):
        random = make_random(3)
        hits = sum(bernoulli_exp(Fraction(10), random) for _ in range(500))
        # exp(-10) ~ 4.5e-5: 500 trials should essentially never hit.
        assert hits <= 1

    def test_gamma_two_matches_exp_minus_two(self):
        random = make_random(4)
        n = 4000
        hits = sum(bernoulli_exp(Fraction(2), random) for _ in range(n))
        assert abs(hits / n - math.exp(-2)) < 0.025

    def test_gamma_zero_always_true(self):
        random = make_random(5)
        assert all(bernoulli_exp(Fraction(0), random) for _ in range(50))

    @given(st.integers(min_value=0, max_value=40), st.integers(min_value=1, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_any_rational_gamma_returns_bool(self, numerator, denominator):
        result = bernoulli_exp(Fraction(numerator, denominator), make_random(9))
        assert isinstance(result, bool)

    def test_deterministic_given_seed(self):
        draws_a = [bernoulli_exp(Fraction(1, 2), make_random(7)) for _ in range(1)]
        draws_b = [bernoulli_exp(Fraction(1, 2), make_random(7)) for _ in range(1)]
        assert draws_a == draws_b
