"""Tests for the discrete Gaussian histogram mechanism."""

import numpy as np
import pytest

from repro.dp.mechanisms import GaussianHistogramMechanism, noisy_count
from repro.exceptions import ConfigurationError


class TestNoisyCount:
    def test_zero_noise_returns_count(self):
        assert noisy_count(42, 0, seed=0) == 42

    def test_returns_int(self):
        assert isinstance(noisy_count(10, 25, seed=1), int)

    def test_noise_actually_added(self):
        draws = {noisy_count(0, 1000, seed=s, method="vectorized") for s in range(10)}
        assert len(draws) > 1


class TestGaussianHistogramMechanism:
    def test_rejects_bad_bins(self):
        with pytest.raises(ConfigurationError):
            GaussianHistogramMechanism(0, 1.0)

    def test_release_shape_validation(self):
        mechanism = GaussianHistogramMechanism(4, 10, seed=0)
        with pytest.raises(ConfigurationError):
            mechanism.release(np.zeros(5, dtype=np.int64))

    def test_release_dtype_validation(self):
        mechanism = GaussianHistogramMechanism(4, 10, seed=0)
        with pytest.raises(ConfigurationError):
            mechanism.release(np.zeros(4, dtype=np.float64))

    def test_zero_variance_identity(self):
        mechanism = GaussianHistogramMechanism(8, 0, seed=0)
        counts = np.arange(8)
        assert (mechanism.release(counts) == counts).all()

    def test_rho_per_release_matches_paper(self):
        # sigma^2 = (T-k+1)/(2 rho): per release rho/(T-k+1).
        horizon_steps, rho = 10, 0.005
        sigma_sq = horizon_steps / (2 * rho)
        mechanism = GaussianHistogramMechanism(8, sigma_sq, seed=0)
        assert mechanism.rho_per_release == pytest.approx(rho / horizon_steps)

    def test_rho_per_release_infinite_when_noiseless(self):
        mechanism = GaussianHistogramMechanism(4, 0, seed=0)
        assert mechanism.rho_per_release == float("inf")

    def test_sensitivity_scales_cost(self):
        base = GaussianHistogramMechanism(4, 100, sensitivity=1.0, seed=0)
        subst = GaussianHistogramMechanism(4, 100, sensitivity=2**0.5, seed=0)
        assert subst.rho_per_release == pytest.approx(2 * base.rho_per_release)

    def test_noise_is_integer_valued(self):
        mechanism = GaussianHistogramMechanism(16, 50, seed=1, method="vectorized")
        released = mechanism.release(np.zeros(16, dtype=np.int64))
        assert np.issubdtype(released.dtype, np.integer)

    def test_noise_roughly_centered(self):
        mechanism = GaussianHistogramMechanism(512, 100, seed=2, method="vectorized")
        released = mechanism.release(np.zeros(512, dtype=np.int64))
        assert abs(released.mean()) < 3.0

    def test_negative_outputs_possible(self):
        mechanism = GaussianHistogramMechanism(256, 10000, seed=3, method="vectorized")
        released = mechanism.release(np.zeros(256, dtype=np.int64))
        assert (released < 0).any()
