"""Tests for zCDP accounting and DP conversions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.accountant import (
    ZCDPAccountant,
    approx_dp_to_zcdp,
    gaussian_rho,
    gaussian_sigma_sq,
    zcdp_to_approx_dp,
)
from repro.exceptions import ConfigurationError, PrivacyBudgetError


class TestConversions:
    def test_zcdp_to_approx_dp_formula(self):
        rho, delta = 0.5, 1e-6
        expected = rho + 2 * math.sqrt(rho * math.log(1 / delta))
        assert zcdp_to_approx_dp(rho, delta) == pytest.approx(expected)

    def test_zero_rho_gives_zero_epsilon(self):
        assert zcdp_to_approx_dp(0.0, 1e-6) == 0.0

    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            zcdp_to_approx_dp(0.1, 0.0)
        with pytest.raises(ConfigurationError):
            zcdp_to_approx_dp(0.1, 1.0)

    def test_negative_rho(self):
        with pytest.raises(ConfigurationError):
            zcdp_to_approx_dp(-0.1, 1e-6)

    def test_pure_dp_to_zcdp(self):
        assert approx_dp_to_zcdp(2.0) == pytest.approx(2.0)
        assert approx_dp_to_zcdp(0.0) == 0.0

    def test_roundtrip_ordering(self):
        # eps-DP -> eps^2/2-zCDP -> back must not be larger than reasonable.
        rho = approx_dp_to_zcdp(1.0)
        eps = zcdp_to_approx_dp(rho, 1e-9)
        assert eps > 1.0  # conversion through zCDP to approx DP is lossy upward

    @given(st.floats(min_value=1e-4, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_epsilon_monotone_in_rho(self, rho):
        assert zcdp_to_approx_dp(rho, 1e-6) < zcdp_to_approx_dp(rho * 1.5, 1e-6)


class TestGaussianCalibration:
    def test_rho_sigma_roundtrip(self):
        sigma_sq = gaussian_sigma_sq(sensitivity=1.0, rho=0.01)
        assert gaussian_rho(1.0, sigma_sq) == pytest.approx(0.01)

    def test_paper_noise_scale(self):
        # Algorithm 1: sigma^2 = (T-k+1)/(2 rho) for sensitivity 1.
        assert gaussian_sigma_sq(1.0, 0.005 / 10) == pytest.approx(10 / (2 * 0.005))

    def test_sensitivity_scaling(self):
        assert gaussian_rho(2.0, 8.0) == pytest.approx(4 * gaussian_rho(1.0, 8.0))

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            gaussian_rho(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            gaussian_rho(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            gaussian_sigma_sq(1.0, 0.0)


class TestZCDPAccountant:
    def test_requires_positive_budget(self):
        with pytest.raises(ConfigurationError):
            ZCDPAccountant(0.0)

    def test_charges_accumulate(self):
        accountant = ZCDPAccountant(1.0)
        accountant.charge(0.25, "a")
        accountant.charge(0.25, "b")
        assert accountant.spent == pytest.approx(0.5)
        assert accountant.remaining == pytest.approx(0.5)

    def test_over_budget_raises(self):
        accountant = ZCDPAccountant(0.1)
        accountant.charge(0.08)
        with pytest.raises(PrivacyBudgetError):
            accountant.charge(0.05)

    def test_exact_budget_succeeds(self):
        accountant = ZCDPAccountant(0.1)
        for _ in range(10):
            accountant.charge(0.01)
        assert accountant.remaining == pytest.approx(0.0, abs=1e-12)

    def test_many_small_charges_fsum_stability(self):
        accountant = ZCDPAccountant(1.0)
        for _ in range(1000):
            accountant.charge(0.001)
        assert accountant.spent == pytest.approx(1.0)

    def test_negative_charge_rejected(self):
        accountant = ZCDPAccountant(1.0)
        with pytest.raises(ConfigurationError):
            accountant.charge(-0.1)

    def test_ledger_labels(self):
        accountant = ZCDPAccountant(1.0)
        accountant.charge(0.1, "histogram t=3")
        accountant.charge(0.2, "histogram t=4")
        assert accountant.charges == (("histogram t=3", 0.1), ("histogram t=4", 0.2))

    def test_epsilon_reporting(self):
        accountant = ZCDPAccountant(1.0)
        accountant.charge(0.5)
        assert accountant.epsilon(1e-6) == pytest.approx(zcdp_to_approx_dp(0.5, 1e-6))

    def test_repr_mentions_budget(self):
        assert "0.5" in repr(ZCDPAccountant(0.5))
