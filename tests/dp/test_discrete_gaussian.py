"""Tests for the discrete Gaussian sampler (Definition 2.2 of the paper)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.discrete_gaussian import DiscreteGaussianSampler, sample_discrete_gaussian
from repro.rng import ExactRandom, as_generator


class TestExactSampler:
    def test_rejects_negative_variance(self):
        with pytest.raises(ValueError):
            sample_discrete_gaussian(Fraction(-1), ExactRandom(as_generator(0)))

    def test_zero_variance_is_constant_zero(self):
        random = ExactRandom(as_generator(0))
        assert all(sample_discrete_gaussian(Fraction(0), random) == 0 for _ in range(10))

    def test_returns_integers(self):
        random = ExactRandom(as_generator(1))
        assert all(
            isinstance(sample_discrete_gaussian(Fraction(9), random), int)
            for _ in range(30)
        )

    def test_mean_near_zero(self):
        random = ExactRandom(as_generator(2))
        draws = [sample_discrete_gaussian(Fraction(16), random) for _ in range(2500)]
        # stderr = 4/50 = 0.08; allow 5 sigma.
        assert abs(np.mean(draws)) < 0.45

    def test_variance_at_most_sigma_sq(self):
        # The discrete Gaussian's variance is at most sigma^2 (CKS 2020).
        random = ExactRandom(as_generator(3))
        draws = np.array(
            [sample_discrete_gaussian(Fraction(25), random) for _ in range(4000)]
        )
        assert draws.var() < 25.0 * 1.15  # sampling tolerance

    def test_small_sigma_concentrates(self):
        random = ExactRandom(as_generator(4))
        draws = [sample_discrete_gaussian(Fraction(1, 4), random) for _ in range(300)]
        assert all(abs(d) <= 4 for d in draws)

    @given(st.fractions(min_value=Fraction(1, 4), max_value=Fraction(50)))
    @settings(max_examples=20, deadline=None)
    def test_any_rational_variance_samples(self, sigma_sq):
        value = sample_discrete_gaussian(sigma_sq, ExactRandom(as_generator(5)))
        assert isinstance(value, int)


class TestDiscreteGaussianSampler:
    def test_invalid_method(self):
        with pytest.raises(ValueError):
            DiscreteGaussianSampler(1, method="approximate")

    def test_negative_variance(self):
        with pytest.raises(ValueError):
            DiscreteGaussianSampler(-2)

    def test_zero_variance_array(self):
        sampler = DiscreteGaussianSampler(0, seed=0)
        assert (sampler.sample_array(10) == 0).all()
        assert sampler.sample() == 0

    def test_sigma_property(self):
        assert DiscreteGaussianSampler(25, seed=0).sigma == pytest.approx(5.0)

    def test_vectorized_shape(self):
        sampler = DiscreteGaussianSampler(10, seed=0, method="vectorized")
        assert sampler.sample_array((3, 4)).shape == (3, 4)
        assert sampler.sample_array(11).shape == (11,)

    def test_vectorized_moments(self):
        sampler = DiscreteGaussianSampler(100, seed=1, method="vectorized")
        draws = sampler.sample_array(100000)
        assert abs(draws.mean()) < 0.2
        assert abs(draws.var() / 100.0 - 1.0) < 0.03

    def test_exact_vs_vectorized_variance_agreement(self):
        exact = DiscreteGaussianSampler(36, seed=2, method="exact").sample_array(2500)
        vec = DiscreteGaussianSampler(36, seed=3, method="vectorized").sample_array(50000)
        assert abs(exact.var() / vec.var() - 1.0) < 0.20

    def test_symmetry_vectorized(self):
        draws = DiscreteGaussianSampler(50, seed=4, method="vectorized").sample_array(
            100000
        )
        positive = (draws > 0).mean()
        negative = (draws < 0).mean()
        assert abs(positive - negative) < 0.01

    def test_integer_dtype(self):
        draws = DiscreteGaussianSampler(5, seed=5, method="vectorized").sample_array(100)
        assert np.issubdtype(draws.dtype, np.integer)

    def test_reproducible_with_seed(self):
        a = DiscreteGaussianSampler(9, seed=6, method="vectorized").sample_array(25)
        b = DiscreteGaussianSampler(9, seed=6, method="vectorized").sample_array(25)
        assert (a == b).all()

    def test_fractional_variance_accepted(self):
        sampler = DiscreteGaussianSampler(Fraction(5, 2), seed=7)
        assert isinstance(sampler.sample(), int)

    def test_large_variance_tail_behaviour(self):
        # P(|X| > 5 sigma) should be negligible.
        sampler = DiscreteGaussianSampler(400, seed=8, method="vectorized")
        draws = sampler.sample_array(20000)
        assert (np.abs(draws) > 5 * 20).mean() < 1e-3
