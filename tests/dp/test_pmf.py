"""Tests for the exact discrete Gaussian pmf, and distributional validation
of both samplers against it (chi-square goodness of fit)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.dp.discrete_gaussian import DiscreteGaussianSampler
from repro.dp.pmf import (
    discrete_gaussian_normalizer,
    discrete_gaussian_pmf,
    discrete_gaussian_tail,
    discrete_gaussian_variance,
)
from repro.exceptions import ConfigurationError


class TestPmf:
    def test_sums_to_one(self):
        for sigma_sq in (0.5, 1.0, 4.0, 25.0):
            xs = np.arange(-200, 201)
            assert discrete_gaussian_pmf(xs, sigma_sq).sum() == pytest.approx(1.0)

    def test_symmetry(self):
        assert discrete_gaussian_pmf(3, 5.0) == pytest.approx(
            discrete_gaussian_pmf(-3, 5.0)
        )

    def test_mode_at_zero(self):
        pmf = discrete_gaussian_pmf(np.arange(-10, 11), 4.0)
        assert pmf.argmax() == 10  # x = 0

    def test_normalizer_close_to_continuous_for_large_sigma(self):
        # Z -> sigma * sqrt(2 pi) as sigma grows (Poisson summation).
        sigma_sq = 100.0
        expected = math.sqrt(2 * math.pi * sigma_sq)
        assert discrete_gaussian_normalizer(sigma_sq) == pytest.approx(
            expected, rel=1e-6
        )

    def test_tail_properties(self):
        sigma_sq = 9.0
        assert discrete_gaussian_tail(0, sigma_sq) > 0.5  # includes the mode
        assert discrete_gaussian_tail(1, sigma_sq) < 0.5
        assert discrete_gaussian_tail(1000, sigma_sq) == 0.0
        # Tail decreasing in k.
        tails = [discrete_gaussian_tail(k, sigma_sq) for k in range(0, 12)]
        assert all(a > b for a, b in zip(tails, tails[1:]))

    def test_tail_matches_pmf_sum(self):
        sigma_sq = 4.0
        direct = sum(discrete_gaussian_pmf(x, sigma_sq) for x in range(3, 60))
        assert discrete_gaussian_tail(3, sigma_sq) == pytest.approx(direct)

    def test_variance_below_sigma_sq(self):
        # Strict for small sigma; approaches sigma^2 from below as it grows.
        assert discrete_gaussian_variance(0.25) < 0.25
        assert discrete_gaussian_variance(100.0) == pytest.approx(100.0, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            discrete_gaussian_pmf(0, 0.0)
        with pytest.raises(ConfigurationError):
            discrete_gaussian_tail(0, -1.0)


class TestSamplersMatchPmf:
    """Chi-square goodness of fit of both samplers against the exact pmf."""

    def _chi_square_pvalue(self, samples: np.ndarray, sigma_sq: float) -> float:
        radius = int(4 * math.sqrt(sigma_sq)) + 1
        support = np.arange(-radius, radius + 1)
        observed = np.array([(samples == x).sum() for x in support], dtype=np.float64)
        # Lump the two tails into the end bins so expected counts stay high.
        observed[0] += (samples < -radius).sum()
        observed[-1] += (samples > radius).sum()
        expected = discrete_gaussian_pmf(support, sigma_sq) * samples.size
        expected[0] += discrete_gaussian_tail(radius + 1, sigma_sq) * samples.size
        expected[-1] += discrete_gaussian_tail(radius + 1, sigma_sq) * samples.size
        keep = expected > 5
        statistic, pvalue = stats.chisquare(
            observed[keep], expected[keep] * observed[keep].sum() / expected[keep].sum()
        )
        return pvalue

    def test_exact_sampler_distribution(self):
        sampler = DiscreteGaussianSampler(9, seed=1, method="exact")
        samples = sampler.sample_array(4000)
        assert self._chi_square_pvalue(samples, 9.0) > 1e-3

    def test_vectorized_sampler_distribution(self):
        sampler = DiscreteGaussianSampler(9, seed=2, method="vectorized")
        samples = sampler.sample_array(60000)
        assert self._chi_square_pvalue(samples, 9.0) > 1e-3

    def test_vectorized_sampler_small_sigma(self):
        sampler = DiscreteGaussianSampler(1, seed=3, method="vectorized")
        samples = sampler.sample_array(60000)
        assert self._chi_square_pvalue(samples, 1.0) > 1e-3

    def test_empirical_variance_matches_exact(self):
        sigma_sq = 2.0
        sampler = DiscreteGaussianSampler(sigma_sq, seed=4, method="vectorized")
        samples = sampler.sample_array(100000)
        assert samples.var() == pytest.approx(
            discrete_gaussian_variance(sigma_sq), rel=0.03
        )
