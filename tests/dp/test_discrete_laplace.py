"""Tests for the discrete Laplace sampler."""

from fractions import Fraction

import numpy as np
import pytest

from repro.dp.discrete_laplace import DiscreteLaplaceSampler, sample_discrete_laplace
from repro.rng import ExactRandom, as_generator


class TestSampleDiscreteLaplace:
    def test_rejects_nonpositive_scale(self):
        random = ExactRandom(as_generator(0))
        with pytest.raises(ValueError):
            sample_discrete_laplace(Fraction(0), random)
        with pytest.raises(ValueError):
            sample_discrete_laplace(Fraction(-1), random)

    def test_returns_integers(self):
        random = ExactRandom(as_generator(1))
        for _ in range(20):
            assert isinstance(sample_discrete_laplace(Fraction(3, 2), random), int)

    def test_roughly_symmetric(self):
        random = ExactRandom(as_generator(2))
        draws = [sample_discrete_laplace(Fraction(4), random) for _ in range(3000)]
        assert abs(np.mean(draws)) < 0.4

    def test_rational_scale_supported(self):
        random = ExactRandom(as_generator(3))
        draws = [sample_discrete_laplace(Fraction(7, 3), random) for _ in range(500)]
        assert all(isinstance(d, int) for d in draws)


class TestDiscreteLaplaceSampler:
    def test_invalid_method(self):
        with pytest.raises(ValueError):
            DiscreteLaplaceSampler(2, method="fast")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            DiscreteLaplaceSampler(0)

    def test_sample_array_shape(self):
        sampler = DiscreteLaplaceSampler(3, seed=0, method="vectorized")
        assert sampler.sample_array((4, 5)).shape == (4, 5)

    def test_exact_array_shape(self):
        sampler = DiscreteLaplaceSampler(3, seed=0, method="exact")
        assert sampler.sample_array(7).shape == (7,)

    def test_variance_property_positive(self):
        sampler = DiscreteLaplaceSampler(5, seed=0)
        assert sampler.variance > 0

    def test_exact_and_vectorized_agree_in_distribution(self):
        exact = DiscreteLaplaceSampler(3, seed=1, method="exact").sample_array(2500)
        vec = DiscreteLaplaceSampler(3, seed=2, method="vectorized").sample_array(20000)
        # Means near zero and variances within sampling tolerance of each other.
        assert abs(exact.mean()) < 0.5
        assert abs(vec.mean()) < 0.2
        assert abs(exact.var() / vec.var() - 1.0) < 0.30

    def test_vectorized_variance_matches_theory(self):
        sampler = DiscreteLaplaceSampler(4, seed=3, method="vectorized")
        draws = sampler.sample_array(50000)
        assert abs(draws.var() / sampler.variance - 1.0) < 0.08

    def test_sample_returns_int(self):
        assert isinstance(DiscreteLaplaceSampler(2, seed=0).sample(), int)

    def test_reproducible_with_seed(self):
        a = DiscreteLaplaceSampler(2, seed=11, method="vectorized").sample_array(20)
        b = DiscreteLaplaceSampler(2, seed=11, method="vectorized").sample_array(20)
        assert (a == b).all()
