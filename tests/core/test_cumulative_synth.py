"""Tests for Algorithm 2 — the cumulative synthesizer."""

import math

import numpy as np
import pytest

from repro.core.cumulative import CumulativeSynthesizer
from repro.core.monotonize import is_monotone_table
from repro.data.generators import iid_bernoulli
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.queries.cumulative import HammingAtLeast, HammingExactly
from repro.queries.window import AllOnes
from repro.streams.registry import available_counters


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CumulativeSynthesizer(horizon=0, rho=1.0)
        with pytest.raises(ConfigurationError):
            CumulativeSynthesizer(horizon=5, rho=0.0)
        with pytest.raises(ConfigurationError):
            CumulativeSynthesizer(horizon=5, rho=1.0, counter="bogus")
        with pytest.raises(ConfigurationError):
            CumulativeSynthesizer(horizon=5, rho=1.0, budget="bogus")

    def test_budget_allocation_sums_to_rho(self):
        synth = CumulativeSynthesizer(horizon=12, rho=0.005)
        assert synth.rho_per_threshold.sum() == pytest.approx(0.005)

    def test_release_before_data(self):
        synth = CumulativeSynthesizer(horizon=5, rho=1.0)
        with pytest.raises(NotFittedError):
            synth.release.synthetic_data()
        with pytest.raises(NotFittedError):
            synth.release.threshold_table()


class TestOracleMode:
    def test_exact_threshold_counts(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=math.inf, seed=0
        )
        release = synth.run(small_markov_panel)
        for t in range(1, small_markov_panel.horizon + 1):
            expected = small_markov_panel.threshold_counts(t)
            for b in range(small_markov_panel.horizon + 1):
                assert release.threshold_count(b, t) == expected[b], (b, t)

    def test_exact_query_answers(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=math.inf, seed=1
        )
        release = synth.run(small_markov_panel)
        for t in (2, 5, 8):
            for b in (1, 2, 4):
                query = HammingAtLeast(b)
                assert release.answer(query, t) == pytest.approx(
                    query.evaluate(small_markov_panel, t)
                )


class TestInvariants:
    @pytest.mark.parametrize("counter", sorted(available_counters()))
    def test_invariants_hold_for_every_counter(self, counter, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon,
            rho=0.05,
            counter=counter,
            seed=2,
            noise_method="vectorized",
        )
        synth.run(small_markov_panel)
        assert synth.check_invariants()

    def test_table_monotone(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.05, seed=3,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        table = release.threshold_table()
        assert is_monotone_table(table, population=small_markov_panel.n_individuals)

    def test_synthetic_census_equals_table(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.05, seed=4,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        panel = release.synthetic_data()
        for t in range(1, small_markov_panel.horizon + 1):
            weights = panel.hamming_weights(t)
            for b in range(t + 1):
                assert (weights >= b).sum() == release.threshold_count(b, t)

    def test_records_never_rewritten(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.05, seed=5,
            noise_method="vectorized",
        )
        snapshots = {}
        for t, column in enumerate(small_markov_panel.columns(), start=1):
            synth.observe(column)
            snapshots[t] = synth.release.synthetic_data(t).matrix.copy()
        final = synth.release.synthetic_data().matrix
        for t, snapshot in snapshots.items():
            assert (final[:, :t] == snapshot).all()

    def test_m_equals_n(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.05, seed=6,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        assert release.m == small_markov_panel.n_individuals


class TestAnswers:
    def test_hamming_exactly_difference(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.05, seed=7,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        t = 6
        for b in range(4):
            expected = release.answer(HammingAtLeast(b), t) - release.answer(
                HammingAtLeast(b + 1), t
            )
            assert release.answer(HammingExactly(b), t) == pytest.approx(expected)

    def test_unsupported_query_rejected(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.05, seed=8,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        with pytest.raises(ConfigurationError):
            release.answer(AllOnes(3), 5)

    def test_threshold_count_bounds(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.05, seed=9,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        with pytest.raises(ConfigurationError):
            release.threshold_count(100, 5)
        with pytest.raises(ConfigurationError):
            release.threshold_count(1, 0)

    def test_answer_beyond_horizon_threshold_is_zero(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.05, seed=10,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        assert release.answer(HammingAtLeast(100), 5) == 0.0


class TestPrivacyAccounting:
    def test_budget_spent_matches_active_counters(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.02, seed=11,
            noise_method="vectorized",
        )
        synth.run(small_markov_panel)
        # All T counters activate (one per round).
        assert synth.accountant.spent == pytest.approx(0.02)
        assert len(synth.accountant.charges) == small_markov_panel.horizon

    def test_uniform_budget_option(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.02, budget="uniform", seed=12,
            noise_method="vectorized",
        )
        assert np.allclose(
            synth.rho_per_threshold, 0.02 / small_markov_panel.horizon
        )

    def test_explicit_budget_option(self, small_markov_panel):
        horizon = small_markov_panel.horizon
        budget = np.full(horizon, 0.02 / horizon)
        synth = CumulativeSynthesizer(
            horizon=horizon, rho=0.02, budget=budget, seed=13,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        assert synth.check_invariants()
        assert release.t == horizon


class TestStreamingAPI:
    def test_column_validation(self):
        synth = CumulativeSynthesizer(horizon=4, rho=0.5, seed=14)
        with pytest.raises(DataValidationError):
            synth.observe(np.array([[1], [0]]))
        with pytest.raises(DataValidationError):
            synth.observe(np.array([0, 3]))
        synth.observe(np.array([1, 0]))
        with pytest.raises(DataValidationError):
            synth.observe(np.array([1, 0, 1]))

    def test_horizon_exhaustion(self):
        panel = iid_bernoulli(30, 3, 0.5, seed=15)
        synth = CumulativeSynthesizer(horizon=3, rho=0.5, seed=16)
        synth.run(panel)
        with pytest.raises(DataValidationError):
            synth.observe(panel.column(1))

    def test_run_requires_fresh(self):
        panel = iid_bernoulli(30, 3, 0.5, seed=17)
        synth = CumulativeSynthesizer(horizon=3, rho=0.5, seed=18)
        synth.run(panel)
        with pytest.raises(ConfigurationError):
            synth.run(panel)

    def test_horizon_mismatch(self):
        panel = iid_bernoulli(30, 3, 0.5, seed=19)
        synth = CumulativeSynthesizer(horizon=5, rho=0.5, seed=20)
        with pytest.raises(DataValidationError):
            synth.run(panel)


class TestLazyMaterialization:
    """Lazy vs eager synthetic-store materialization (bit-exact contract)."""

    def _run(self, panel, materialize, seed=21, rho=0.05):
        synth = CumulativeSynthesizer(
            horizon=panel.horizon, rho=rho, seed=seed,
            noise_method="vectorized", materialize=materialize,
        )
        synth.run(panel)
        return synth

    def test_lazy_is_default_and_defers_draws(self, small_markov_panel):
        synth = self._run(small_markov_panel, "lazy")
        assert synth.materialize == "lazy"
        # No record has been drawn yet: the store clock is still at zero.
        assert synth._store.t == 0
        panel = synth.release.synthetic_data()
        assert panel.horizon == small_markov_panel.horizon
        assert synth._store.t == small_markov_panel.horizon

    def test_lazy_matches_eager_bitwise(self, small_markov_panel):
        lazy = self._run(small_markov_panel, "lazy")
        eager = self._run(small_markov_panel, "eager")
        assert (
            lazy.release.synthetic_data().matrix
            == eager.release.synthetic_data().matrix
        ).all()
        assert (
            lazy.release.threshold_table() == eager.release.threshold_table()
        ).all()

    def test_invariants_after_on_demand_materialization(self, small_markov_panel):
        synth = self._run(small_markov_panel, "lazy")
        # check_invariants itself materializes on demand and must pass.
        assert synth.check_invariants()
        # Repeated calls don't re-extend (the pending queue was drained).
        assert synth.check_invariants()

    @pytest.mark.parametrize("rho", [math.inf, 0.1])
    def test_interleaved_requests_match_eager(self, small_markov_panel, rho):
        # Requesting the panel mid-stream must not disturb the replayed
        # generator order: draws happen in release order either way.
        columns = list(small_markov_panel.columns())
        synths = {}
        for mode in ("lazy", "eager"):
            synth = CumulativeSynthesizer(
                horizon=small_markov_panel.horizon, rho=rho, seed=5,
                noise_method="vectorized", materialize=mode,
            )
            for i, column in enumerate(columns):
                synth.observe(column)
                if i == 3:
                    synth.release.synthetic_data()
            synths[mode] = synth
        assert (
            synths["lazy"].release.synthetic_data().matrix
            == synths["eager"].release.synthetic_data().matrix
        ).all()

    def test_materialize_validated(self):
        with pytest.raises(ConfigurationError):
            CumulativeSynthesizer(horizon=4, rho=1.0, materialize="sometimes")
