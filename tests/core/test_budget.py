"""Tests for per-threshold budget allocation."""

import math

import numpy as np
import pytest

from repro.analysis.theory import tree_levels
from repro.core.budget import allocate_budget, corollary_b1_split, uniform_split
from repro.exceptions import ConfigurationError


class TestUniformSplit:
    def test_sums_to_rho(self):
        split = uniform_split(12, 0.005)
        assert split.shape == (12,)
        assert split.sum() == pytest.approx(0.005)

    def test_equal_entries(self):
        split = uniform_split(10, 1.0)
        assert np.allclose(split, 0.1)

    def test_infinite_budget(self):
        assert np.isinf(uniform_split(5, math.inf)).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_split(0, 1.0)
        with pytest.raises(ConfigurationError):
            uniform_split(5, 0.0)


class TestCorollaryB1Split:
    def test_sums_to_rho(self):
        split = corollary_b1_split(12, 0.005)
        assert split.sum() == pytest.approx(0.005)

    def test_weights_proportional_to_cubed_levels(self):
        horizon = 12
        split = corollary_b1_split(horizon, 1.0)
        levels = np.array([tree_levels(horizon - b + 1) for b in range(1, horizon + 1)])
        expected = levels**3 / (levels**3).sum()
        assert np.allclose(split, expected)

    def test_early_thresholds_get_more_budget(self):
        # Counter b=1 sees the longest stream, so it needs the most budget.
        split = corollary_b1_split(12, 1.0)
        assert split[0] == split.max()
        assert split[-1] == split.min()

    def test_non_increasing(self):
        split = corollary_b1_split(16, 1.0)
        assert (np.diff(split) <= 1e-15).all()

    def test_equalizes_worst_case_bounds(self):
        # The allocation is designed so L_b^3 / rho_b is constant.
        horizon = 12
        split = corollary_b1_split(horizon, 0.5)
        ratios = [
            tree_levels(horizon - b + 1) ** 3 / split[b - 1]
            for b in range(1, horizon + 1)
        ]
        assert np.allclose(ratios, ratios[0])


class TestAllocateBudget:
    def test_by_name(self):
        assert np.allclose(allocate_budget(6, 1.0, "uniform"), uniform_split(6, 1.0))
        assert np.allclose(
            allocate_budget(6, 1.0, "corollary_b1"), corollary_b1_split(6, 1.0)
        )

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            allocate_budget(6, 1.0, "exotic")

    def test_explicit_sequence(self):
        values = [0.5, 0.3, 0.2]
        assert np.allclose(allocate_budget(3, 1.0, values), values)

    def test_explicit_wrong_length(self):
        with pytest.raises(ConfigurationError):
            allocate_budget(4, 1.0, [0.5, 0.5])

    def test_explicit_wrong_sum(self):
        with pytest.raises(ConfigurationError):
            allocate_budget(2, 1.0, [0.5, 0.6])

    def test_explicit_nonpositive(self):
        with pytest.raises(ConfigurationError):
            allocate_budget(2, 1.0, [1.0, 0.0])
