"""Tests for cross-counter monotonization and Lemma 4.2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monotonize import is_monotone_table, monotonize_row
from repro.exceptions import ConfigurationError


class TestMonotonizeRow:
    def test_passthrough_when_within_bounds(self):
        previous = np.array([10, 6, 3, 0], dtype=np.int64)  # b = 0..3
        noisy = np.array([7, 4, 2], dtype=np.int64)  # b = 1..3
        clamped = monotonize_row(noisy, previous, population=10)
        assert clamped.tolist() == [7, 4, 2]

    def test_lower_clamp(self):
        previous = np.array([10, 6, 3, 0], dtype=np.int64)
        noisy = np.array([4, 1, 0], dtype=np.int64)  # below previous values
        clamped = monotonize_row(noisy, previous, population=10)
        assert clamped.tolist() == [6, 3, 0]

    def test_upper_clamp(self):
        previous = np.array([10, 6, 3, 0], dtype=np.int64)
        noisy = np.array([12, 9, 5], dtype=np.int64)
        # Upper bounds are previous[b-1]: 10, 6, 3.
        clamped = monotonize_row(noisy, previous, population=10)
        assert clamped.tolist() == [10, 6, 3]

    def test_result_feasible(self):
        previous = np.array([10, 6, 3, 0], dtype=np.int64)
        noisy = np.array([-5, 100, 2], dtype=np.int64)
        clamped = monotonize_row(noisy, previous, population=10)
        # Non-increasing in b and within [previous_b, previous_{b-1}].
        assert (np.diff(clamped) <= 0).all()
        assert (clamped >= previous[1:]).all()
        assert (clamped <= previous[:-1]).all()

    def test_population_mismatch_rejected(self):
        previous = np.array([9, 6, 3], dtype=np.int64)
        with pytest.raises(ConfigurationError):
            monotonize_row(np.array([5, 2]), previous, population=10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            monotonize_row(np.array([5, 2]), np.array([10, 6]), population=10)

    def test_non_monotone_previous_rejected(self):
        previous = np.array([10, 3, 6, 0], dtype=np.int64)
        with pytest.raises(ConfigurationError):
            monotonize_row(np.array([5, 2, 1]), previous, population=10)

    @given(
        data=st.data(),
        population=st.integers(5, 60),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_output_always_feasible(self, data, population):
        t = data.draw(st.integers(1, 8))
        # Build a feasible non-increasing previous row.
        raw = data.draw(
            st.lists(st.integers(0, population), min_size=t, max_size=t)
        )
        previous = np.concatenate(
            [[population], np.sort(np.asarray(raw))[::-1]]
        ).astype(np.int64)
        noisy = np.asarray(
            data.draw(st.lists(st.integers(-50, 120), min_size=t, max_size=t)),
            dtype=np.int64,
        )
        clamped = monotonize_row(noisy, previous, population=population)
        assert (clamped >= previous[1:]).all()
        assert (clamped <= previous[:-1]).all()
        assert (np.diff(clamped) <= 0).all()


class TestLemma42:
    """Direct verification of the Lemma 4.2 inequality.

    |S^_b^t - S_b^t| <= max(|S~_b^t - S_b^t|, |S^_b^{t-1} - S_b^{t-1}|,
                            |S^_{b-1}^{t-1} - S_{b-1}^{t-1}|)
    for true counts satisfying S_b^{t-1} <= S_b^t <= S_{b-1}^{t-1}.
    """

    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_inequality_pointwise(self, data):
        # True counts with the required monotonicity.
        true_prev_bm1 = data.draw(st.integers(0, 100))  # S_{b-1}^{t-1}
        true_prev_b = data.draw(st.integers(0, true_prev_bm1))  # S_b^{t-1}
        true_cur_b = data.draw(st.integers(true_prev_b, true_prev_bm1))  # S_b^t
        # Arbitrary estimates for the previous round (already monotonized,
        # so they satisfy hat_prev_b <= hat_prev_bm1).
        hat_prev_bm1 = data.draw(st.integers(-20, 120))
        hat_prev_b = data.draw(st.integers(-20, hat_prev_bm1))
        # Arbitrary noisy estimate for this round.
        noisy = data.draw(st.integers(-50, 150))

        clamped = min(max(noisy, hat_prev_b), hat_prev_bm1)
        lhs = abs(clamped - true_cur_b)
        rhs = max(
            abs(noisy - true_cur_b),
            abs(hat_prev_b - true_prev_b),
            abs(hat_prev_bm1 - true_prev_bm1),
        )
        assert lhs <= rhs

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_b_zero_variant(self, data):
        # Equation 11: for b = 0 only the lower clamp applies.
        true_prev = data.draw(st.integers(0, 100))
        true_cur = data.draw(st.integers(true_prev, 150))
        hat_prev = data.draw(st.integers(-20, 120))
        noisy = data.draw(st.integers(-50, 200))
        clamped = max(noisy, hat_prev)
        lhs = abs(clamped - true_cur)
        rhs = max(abs(noisy - true_cur), abs(hat_prev - true_prev))
        assert lhs <= rhs


class TestIsMonotoneTable:
    def test_accepts_valid_table(self):
        table = np.array(
            [
                [10, 0, 0],
                [10, 4, 0],
                [10, 6, 3],
            ],
            dtype=np.int64,
        )
        assert is_monotone_table(table, population=10)

    def test_rejects_decreasing_in_t(self):
        table = np.array([[10, 5, 0], [10, 4, 0]], dtype=np.int64)
        assert not is_monotone_table(table, population=10)

    def test_rejects_increasing_in_b(self):
        table = np.array([[10, 0, 0], [10, 2, 3]], dtype=np.int64)
        assert not is_monotone_table(table, population=10)

    def test_rejects_cross_violation(self):
        # table[t, b] > table[t-1, b-1]: weight jumped by more than 1.
        table = np.array([[10, 2, 0], [10, 9, 5]], dtype=np.int64)
        assert not is_monotone_table(table, population=10)

    def test_rejects_population_drift(self):
        table = np.array([[10, 0], [9, 0]], dtype=np.int64)
        assert not is_monotone_table(table, population=10)

    def test_rejects_bad_ndim(self):
        with pytest.raises(ConfigurationError):
            is_monotone_table(np.zeros(3), population=1)
