"""Dynamic populations: entry/exit churn across both synthesizers.

The contract under test (see ``docs/source/dynamic-populations.rst``):

* zero-churn runs are **bit-exact** with the fixed-population path on
  both engines and both synthesizers, noise included;
* noiseless churned releases equal the zero-filled ground truth at every
  threshold/bin except the (public) population column;
* lifespans are enforced — exits are permanent, re-entry is rejected;
* checkpoints taken mid-churn restore byte-identically.
"""

import math

import numpy as np
import pytest

from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.core.monotonize import is_monotone_table
from repro.core.population import PopulationLedger
from repro.data.dataset import DynamicPanel
from repro.data.generators import apply_churn, churn_two_state_markov, iid_bernoulli
from repro.exceptions import (
    ConfigurationError,
    ConsistencyError,
    DataValidationError,
    SerializationError,
)
from repro.queries import AtLeastMOnes, HammingAtLeast


@pytest.fixture(scope="module")
def churned_panel():
    return churn_two_state_markov(
        60, 10, 0.85, 0.2, entry_rate=0.25, exit_hazard=0.08, seed=7
    )


class TestPopulationLedger:
    def test_admission_and_retirement_bookkeeping(self):
        ledger = PopulationLedger()
        ledger.admit(4, 1)
        assert (ledger.n_ever, ledger.n_active, ledger.churned) == (4, 4, False)
        ledger.retire([1, 3], 2)
        assert ledger.n_active == 2 and ledger.churned
        ledger.admit(3, 3)
        assert ledger.n_ever == 7
        assert ledger.active_ids().tolist() == [0, 2, 4, 5, 6]
        spans = ledger.lifespans()
        assert spans[1].tolist() == [1, 2] and spans[5].tolist() == [3, 0]
        assert ledger.n_ever_at(1) == 4 and ledger.n_ever_at(3) == 7

    def test_retire_rejects_departed_unknown_and_duplicate_ids(self):
        ledger = PopulationLedger()
        ledger.admit(3, 1)
        ledger.retire([0], 2)
        with pytest.raises(DataValidationError, match="already departed"):
            ledger.retire([0], 3)
        with pytest.raises(DataValidationError, match="must lie in"):
            ledger.retire([5], 3)
        with pytest.raises(DataValidationError, match="unique"):
            ledger.retire([1, 1], 3)

    def test_scatter_column_zero_fills_departed(self):
        ledger = PopulationLedger()
        ledger.admit(4, 1)
        ledger.retire([2], 2)
        full = ledger.scatter_column(np.array([1, 0, 1], dtype=np.int64))
        assert full.tolist() == [1, 0, 0, 1]

    def test_scatter_is_identity_without_churn(self):
        ledger = PopulationLedger()
        ledger.admit(3, 1)
        column = np.array([1, 0, 1], dtype=np.int64)
        assert ledger.scatter_column(column) is column

    def test_state_round_trip(self):
        ledger = PopulationLedger()
        ledger.admit(3, 1)
        ledger.retire([1], 2)
        restored = PopulationLedger.from_state(ledger.state_dict())
        assert (restored.lifespans() == ledger.lifespans()).all()
        assert restored.churned
        with pytest.raises(SerializationError):
            PopulationLedger.from_state({})


class TestDynamicPanel:
    def test_round_events_reconstruct_the_matrix(self, churned_panel):
        seen = np.zeros_like(churned_panel.matrix)
        ledger = PopulationLedger()
        for t, (column, entrants, exits) in enumerate(churned_panel.rounds(), start=1):
            if t == 1:
                ledger.admit(column.shape[0], 1)
            else:
                ledger.retire(exits, t)
                ledger.admit(entrants, t)
            seen[ledger.active_ids(), t - 1] = column
        assert (seen == churned_panel.matrix).all()

    def test_rejects_reports_outside_lifespans(self):
        matrix = np.array([[1, 1, 1], [1, 1, 1]], dtype=np.uint8)
        with pytest.raises(DataValidationError, match="zero-fill"):
            DynamicPanel(matrix, entry_round=[1, 2], exit_round=[0, 0])
        with pytest.raises(DataValidationError, match="zero-fill"):
            DynamicPanel(matrix, entry_round=[1, 1], exit_round=[0, 3])

    def test_rejects_unsorted_admission_order(self):
        matrix = np.zeros((2, 3), dtype=np.uint8)
        with pytest.raises(DataValidationError, match="ordered by admission"):
            DynamicPanel(matrix, entry_round=[2, 1], exit_round=[0, 0])

    def test_rejects_exit_before_entry(self):
        matrix = np.zeros((2, 3), dtype=np.uint8)
        with pytest.raises(DataValidationError, match="strictly after"):
            DynamicPanel(matrix, entry_round=[1, 2], exit_round=[0, 2])

    def test_apply_churn_zero_rates_is_static(self):
        static = iid_bernoulli(20, 6, 0.4, seed=3)
        panel = apply_churn(static, 0.0, 0.0, seed=1)
        assert not panel.churned
        assert (panel.matrix == static.matrix).all()

    def test_apply_churn_is_deterministic(self):
        static = iid_bernoulli(30, 8, 0.3, seed=2)
        a = apply_churn(static, 0.2, 0.1, seed=5)
        b = apply_churn(static, 0.2, 0.1, seed=5)
        assert (a.matrix == b.matrix).all()
        assert (a.entry_round == b.entry_round).all()
        assert (a.exit_round == b.exit_round).all()
        assert a.churned


class TestCumulativeChurn:
    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_noiseless_matches_zero_filled_truth(self, churned_panel, engine):
        synth = CumulativeSynthesizer(10, math.inf, seed=0, engine=engine)
        release = synth.run(churned_panel)
        full = churned_panel.as_longitudinal()
        entry = churned_panel.entry_round
        for t in range(1, 11):
            truth = full.threshold_counts(t)
            row = release.threshold_table()[t]
            assert (row[1:] == truth[1:]).all()
            assert row[0] == (entry <= t).sum()
        assert synth.check_invariants()

    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_zero_churn_bit_exact_with_static_path_under_noise(self, engine):
        static = iid_bernoulli(50, 8, 0.35, seed=4)
        dynamic = apply_churn(static, 0.0, 0.0, seed=0)
        a = CumulativeSynthesizer(8, 0.4, seed=9, engine=engine)
        b = CumulativeSynthesizer(8, 0.4, seed=9, engine=engine)
        release_a = a.run(static)
        release_b = b.run(dynamic)
        assert (release_a.threshold_table() == release_b.threshold_table()).all()
        assert release_a.synthetic_data() == release_b.synthetic_data()
        assert a.accountant.charges == b.accountant.charges

    def test_answers_are_fractions_of_round_population(self, churned_panel):
        synth = CumulativeSynthesizer(10, math.inf, seed=0)
        release = synth.run(churned_panel)
        entry = churned_panel.entry_round
        for t in (1, 5, 10):
            population = int((entry <= t).sum())
            expected = release.threshold_count(2, t) / population
            assert release.answer(HammingAtLeast(2), t) == pytest.approx(expected)

    def test_lifespans_match_schedule(self, churned_panel):
        synth = CumulativeSynthesizer(10, math.inf, seed=0)
        synth.run(churned_panel)
        spans = synth.lifespans()
        assert (spans[:, 0] == churned_panel.entry_round).all()
        assert (spans[:, 1] == churned_panel.exit_round).all()

    def test_entrant_in_round_one_is_the_initial_admission(self):
        synth = CumulativeSynthesizer(4, math.inf, seed=0)
        synth.observe([1, 0, 1], entrants=2)
        assert synth.lifespans().tolist() == [[1, 0]] * 3
        with pytest.raises(DataValidationError, match="entrants"):
            CumulativeSynthesizer(4, math.inf, seed=0).observe(
                [1, 0], entrants=3
            )

    def test_exits_in_round_one_rejected(self):
        synth = CumulativeSynthesizer(4, math.inf, seed=0)
        with pytest.raises(DataValidationError, match="nobody can exit"):
            synth.observe([1, 0], exits=[0])

    def test_departure_in_final_round(self):
        synth = CumulativeSynthesizer(3, math.inf, seed=0)
        synth.observe([1, 1, 0])
        synth.observe([0, 1, 1])
        release = synth.observe([1, 0], exits=[1])
        table = release.threshold_table()
        # Individual 1's weight froze at 2; the final column has reports
        # from individuals 0 and 2 only.
        assert table[3].tolist()[:4] == [3, 3, 2, 0]
        assert synth.lifespans()[1].tolist() == [1, 3]

    def test_empty_population_mid_stream_then_reentry_of_fresh_ids(self):
        synth = CumulativeSynthesizer(5, math.inf, seed=0)
        synth.observe([1, 0])
        synth.observe([], exits=[0, 1])
        synth.observe([])
        release = synth.observe([1, 1, 0], entrants=3)
        assert synth.lifespans().tolist() == [[1, 2], [1, 2], [4, 0], [4, 0], [4, 0]]
        assert release.threshold_table()[4].tolist()[:3] == [5, 3, 0]
        assert synth.check_invariants()

    def test_reentry_rejected(self, churned_panel):
        synth = CumulativeSynthesizer(4, math.inf, seed=0)
        synth.observe([1, 0, 1])
        synth.observe([0, 1], exits=[2])
        with pytest.raises(DataValidationError, match="already departed"):
            synth.observe([0], exits=[2])
        # The failed round left the clock untouched.
        assert synth.t == 2

    def test_column_length_must_match_declared_churn(self):
        synth = CumulativeSynthesizer(4, math.inf, seed=0)
        synth.observe([1, 0, 1])
        with pytest.raises(DataValidationError, match="expected 3"):
            synth.observe([1, 0], entrants=0)
        with pytest.raises(DataValidationError, match="expected 4"):
            synth.observe([1, 0], entrants=1)

    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_checkpoint_restore_mid_churn_byte_identity(self, churned_panel, engine):
        uninterrupted = CumulativeSynthesizer(10, 0.4, seed=3, engine=engine)
        paused = CumulativeSynthesizer(10, 0.4, seed=3, engine=engine)
        events = list(churned_panel.rounds())
        for column, entrants, exits in events[:6]:
            uninterrupted.observe(column, entrants=entrants, exits=exits)
            paused.observe(column, entrants=entrants, exits=exits)
        resumed = CumulativeSynthesizer.from_config(paused.config_dict())
        resumed.load_state(paused.state_dict())
        for column, entrants, exits in events[6:]:
            uninterrupted.observe(column, entrants=entrants, exits=exits)
            resumed.observe(column, entrants=entrants, exits=exits)
        assert (
            uninterrupted.release.threshold_table()
            == resumed.release.threshold_table()
        ).all()
        assert (
            uninterrupted.release.synthetic_data() == resumed.release.synthetic_data()
        )
        assert (uninterrupted.lifespans() == resumed.lifespans()).all()


class TestFixedWindowChurn:
    def test_noiseless_matches_zero_filled_truth(self, churned_panel):
        synth = FixedWindowSynthesizer(10, 3, math.inf, seed=0)
        release = synth.run(churned_panel)
        full = churned_panel.as_longitudinal()
        entry = churned_panel.entry_round
        for t in range(3, 11):
            hist = release.histogram(t)
            truth = full.suffix_histogram(t, 3)
            assert (hist[1:] == truth[1:]).all()
            assert hist.sum() == (entry <= t).sum()

    def test_zero_churn_bit_exact_with_static_path_under_noise(self):
        static = iid_bernoulli(50, 8, 0.35, seed=4)
        dynamic = apply_churn(static, 0.0, 0.0, seed=0)
        a = FixedWindowSynthesizer(8, 2, 0.4, seed=9)
        b = FixedWindowSynthesizer(8, 2, 0.4, seed=9)
        release_a = a.run(static)
        release_b = b.run(dynamic)
        for t in range(2, 9):
            assert (release_a.histogram(t) == release_b.histogram(t)).all()
        assert release_a.synthetic_data() == release_b.synthetic_data()
        assert a.accountant.charges == b.accountant.charges

    def test_churn_during_buffer_phase(self):
        # Window 3: entrants and exits before the first release land in
        # the first histogram via zero-filled codes.
        synth = FixedWindowSynthesizer(6, 3, math.inf, seed=0)
        synth.observe([1, 1])
        synth.observe([0, 1, 1], entrants=1)
        release = synth.observe([1, 0], exits=[1])
        hist = release.histogram(3)
        # id0: (1,0,1)=5; id1 departed: (1,1,0)->zero-filled (1,1,0)=6;
        # id2 entered at 2: (0,1,0)=2.
        assert hist[5] == 1 and hist[6] == 1 and hist[2] == 1 and hist.sum() == 3

    def test_debias_uses_round_population(self, churned_panel):
        synth = FixedWindowSynthesizer(10, 2, math.inf, seed=0)
        release = synth.run(churned_panel)
        entry = churned_panel.entry_round
        for t in (2, 6, 10):
            assert release.population(t) == int((entry <= t).sum())
        query = AtLeastMOnes(2, 1)
        answer = release.answer(query, 6)
        assert np.isfinite(answer)

    def test_checkpoint_restore_mid_churn_byte_identity(self, churned_panel):
        uninterrupted = FixedWindowSynthesizer(10, 3, 0.4, seed=3)
        paused = FixedWindowSynthesizer(10, 3, 0.4, seed=3)
        events = list(churned_panel.rounds())
        for column, entrants, exits in events[:6]:
            uninterrupted.observe(column, entrants=entrants, exits=exits)
            paused.observe(column, entrants=entrants, exits=exits)
        resumed = FixedWindowSynthesizer.from_config(paused.config_dict())
        resumed.load_state(paused.state_dict())
        for column, entrants, exits in events[6:]:
            uninterrupted.observe(column, entrants=entrants, exits=exits)
            resumed.observe(column, entrants=entrants, exits=exits)
        for t in range(3, 11):
            assert (
                uninterrupted.release.histogram(t) == resumed.release.histogram(t)
            ).all()
        assert (
            uninterrupted.release.synthetic_data() == resumed.release.synthetic_data()
        )


class TestStoreChurn:
    def test_cumulative_store_admit_retire_bookkeeping(self):
        from repro.core.synthetic_store import CumulativeSyntheticStore

        store = CumulativeSyntheticStore(5, 4, np.random.default_rng(0))
        store.admit(3)
        assert store.m == 8 and store.n_active == 8
        store.retire(2)
        assert store.n_active == 6 and store.n_retired == 2
        assert store.active_mask().sum() == 6
        with pytest.raises(ConsistencyError, match="only 6 active"):
            store.retire(7)
        with pytest.raises(ConfigurationError):
            store.retire(-1)

    def test_window_store_admit_appends_zero_code_records(self):
        from repro.core.synthetic_store import WindowSyntheticStore

        counts = np.array([2, 1, 0, 1], dtype=np.int64)
        store = WindowSyntheticStore(counts, 2, 5, np.random.default_rng(0))
        store.admit(2)
        assert store.m == 6 and store.counts()[0] == 4
        store.retire(1)
        assert store.n_active == 5 and store.n_retired == 1


class TestMonotoneTableDynamic:
    def test_per_round_population_vector(self):
        table = np.array([[3, 0], [3, 2], [5, 4]], dtype=np.int64)
        assert is_monotone_table(table, np.array([3, 3, 5]))
        # b=1 may exceed the previous round's population (entrants), but
        # never the current round's.
        bad = np.array([[3, 0], [3, 2], [5, 6]], dtype=np.int64)
        assert not is_monotone_table(bad, np.array([3, 3, 5]))
        # A shrinking population column is invalid.
        assert not is_monotone_table(table, np.array([3, 3, 4]))
        with pytest.raises(ConfigurationError):
            is_monotone_table(table, np.array([3, 3]))
