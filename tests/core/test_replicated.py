"""Tests for the batched Algorithm-2 replication engine."""

import math

import numpy as np
import pytest

from repro.core.cumulative import CumulativeSynthesizer
from repro.core.monotonize import is_monotone_table, monotonize_rows
from repro.core.replicated import ReplicatedCumulativeRelease, replicate_cumulative
from repro.exceptions import ConfigurationError
from repro.queries.cumulative import HammingAtLeast, HammingExactly
from repro.queries.window import AllOnes

NATIVE_COUNTERS = ("binary_tree", "simple", "sqrt_factorization", "laplace_tree")


class TestReplicateCumulative:
    @pytest.mark.parametrize("counter", NATIVE_COUNTERS)
    def test_noiseless_tables_bit_exact_with_serial(self, small_markov_panel, counter):
        replicated = replicate_cumulative(
            small_markov_panel, 3, rho=math.inf, counter=counter, seed=1
        )
        serial = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=math.inf, counter=counter, seed=2
        )
        table = serial.run(small_markov_panel).threshold_table()
        for r in range(replicated.n_reps):
            assert (replicated.tables[r, : table.shape[0]] == table).all()

    def test_tables_monotone_with_noise(self, small_markov_panel):
        replicated = replicate_cumulative(small_markov_panel, 8, rho=0.05, seed=3)
        assert replicated.check_invariants()
        for r in range(8):
            assert is_monotone_table(
                replicated.tables[r], population=small_markov_panel.n_individuals
            )

    def test_reps_are_independent_with_noise(self, small_markov_panel):
        replicated = replicate_cumulative(small_markov_panel, 6, rho=0.05, seed=4)
        final = replicated.tables[:, -1, 1]
        assert len(set(final.tolist())) > 1

    def test_ledger_identical_to_serial(self, small_markov_panel):
        replicated = replicate_cumulative(small_markov_panel, 5, rho=0.05, seed=5)
        serial = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.05, seed=6,
            noise_method="vectorized",
        )
        serial.run(small_markov_panel)
        assert replicated.accountant.charges == serial.accountant.charges
        assert replicated.accountant.spent == pytest.approx(serial.accountant.spent)

    def test_noiseless_has_no_accountant(self, small_markov_panel):
        replicated = replicate_cumulative(small_markov_panel, 2, rho=math.inf, seed=7)
        assert replicated.accountant is None

    def test_explicit_budget_vector(self, small_markov_panel):
        horizon = small_markov_panel.horizon
        budget = np.full(horizon, 0.05 / horizon)
        replicated = replicate_cumulative(
            small_markov_panel, 2, rho=0.05, budget=budget, seed=8
        )
        assert replicated.n_reps == 2

    def test_validation(self, small_markov_panel):
        with pytest.raises(ConfigurationError):
            replicate_cumulative(small_markov_panel, 0, rho=0.1)
        with pytest.raises(ConfigurationError):
            replicate_cumulative(small_markov_panel, 2, rho=-1.0)
        with pytest.raises(ConfigurationError):
            replicate_cumulative(small_markov_panel, 2, rho=0.1, counter="nope")
        with pytest.raises(ConfigurationError):
            # No native bank => no rep axis.
            replicate_cumulative(small_markov_panel, 2, rho=0.1, counter="honaker")


class TestReplicatedRelease:
    @pytest.fixture()
    def release(self, small_markov_panel) -> ReplicatedCumulativeRelease:
        return replicate_cumulative(small_markov_panel, 4, rho=math.inf, seed=9)

    def test_answers_match_serial_release(self, small_markov_panel, release):
        serial = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=math.inf, seed=10
        ).run(small_markov_panel)
        for query in (HammingAtLeast(0), HammingAtLeast(2), HammingExactly(1)):
            for t in (1, 4, small_markov_panel.horizon):
                expected = serial.answer(query, t)
                assert (release.answer(query, t) == expected).all()

    def test_threshold_above_horizon(self, release, small_markov_panel):
        t = small_markov_panel.horizon
        query = HammingAtLeast(t + 5)
        assert (release.answer(query, t) == 0.0).all()
        boundary = HammingExactly(t)  # b+1 above the horizon
        assert np.isfinite(release.answer(boundary, t)).all()

    def test_answer_grid_shapes_and_nan(self, release):
        queries = [HammingAtLeast(1), HammingExactly(2)]
        grid = release.answer_grid(queries, (1, 3, 8))
        assert grid.shape == (4, 2, 3)
        assert np.isfinite(grid).all()  # Hamming queries defined from t=1

    def test_bounds_checked(self, release, small_markov_panel):
        with pytest.raises(ConfigurationError):
            release.threshold_counts(-1, 1)
        with pytest.raises(ConfigurationError):
            release.threshold_counts(1, 0)
        with pytest.raises(ConfigurationError):
            release.threshold_counts(1, small_markov_panel.horizon + 1)
        with pytest.raises(ConfigurationError):
            release.answer(AllOnes(3), 4)

    def test_repr(self, release):
        assert "n_reps=4" in repr(release)


class TestMonotonizeRows:
    def test_matches_scalar_rowwise(self, rng):
        from repro.core.monotonize import monotonize_row

        population = 50
        previous = np.array([[50, 30, 20, 0], [50, 40, 10, 0]], dtype=np.int64)
        noisy = rng.integers(-5, 60, size=(2, 3)).astype(np.int64)
        batched = monotonize_rows(noisy, previous, population)
        for r in range(2):
            assert (
                batched[r] == monotonize_row(noisy[r], previous[r], population)
            ).all()

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            monotonize_rows(np.zeros(3, dtype=np.int64), np.zeros((1, 4)), 5)
        with pytest.raises(ConfigurationError):
            monotonize_rows(np.zeros((2, 3)), np.zeros((2, 3)), 5)

    def test_population_validation(self):
        previous = np.array([[5, 2, 0], [4, 2, 0]], dtype=np.int64)
        with pytest.raises(ConfigurationError):
            monotonize_rows(np.zeros((2, 2), dtype=np.int64), previous, 5)

    def test_non_monotone_previous_rejected(self):
        previous = np.array([[5, 2, 3, 0]], dtype=np.int64)  # 3 > 2
        with pytest.raises(ConfigurationError):
            monotonize_rows(np.zeros((1, 3), dtype=np.int64), previous, 5)
