"""Tests for padding specification and the debiasing post-processing."""

import numpy as np
import pytest

from repro.analysis.theory import default_n_pad
from repro.core.debias import debias_count_answer, lift_window_weights
from repro.core.padding import PaddingSpec
from repro.exceptions import ConfigurationError
from repro.queries.window import AllOnes, AtLeastMOnes, PatternQuery


class TestPaddingSpec:
    def test_auto_matches_theorem(self):
        spec = PaddingSpec.auto(12, 3, 0.005, beta=0.05)
        assert spec.n_pad == default_n_pad(12, 3, 0.005, 0.05)

    def test_total_records(self):
        assert PaddingSpec(window=3, n_pad=5, horizon=12).total_records == 40

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PaddingSpec(window=0, n_pad=1, horizon=5)
        with pytest.raises(ConfigurationError):
            PaddingSpec(window=3, n_pad=-1, horizon=5)
        with pytest.raises(ConfigurationError):
            PaddingSpec(window=5, n_pad=1, horizon=3)

    def test_count_contribution_same_width(self):
        spec = PaddingSpec(window=3, n_pad=7, horizon=12)
        query = AtLeastMOnes(3, 1)  # 7 of 8 bins selected
        assert spec.count_contribution(query) == pytest.approx(7 * 7)

    def test_count_contribution_smaller_width(self):
        spec = PaddingSpec(window=3, n_pad=7, horizon=12)
        query = AtLeastMOnes(2, 1)  # 3 of 4 width-2 bins, multiplicity 2
        assert spec.count_contribution(query) == pytest.approx(7 * 2 * 3)

    def test_count_contribution_larger_width_extrapolates(self):
        spec = PaddingSpec(window=3, n_pad=8, horizon=12)
        query = AllOnes(4)  # one width-4 bin, multiplicity 1/2
        assert spec.count_contribution(query) == pytest.approx(4.0)

    def test_panel_answer_agrees_with_formula_for_supported_widths(self):
        spec = PaddingSpec(window=3, n_pad=4, horizon=12)
        for query in (AtLeastMOnes(3, 2), AtLeastMOnes(2, 1), AllOnes(3), PatternQuery(1, 1)):
            for t in (3, 7, 12):
                formula = spec.count_contribution(query)
                panel = spec.panel_count_answer(query, t)
                assert formula == pytest.approx(panel), (query.name, t)

    def test_zero_padding_contributions(self):
        spec = PaddingSpec(window=3, n_pad=0, horizon=12)
        assert spec.count_contribution(AllOnes(3)) == 0.0
        assert spec.panel_count_answer(AllOnes(3), 5) == 0.0

    def test_panel_cached(self):
        spec = PaddingSpec(window=2, n_pad=2, horizon=6)
        assert spec.panel is spec.panel


class TestLiftWindowWeights:
    def test_identity_lift(self):
        weights = np.array([1.0, 0.0, 2.0, 0.5])
        assert (lift_window_weights(weights, 2, 2) == weights).all()

    def test_lift_one_level(self):
        weights = np.array([0.0, 1.0])  # k'=1: select bit==1
        lifted = lift_window_weights(weights, 1, 2)
        # Width-2 codes whose last bit is 1: 01 (1) and 11 (3).
        assert lifted.tolist() == [0.0, 1.0, 0.0, 1.0]

    def test_lift_preserves_answers(self, markov_panel):
        query = AtLeastMOnes(2, 1)
        lifted = lift_window_weights(query.weights, 2, 3)
        t = 7
        hist3 = markov_panel.suffix_histogram(t, 3)
        direct = query.evaluate(markov_panel, t)
        via_lift = float(lifted @ hist3) / markov_panel.n_individuals
        assert direct == pytest.approx(via_lift)

    def test_rejects_downward_lift(self):
        with pytest.raises(ConfigurationError):
            lift_window_weights(np.zeros(4), 2, 1)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            lift_window_weights(np.zeros(3), 2, 3)


class TestDebiasCountAnswer:
    def test_basic_formula(self):
        assert debias_count_answer(150.0, 50.0, 100) == pytest.approx(1.0)

    def test_zero_padding(self):
        assert debias_count_answer(30.0, 0.0, 60) == pytest.approx(0.5)

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            debias_count_answer(10.0, 0.0, 0)

    def test_debiasing_recovers_truth_exactly_under_zero_noise(self, markov_panel):
        # hist + n_pad per bin, then debias: must equal the plain answer.
        n_pad = 9
        query = AtLeastMOnes(3, 2)
        t = 6
        hist = markov_panel.suffix_histogram(t, 3)
        padded_count = float(query.weights @ (hist + n_pad))
        padding_count = n_pad * query.weight_sum
        debiased = debias_count_answer(
            padded_count, padding_count, markov_panel.n_individuals
        )
        assert debiased == pytest.approx(query.evaluate(markov_panel, t))
