"""Tests for Algorithm 1 — the fixed-window synthesizer."""

import math

import numpy as np
import pytest

from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.generators import iid_bernoulli, two_state_markov
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)
from repro.queries.window import AllOnes, AtLeastMOnes, PatternQuery


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            FixedWindowSynthesizer(horizon=0, window=1, rho=1.0)
        with pytest.raises(ConfigurationError):
            FixedWindowSynthesizer(horizon=5, window=6, rho=1.0)
        with pytest.raises(ConfigurationError):
            FixedWindowSynthesizer(horizon=5, window=2, rho=0.0)
        with pytest.raises(ConfigurationError):
            FixedWindowSynthesizer(horizon=5, window=2, rho=1.0, on_negative="skip")

    def test_noise_scale_matches_paper(self):
        synth = FixedWindowSynthesizer(horizon=12, window=3, rho=0.005)
        assert float(synth.sigma_sq) == pytest.approx((12 - 3 + 1) / (2 * 0.005))

    def test_auto_padding_positive(self):
        synth = FixedWindowSynthesizer(horizon=12, window=3, rho=0.005)
        assert synth.padding.n_pad > 0

    def test_explicit_padding_respected(self):
        synth = FixedWindowSynthesizer(horizon=12, window=3, rho=0.005, n_pad=17)
        assert synth.padding.n_pad == 17

    def test_noiseless_mode_defaults_to_zero_padding(self):
        synth = FixedWindowSynthesizer(horizon=12, window=3, rho=math.inf)
        assert synth.padding.n_pad == 0
        assert synth.accountant is None


class TestOracleMode:
    """rho = inf: the synthesizer must reproduce all statistics exactly."""

    def test_all_window_queries_exact(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=math.inf, seed=0
        )
        release = synth.run(small_markov_panel)
        for t in range(3, small_markov_panel.horizon + 1):
            for code in range(8):
                query = PatternQuery(3, code)
                assert release.answer(query, t) == pytest.approx(
                    query.evaluate(small_markov_panel, t)
                )

    def test_smaller_width_queries_exact(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=math.inf, seed=1
        )
        release = synth.run(small_markov_panel)
        for t in range(3, small_markov_panel.horizon + 1):
            query = AtLeastMOnes(2, 1)
            assert release.answer(query, t) == pytest.approx(
                query.evaluate(small_markov_panel, t)
            )

    def test_synthetic_population_size_equals_n(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=2, rho=math.inf, seed=2
        )
        release = synth.run(small_markov_panel)
        assert release.n_synthetic == small_markov_panel.n_individuals


class TestStreamingAPI:
    def test_observe_matches_run(self, small_markov_panel):
        batch = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=2, rho=0.5, seed=42
        ).run(small_markov_panel)
        streaming_synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=2, rho=0.5, seed=42
        )
        for column in small_markov_panel.columns():
            streaming_synth.observe(column)
        streaming = streaming_synth.release
        for t in (2, 5, 8):
            assert (batch.histogram(t) == streaming.histogram(t)).all()

    def test_no_release_before_window_fills(self):
        synth = FixedWindowSynthesizer(horizon=6, window=3, rho=0.5, seed=0)
        synth.observe(np.array([1, 0, 1]))
        synth.observe(np.array([0, 0, 1]))
        with pytest.raises(NotFittedError):
            synth.release.histogram(2)
        with pytest.raises(NotFittedError):
            synth.release.synthetic_data()

    def test_column_validation(self):
        synth = FixedWindowSynthesizer(horizon=4, window=2, rho=0.5, seed=0)
        with pytest.raises(DataValidationError):
            synth.observe(np.array([[1, 0]]))
        with pytest.raises(DataValidationError):
            synth.observe(np.array([1, 2]))
        synth.observe(np.array([1, 0]))
        with pytest.raises(DataValidationError):
            synth.observe(np.array([1, 0, 1]))  # n changed

    def test_horizon_exhaustion(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=2, rho=0.5, seed=0
        )
        synth.run(small_markov_panel)
        with pytest.raises(DataValidationError):
            synth.observe(small_markov_panel.column(1))

    def test_run_requires_fresh_synthesizer(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=2, rho=0.5, seed=0
        )
        synth.run(small_markov_panel)
        with pytest.raises(ConfigurationError):
            synth.run(small_markov_panel)

    def test_horizon_mismatch(self, small_markov_panel):
        synth = FixedWindowSynthesizer(horizon=20, window=2, rho=0.5, seed=0)
        with pytest.raises(DataValidationError):
            synth.run(small_markov_panel)


class TestConsistencyInvariants:
    def test_histograms_satisfy_overlap_constraint(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.2, seed=5,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        half = 4
        for t in range(4, small_markov_panel.horizon + 1):
            previous = release.histogram(t - 1)
            current = release.histogram(t)
            pair_sums = current[0::2] + current[1::2]
            overlap = previous[:half] + previous[half:]
            assert (pair_sums == overlap).all(), t

    def test_release_histogram_equals_record_census(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.2, seed=6,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        for t in range(3, small_markov_panel.horizon + 1):
            panel = release.synthetic_data(t)
            census = panel.suffix_histogram(t, 3)
            assert (census == release.histogram(t)).all(), t

    def test_population_size_constant_over_time(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.2, seed=7,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        sizes = {int(release.histogram(t).sum()) for t in release.released_times()}
        assert len(sizes) == 1

    def test_records_never_rewritten(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.2, seed=8,
            noise_method="vectorized",
        )
        snapshots = {}
        for t, column in enumerate(small_markov_panel.columns(), start=1):
            synth.observe(column)
            if t >= 3:
                snapshots[t] = synth.release.synthetic_data(t).matrix.copy()
        final = synth.release.synthetic_data().matrix
        for t, snapshot in snapshots.items():
            assert (final[:, :t] == snapshot).all(), t

    def test_window_one_supported(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=1, rho=0.5, seed=9,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        assert release.histogram(small_markov_panel.horizon).shape == (2,)

    def test_window_equals_horizon_single_step(self):
        panel = iid_bernoulli(80, 4, 0.5, seed=10)
        synth = FixedWindowSynthesizer(horizon=4, window=4, rho=0.5, seed=11)
        release = synth.run(panel)
        assert release.released_times() == [4]


class TestPrivacyAccounting:
    def test_budget_fully_spent(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.01, seed=12,
            noise_method="vectorized",
        )
        synth.run(small_markov_panel)
        assert synth.accountant.spent == pytest.approx(0.01)

    def test_one_charge_per_update_step(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.01, seed=13,
            noise_method="vectorized",
        )
        synth.run(small_markov_panel)
        assert len(synth.accountant.charges) == small_markov_panel.horizon - 3 + 1

    def test_sensitivity_sqrt2_doubles_noise(self):
        base = FixedWindowSynthesizer(horizon=12, window=3, rho=0.01)
        strict = FixedWindowSynthesizer(
            horizon=12, window=3, rho=0.01, sensitivity=math.sqrt(2)
        )
        # Same rho per step => variance must double for sensitivity sqrt(2).
        assert float(strict._mechanism.sigma_sq) == pytest.approx(
            float(base._mechanism.sigma_sq)
        )
        assert strict._mechanism.rho_per_release == pytest.approx(
            2 * base._mechanism.rho_per_release
        )


class TestAnswers:
    def test_biased_vs_debiased_relationship(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.05, seed=14,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        query = AtLeastMOnes(3, 1)
        t = 6
        biased = release.answer(query, t, debias=False)
        debiased = release.answer(query, t, debias=True)
        # Reconstruct the identity: biased * n* = debiased * n + pad answer.
        lhs = biased * release.n_synthetic
        rhs = debiased * release.n_original + release.padding.count_contribution(query)
        assert lhs == pytest.approx(rhs)

    def test_invalid_padding_convention(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.05, seed=15,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        with pytest.raises(ConfigurationError):
            release.answer(AllOnes(3), 6, padding_convention="bogus")

    def test_larger_width_query_answered_from_records(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=2, rho=0.05, seed=16,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        value = release.answer(AllOnes(3), 6, debias=False)
        panel = release.synthetic_data(6)
        assert value == pytest.approx(AllOnes(3).evaluate(panel, 6))

    def test_query_time_guard(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.05, seed=17,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        with pytest.raises(ConfigurationError):
            release.answer(AllOnes(3), 2)


class TestNegativeCountHandling:
    def test_raise_policy_fires_without_padding(self):
        # Tiny population + huge noise: negative counts guaranteed quickly.
        panel = iid_bernoulli(10, 12, 0.5, seed=18)
        with pytest.raises(Exception) as info:
            FixedWindowSynthesizer(
                horizon=12, window=3, rho=0.0001, n_pad=0, on_negative="raise",
                seed=19, noise_method="vectorized",
            ).run(panel)
        assert "n_pad" in str(info.value)

    def test_redistribute_policy_completes(self):
        panel = iid_bernoulli(10, 12, 0.5, seed=20)
        synth = FixedWindowSynthesizer(
            horizon=12, window=3, rho=0.0001, n_pad=0, seed=21,
            noise_method="vectorized",
        )
        release = synth.run(panel)
        assert release.negative_count_events > 0
        # Consistency still holds after redistribution.
        for t in range(4, 13):
            previous = release.histogram(t - 1)
            current = release.histogram(t)
            assert (current[0::2] + current[1::2] == previous[:4] + previous[4:]).all()

    def test_full_padding_prevents_events(self):
        panel = two_state_markov(400, 12, 0.8, 0.05, seed=22)
        synth = FixedWindowSynthesizer(
            horizon=12, window=3, rho=0.01, beta=0.01, seed=23,
            noise_method="vectorized",
        )
        release = synth.run(panel)
        assert release.negative_count_events == 0
