"""Tests for the synthetic record stores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import apply_overlap_correction
from repro.core.synthetic_store import CumulativeSyntheticStore, WindowSyntheticStore
from repro.exceptions import ConfigurationError, ConsistencyError
from repro.rng import as_generator


class TestWindowSyntheticStore:
    def make_store(self, counts, window=2, horizon=6, seed=0):
        return WindowSyntheticStore(
            np.asarray(counts, dtype=np.int64), window, horizon, as_generator(seed)
        )

    def test_initial_counts_materialized(self):
        store = self.make_store([3, 1, 0, 2])
        assert store.m == 6
        assert store.counts().tolist() == [3, 1, 0, 2]

    def test_initial_panel_matches_patterns(self):
        store = self.make_store([0, 0, 0, 4])
        panel = store.as_dataset(2)
        assert (panel.matrix == 1).all()  # pattern 11 for everyone

    def test_extend_reaches_target(self, rng):
        store = self.make_store([2, 2, 2, 2], seed=1)
        previous = store.counts()
        noisy = np.array([3, 1, 2, 2], dtype=np.int64)
        target, _ = apply_overlap_correction(previous, noisy, rng)
        store.extend(target)
        assert store.counts().tolist() == target.tolist()

    def test_extend_rejects_inconsistent_target(self):
        store = self.make_store([2, 2, 2, 2])
        bad = np.array([5, 5, 5, 5], dtype=np.int64)  # wrong pair sums
        with pytest.raises(ConsistencyError):
            store.extend(bad)

    def test_extend_rejects_negative_target(self):
        store = self.make_store([2, 2, 2, 2])
        bad = np.array([-1, 5, 2, 2], dtype=np.int64)
        with pytest.raises(ConsistencyError):
            store.extend(bad)

    def test_records_never_rewritten(self, rng):
        store = self.make_store([4, 4, 4, 4], horizon=8, seed=2)
        before = store.as_dataset(2).matrix.copy()
        previous = store.counts()
        noisy = previous + rng.integers(-2, 3, size=4)
        target, _ = apply_overlap_correction(previous, noisy, rng)
        store.extend(target)
        after = store.as_dataset(3).matrix[:, :2]
        assert (before == after).all()

    def test_horizon_exhaustion(self, rng):
        store = self.make_store([1, 1], window=1, horizon=2, seed=3)
        target, _ = apply_overlap_correction(
            store.counts(), np.array([1, 1], dtype=np.int64), rng
        )
        store.extend(target)
        with pytest.raises(ConsistencyError):
            store.extend(target)

    def test_k1_store(self, rng):
        store = self.make_store([5, 5], window=1, horizon=4, seed=4)
        target, _ = apply_overlap_correction(
            store.counts(), np.array([7, 3], dtype=np.int64), rng
        )
        store.extend(target)
        assert store.counts().tolist() == target.tolist()
        assert store.counts().sum() == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make_store([1, 2, 3])  # wrong length for k=2
        with pytest.raises(ConfigurationError):
            self.make_store([-1, 2, 3, 4])
        with pytest.raises(ConfigurationError):
            WindowSyntheticStore(
                np.array([1, 1], dtype=np.int64), 1, 0, as_generator(0)
            )

    @given(
        seed=st.integers(0, 50),
        initial=st.lists(st.integers(0, 12), min_size=8, max_size=8),
        steps=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_counts_always_match_records(self, seed, initial, steps):
        generator = as_generator(seed)
        store = WindowSyntheticStore(
            np.asarray(initial, dtype=np.int64), 3, 3 + steps, generator
        )
        for _ in range(steps):
            previous = store.counts()
            noisy = previous + generator.integers(-3, 4, size=8)
            target, _ = apply_overlap_correction(previous, noisy, generator)
            store.extend(target)
            # The record census must equal the target histogram exactly.
            panel = store.as_dataset()
            assert (
                panel.suffix_histogram(panel.horizon, 3) == store.counts()
            ).all()
            assert (store.counts() == target).all()


class TestCumulativeSyntheticStore:
    def test_starts_all_zero(self):
        store = CumulativeSyntheticStore(10, 5, as_generator(0))
        assert store.threshold_census()[0] == 10
        assert (store.threshold_census()[1:] == 0).all()

    def test_extend_updates_weights(self):
        store = CumulativeSyntheticStore(10, 5, as_generator(1))
        store.extend(np.array([4]))  # 4 records with weight 0 get a 1
        census = store.threshold_census()
        assert census[1] == 4

    def test_extend_by_weight_group(self):
        store = CumulativeSyntheticStore(10, 5, as_generator(2))
        store.extend(np.array([6]))
        # Next round: 3 of the weight-1 records and 2 of the weight-0 ones.
        store.extend(np.array([2, 3]))
        census = store.threshold_census()
        assert census[1] == 8  # 6 + 2 new entrants
        assert census[2] == 3

    def test_request_exceeding_group_rejected(self):
        store = CumulativeSyntheticStore(5, 4, as_generator(3))
        with pytest.raises(ConsistencyError):
            store.extend(np.array([6]))  # only 5 records exist

    def test_request_for_impossible_weight_rejected(self):
        store = CumulativeSyntheticStore(5, 4, as_generator(4))
        with pytest.raises(ConsistencyError):
            store.extend(np.array([1, 1]))  # nobody has weight 1 at t=0

    def test_negative_request_rejected(self):
        store = CumulativeSyntheticStore(5, 4, as_generator(5))
        with pytest.raises(ConsistencyError):
            store.extend(np.array([-1]))

    def test_horizon_exhaustion(self):
        store = CumulativeSyntheticStore(3, 2, as_generator(6))
        store.extend(np.array([1]))
        store.extend(np.array([0, 1]))
        with pytest.raises(ConsistencyError):
            store.extend(np.array([0]))

    def test_panel_weights_match_census(self):
        store = CumulativeSyntheticStore(20, 6, as_generator(7))
        store.extend(np.array([10]))
        store.extend(np.array([3, 5]))
        store.extend(np.array([1, 2, 4]))
        panel = store.as_dataset()
        weights = panel.hamming_weights(3)
        by_weight = np.bincount(weights, minlength=7)
        census = store.threshold_census()
        assert (by_weight[::-1].cumsum()[::-1][:7] == census[:7]).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CumulativeSyntheticStore(0, 5, as_generator(0))
        with pytest.raises(ConfigurationError):
            CumulativeSyntheticStore(5, 0, as_generator(0))
