"""Release-view robustness: defensive copies, kwargs plumbing, accessors."""

import math

import numpy as np
import pytest

from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.exceptions import NotFittedError
from repro.queries.cumulative import HammingAtLeast
from repro.streams.base import CounterAccuracy
from repro.streams.binary_tree import BinaryTreeCounter


class TestDefensiveCopies:
    def test_window_histogram_is_a_copy(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.1, seed=0,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        histogram = release.histogram(5)
        histogram[:] = -999
        assert (release.histogram(5) >= 0).all()

    def test_threshold_table_is_a_copy(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.1, seed=1,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        table = release.threshold_table()
        table[:] = -999
        assert release.threshold_table().min() >= 0

    def test_synthetic_panels_are_immutable(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.1, seed=2,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        with pytest.raises(ValueError):
            release.synthetic_data().matrix[0, 0] = 1


class TestCounterKwargsPlumbing:
    def test_block_size_reaches_counters(self, small_markov_panel):
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon,
            rho=0.1,
            counter="block",
            counter_kwargs={"block_size": 2},
            seed=3,
            engine="scalar",
            noise_method="vectorized",
        )
        synth.run(small_markov_panel)
        assert synth._counters  # scalar engine materializes the counters
        assert all(c.block_size == 2 for c in synth._counters.values())
        assert synth.check_invariants()

    def test_block_size_reaches_bank_counters(self, small_markov_panel):
        # counter_kwargs route through the fallback bank's wrapped counters.
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon,
            rho=0.1,
            counter="block",
            counter_kwargs={"block_size": 2},
            seed=3,
            engine="vectorized",
            noise_method="vectorized",
        )
        synth.run(small_markov_panel)
        assert synth.bank is not None and synth.bank.counters
        assert all(c.block_size == 2 for c in synth.bank.counters)
        assert synth.check_invariants()


class TestAccessors:
    def test_release_metadata_before_any_data(self):
        synth = FixedWindowSynthesizer(horizon=6, window=2, rho=0.5, seed=4)
        with pytest.raises(NotFittedError):
            synth.release.n_original
        with pytest.raises(NotFittedError):
            synth.release.n_synthetic

    def test_cumulative_m_before_data(self):
        synth = CumulativeSynthesizer(horizon=6, rho=0.5, seed=5)
        with pytest.raises(NotFittedError):
            synth.release.m

    def test_released_times_ascending(self, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.1, seed=6,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        times = release.released_times()
        assert times == sorted(times)
        assert times[0] == 3 and times[-1] == small_markov_panel.horizon

    def test_answer_accepts_numpy_time(self, small_markov_panel):
        # Times coming out of numpy arrays must work as indices.
        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon, rho=0.1, seed=7,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        t = np.int64(5)
        value = release.answer(HammingAtLeast(2), int(t))
        assert 0.0 <= value <= 1.0


class TestCounterAccuracy:
    def test_accuracy_dataclass(self):
        counter = BinaryTreeCounter(16, 0.5)
        accuracy = counter.accuracy(beta=0.1, t=7)
        assert isinstance(accuracy, CounterAccuracy)
        assert accuracy.alpha == pytest.approx(
            counter.error_stddev(7) * math.sqrt(2 * math.log(2 / 0.1))
        )

    def test_accuracy_beta_validation(self):
        counter = BinaryTreeCounter(16, 0.5)
        with pytest.raises(Exception):
            counter.accuracy(beta=0.0)

    def test_noiseless_accuracy_zero(self):
        counter = BinaryTreeCounter(16, math.inf)
        assert counter.accuracy(beta=0.05).alpha == 0.0
