"""MultiAttributeSynthesizer: composition, bit-exactness, and state.

The composite synthesizer's contract:

* ``d = 1`` is **bit-exact** with the standalone engines (binary and
  categorical) — the sole attribute inherits the master generator and
  the full budget, so noise draws, ledgers, and synthetic records
  coincide;
* ``d >= 2`` splits one zCDP budget across attributes and cross pairs
  by configurable weights, and the component spends sum to the total;
* cross-attribute counts are the noised per-round joint histogram
  (exact when noiseless), order-insensitive up to transposition;
* ``state_dict``/``load_state`` round-trip mid-stream, churn included,
  and the restored stream continues byte-identically.
"""

import json
import math

import numpy as np
import pytest

from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.core.multi_attribute import AttributeSpec, MultiAttributeSynthesizer
from repro.data.categorical import employment_status_panel
from repro.data.dataset import LongitudinalDataset
from repro.data.generators import churn_two_state_markov, two_state_markov
from repro.exceptions import ConfigurationError, DataValidationError
from repro.queries import AtLeastMOnes
from repro.queries.categorical import CategoryAtLeastM
from repro.types import AttributeFrame

HORIZON = 8
WINDOW = 3


@pytest.fixture(scope="module")
def binary_matrix():
    return two_state_markov(300, HORIZON, 0.2, 0.3, seed=11).matrix


@pytest.fixture(scope="module")
def employment():
    return employment_status_panel(300, HORIZON, seed=12)


def _two_attribute_synth(rho=0.4, seed=1, **kwargs):
    return MultiAttributeSynthesizer(
        HORIZON,
        WINDOW,
        rho,
        attributes=[
            {"name": "employment", "alphabet": 3},
            {"name": "income", "alphabet": 4},
        ],
        seed=seed,
        **kwargs,
    )


def _two_attribute_panels(n=300, seed=13):
    emp = employment_status_panel(n, HORIZON, seed=seed).matrix
    inc = (emp + np.arange(n)[:, None]) % 4
    return {"employment": emp, "income": inc}


# ----------------------------------------------------------------------
# d = 1 bit-exactness anchors
# ----------------------------------------------------------------------


def test_sole_binary_attribute_is_bit_exact(binary_matrix):
    reference = FixedWindowSynthesizer(HORIZON, WINDOW, 0.2, seed=7)
    composite = MultiAttributeSynthesizer(
        HORIZON, WINDOW, 0.2, attributes=["poverty"], seed=7
    )
    ref_release = reference.run(LongitudinalDataset(binary_matrix))
    multi_release = composite.run({"poverty": binary_matrix})
    inner = multi_release.attribute("poverty")
    for t in ref_release.released_times():
        np.testing.assert_array_equal(ref_release.histogram(t), inner.histogram(t))
    assert reference.accountant.charges == tuple(
        (label.split(": ", 1)[1], rho) for label, rho in composite.accountant.charges
    )
    query = AtLeastMOnes(WINDOW, 1)
    for t in range(WINDOW, HORIZON + 1):
        assert multi_release.answer(query, t, attribute="poverty") == ref_release.answer(
            query, t
        )
    # Sole-attribute records come straight from the engine's store.
    records = multi_release.synthetic_records(HORIZON)
    np.testing.assert_array_equal(
        records.sole(),
        ref_release.synthetic_data().matrix[: records.n, HORIZON - 1],
    )


def test_sole_categorical_attribute_is_bit_exact(employment):
    reference = CategoricalWindowSynthesizer(HORIZON, WINDOW, 3, 0.2, seed=8)
    composite = MultiAttributeSynthesizer(
        HORIZON,
        WINDOW,
        0.2,
        attributes=[{"name": "employment", "alphabet": 3}],
        seed=8,
    )
    ref_release = reference.run(employment)
    multi_release = composite.run({"employment": employment.matrix})
    inner = multi_release.attribute("employment")
    for t in ref_release.released_times():
        np.testing.assert_array_equal(ref_release.histogram(t), inner.histogram(t))
    assert reference.accountant.spent == composite.accountant.spent


def test_sole_attribute_width_one_answer_needs_no_attribute(binary_matrix):
    composite = MultiAttributeSynthesizer(
        HORIZON, WINDOW, math.inf, attributes=["poverty"], seed=0
    )
    release = composite.run({"poverty": binary_matrix})
    query = AtLeastMOnes(WINDOW, 1)
    assert release.answer(query, HORIZON) == release.answer(
        query, HORIZON, attribute="poverty"
    )


# ----------------------------------------------------------------------
# Budget composition
# ----------------------------------------------------------------------


def test_component_spends_sum_to_total_budget():
    synth = _two_attribute_synth(rho=0.8)
    synth.run(_two_attribute_panels())
    assert math.isclose(synth.accountant.spent, 0.8, rel_tol=1e-9)
    assert math.isclose(synth.zcdp_spent(), 0.8, rel_tol=1e-9)
    assert synth.accountant.remaining == pytest.approx(0.0, abs=1e-12)


def test_attribute_weights_steer_the_split():
    synth = MultiAttributeSynthesizer(
        HORIZON,
        WINDOW,
        0.6,
        attributes=[
            {"name": "employment", "alphabet": 3, "weight": 2.0},
            {"name": "income", "alphabet": 4, "weight": 1.0},
        ],
        cross=[],
        seed=2,
    )
    synth.run(_two_attribute_panels())
    spends = {}
    for label, rho in synth.accountant.charges:
        prefix = label.split(": ", 1)[0]
        spends[prefix] = spends.get(prefix, 0.0) + rho
    assert math.isclose(spends["employment"], 2 * spends["income"], rel_tol=1e-9)
    assert math.isclose(math.fsum(spends.values()), 0.6, rel_tol=1e-9)


def test_cross_weight_scales_the_pair_budget():
    light = _two_attribute_synth(rho=0.6, cross_weight=0.5)
    heavy = _two_attribute_synth(rho=0.6, cross_weight=2.0)
    assert heavy.rho_per_pair > light.rho_per_pair
    assert math.isclose(light.rho_per_pair, 0.6 * 0.5 / 2.5, rel_tol=1e-9)
    assert math.isclose(heavy.rho_per_pair, 0.6 * 2.0 / 4.0, rel_tol=1e-9)


# ----------------------------------------------------------------------
# Cross-attribute marginals
# ----------------------------------------------------------------------


def test_noiseless_cross_counts_match_joint_histogram():
    panels = _two_attribute_panels()
    synth = _two_attribute_synth(rho=math.inf)
    release = synth.run(panels)
    for t in range(1, HORIZON + 1):
        codes = panels["employment"][:, t - 1] * 4 + panels["income"][:, t - 1]
        truth = np.bincount(codes.astype(np.int64), minlength=12)
        np.testing.assert_array_equal(
            release.cross_counts("employment", "income", t), truth
        )
        # The transposed request is the reshaped transpose of the same table.
        transposed = release.cross_counts("income", "employment", t)
        np.testing.assert_array_equal(
            transposed, truth.reshape(3, 4).T.reshape(-1)
        )
        marginal = release.cross_marginal("employment", "income", t)
        assert marginal.min() >= 0.0
        np.testing.assert_allclose(marginal.sum(), 1.0, rtol=1e-12)


def test_unconfigured_pair_is_rejected():
    synth = MultiAttributeSynthesizer(
        HORIZON,
        WINDOW,
        math.inf,
        attributes=[
            {"name": "a", "alphabet": 2},
            {"name": "b", "alphabet": 2},
            {"name": "c", "alphabet": 2},
        ],
        cross=[("a", "b")],
        seed=0,
    )
    frame = AttributeFrame.from_columns(
        {name: np.zeros(10, dtype=np.int64) for name in ("a", "b", "c")}
    )
    release = synth.observe(frame)
    with pytest.raises(ConfigurationError, match="no cross marginal"):
        release.cross_counts("a", "c", 1)


# ----------------------------------------------------------------------
# Synthetic records
# ----------------------------------------------------------------------


def test_synthetic_records_are_deterministic_and_in_range():
    synth = _two_attribute_synth(rho=0.5, seed=21)
    release = synth.run(_two_attribute_panels())
    first = release.synthetic_records(HORIZON)
    second = release.synthetic_records(HORIZON)
    assert first == second
    assert first.names == ("employment", "income")
    assert first.data[:, 0].min() >= 0 and first.data[:, 0].max() < 3
    assert first.data[:, 1].min() >= 0 and first.data[:, 1].max() < 4
    # Different rounds draw from independent per-round streams.
    assert release.synthetic_records(HORIZON - 1).n > 0


# ----------------------------------------------------------------------
# Churn parity and validation
# ----------------------------------------------------------------------


def test_churn_stream_matches_per_engine_ingestion():
    """Frames with entrants/exits feed each engine like a direct stream."""
    panel = churn_two_state_markov(
        50, HORIZON, 0.85, 0.2, entry_rate=0.25, exit_hazard=0.08, seed=3
    )
    events = list(panel.rounds())
    composite = MultiAttributeSynthesizer(
        HORIZON, WINDOW, 0.3, attributes=["poverty"], seed=6
    )
    reference = FixedWindowSynthesizer(HORIZON, WINDOW, 0.3, seed=6)
    for column, entrants, exits in events:
        composite.observe(column, entrants=entrants, exits=exits)
        reference.observe(column, entrants=entrants, exits=exits)
    inner = composite.release.attribute("poverty")
    for t in reference.release.released_times():
        np.testing.assert_array_equal(
            reference.release.histogram(t), inner.histogram(t)
        )
    assert composite.release.population(HORIZON) == reference.release.population(
        HORIZON
    )


def test_invalid_values_are_rejected_before_any_engine_advances():
    synth = _two_attribute_synth(rho=math.inf)
    bad = AttributeFrame.from_columns(
        {
            "employment": np.zeros(10, dtype=np.int64),
            "income": np.full(10, 9, dtype=np.int64),  # out of [0, 4)
        }
    )
    with pytest.raises(DataValidationError):
        synth.observe(bad)
    assert synth.t == 0  # nothing advanced — the stream is still clean
    good = AttributeFrame.from_columns(
        {
            "employment": np.zeros(10, dtype=np.int64),
            "income": np.zeros(10, dtype=np.int64),
        }
    )
    synth.observe(good)
    assert synth.t == 1


def test_run_rejects_misordered_mapping():
    synth = _two_attribute_synth(rho=math.inf)
    panels = _two_attribute_panels()
    with pytest.raises(DataValidationError, match="do not match declared"):
        synth.run({"income": panels["income"], "employment": panels["employment"]})


def test_duplicate_attribute_names_are_rejected():
    with pytest.raises(ConfigurationError):
        MultiAttributeSynthesizer(
            HORIZON, WINDOW, 0.1, attributes=["a", "a"], seed=0
        )


def test_observe_column_shim_is_gone():
    synth = MultiAttributeSynthesizer(
        HORIZON, WINDOW, math.inf, attributes=["poverty"], seed=0
    )
    assert not hasattr(synth, "observe_column")


# ----------------------------------------------------------------------
# Config and state round-trips
# ----------------------------------------------------------------------


def test_config_dict_round_trips_through_json():
    synth = _two_attribute_synth(rho=0.4, cross_weight=1.5)
    config = json.loads(json.dumps(synth.config_dict()))
    clone = MultiAttributeSynthesizer.from_config(config)
    assert clone.config_dict() == synth.config_dict()
    assert clone.attribute_names == synth.attribute_names
    assert clone.cross_pairs == synth.cross_pairs


@pytest.mark.parametrize("attributes", [1, 2])
def test_state_round_trip_continues_byte_identically(attributes):
    """Mid-stream state restore continues the stream bit for bit, churn included."""
    panel = churn_two_state_markov(
        40, HORIZON, 0.85, 0.2, entry_rate=0.2, exit_hazard=0.1, seed=9
    )
    events = [
        (
            AttributeFrame.from_columns(
                {
                    "employment": (column + np.arange(column.shape[0])) % 3,
                    "income": (column * 2 + np.arange(column.shape[0])) % 4,
                }
            )
            if attributes == 2
            else column,
            entrants,
            exits,
        )
        for column, entrants, exits in panel.rounds()
    ]
    specs = (
        [{"name": "employment", "alphabet": 3}, {"name": "income", "alphabet": 4}]
        if attributes == 2
        else ["poverty"]
    )

    def build():
        return MultiAttributeSynthesizer(
            HORIZON, WINDOW, 0.5, attributes=specs, seed=14
        )

    uninterrupted = build()
    for data, entrants, exits in events:
        uninterrupted.observe(data, entrants=entrants, exits=exits)

    partial = build()
    for data, entrants, exits in events[:4]:
        partial.observe(data, entrants=entrants, exits=exits)
    state = json.loads(json.dumps(partial.state_dict(), default=_jsonify))
    resumed = MultiAttributeSynthesizer.from_config(partial.config_dict())
    resumed.load_state(_dejsonify(state))
    assert resumed.t == 4
    for data, entrants, exits in events[4:]:
        resumed.observe(data, entrants=entrants, exits=exits)

    names = uninterrupted.attribute_names
    for name in names:
        ref = uninterrupted.release.attribute(name)
        got = resumed.release.attribute(name)
        for t in ref.released_times():
            np.testing.assert_array_equal(ref.histogram(t), got.histogram(t))
    if attributes == 2:
        for t in range(1, HORIZON + 1):
            np.testing.assert_array_equal(
                uninterrupted.release.cross_counts(*names, t),
                resumed.release.cross_counts(*names, t),
            )
        assert uninterrupted.release.synthetic_records(
            HORIZON
        ) == resumed.release.synthetic_records(HORIZON)
    assert uninterrupted.zcdp_spent() == resumed.zcdp_spent()


def _jsonify(obj):
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": obj.dtype.str}
    if isinstance(obj, np.integer):
        return int(obj)
    raise TypeError(f"not JSON-serializable: {type(obj)}")


def _dejsonify(obj):
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return np.array(obj["__ndarray__"], dtype=np.dtype(obj["dtype"]))
        return {key: _dejsonify(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_dejsonify(item) for item in obj]
    return obj


def test_attribute_spec_round_trip():
    spec = AttributeSpec("income", alphabet=4, weight=2.0, window=2, n_pad=64)
    assert AttributeSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ConfigurationError):
        AttributeSpec("bad", alphabet=1)
