"""Tests for the overlap-consistency projection (Algorithm 1, stage 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import (
    apply_overlap_correction,
    check_window_consistency,
    pair_totals,
)
from repro.exceptions import ConfigurationError, NegativeCountError
from repro.rng import as_generator


def histograms(k, max_count=50):
    return st.lists(
        st.integers(0, max_count), min_size=1 << k, max_size=1 << k
    ).map(lambda v: np.asarray(v, dtype=np.int64))


def noisy_histograms(k, spread=30):
    return st.lists(
        st.integers(-spread, spread + 30), min_size=1 << k, max_size=1 << k
    ).map(lambda v: np.asarray(v, dtype=np.int64))


class TestPairTotals:
    def test_known_values(self):
        counts = np.array([5, 3, 2, 8], dtype=np.int64)  # k=2 bins 00,01,10,11
        # M_z = p_{0z} + p_{1z}: M_0 = p00+p10 = 7, M_1 = p01+p11 = 11.
        assert pair_totals(counts).tolist() == [7, 11]

    def test_k1(self):
        counts = np.array([4, 6], dtype=np.int64)
        assert pair_totals(counts).tolist() == [10]

    def test_rejects_bad_length(self):
        with pytest.raises(ConfigurationError):
            pair_totals(np.array([1, 2, 3]))
        with pytest.raises(ConfigurationError):
            pair_totals(np.array([1]))


class TestApplyOverlapCorrection:
    def test_preserves_pair_sums(self, rng):
        previous = np.array([10, 5, 7, 3], dtype=np.int64)
        noisy = np.array([12, 2, 9, 1], dtype=np.int64)
        corrected, events = apply_overlap_correction(previous, noisy, rng)
        assert check_window_consistency(previous, corrected)
        assert events == 0

    def test_even_discrepancy_split_exactly(self, rng):
        previous = np.array([10, 10], dtype=np.int64)  # k=1: M = 20
        noisy = np.array([8, 8], dtype=np.int64)  # sum 16, delta2 = 4
        corrected, _ = apply_overlap_correction(previous, noisy, rng)
        assert corrected.tolist() == [10, 10]

    def test_odd_discrepancy_randomized_rounding(self):
        previous = np.array([10, 11], dtype=np.int64)  # M = 21
        noisy = np.array([8, 8], dtype=np.int64)  # delta2 = 5 (odd)
        outcomes = set()
        for seed in range(40):
            corrected, _ = apply_overlap_correction(
                previous, noisy, as_generator(seed)
            )
            outcomes.add(tuple(corrected.tolist()))
        # Both roundings occur: p0 in {10, 11}.
        assert outcomes == {(10, 11), (11, 10)}

    def test_rounding_is_fair(self):
        previous = np.array([10, 11], dtype=np.int64)
        noisy = np.array([8, 8], dtype=np.int64)
        ups = 0
        trials = 400
        for seed in range(trials):
            corrected, _ = apply_overlap_correction(previous, noisy, as_generator(seed))
            ups += corrected[0] == 11
        assert abs(ups / trials - 0.5) < 0.1

    def test_negative_redistribution_keeps_sum(self, rng):
        previous = np.array([1, 1], dtype=np.int64)  # M = 2
        noisy = np.array([-30, 30], dtype=np.int64)
        corrected, events = apply_overlap_correction(previous, noisy, rng)
        assert events == 1
        assert corrected.sum() == 2
        assert (corrected >= 0).all()

    def test_negative_raise_policy(self, rng):
        previous = np.array([1, 1], dtype=np.int64)
        noisy = np.array([-30, 30], dtype=np.int64)
        with pytest.raises(NegativeCountError):
            apply_overlap_correction(previous, noisy, rng, on_negative="raise")

    def test_invalid_policy(self, rng):
        with pytest.raises(ConfigurationError):
            apply_overlap_correction(
                np.array([1, 1]), np.array([1, 1]), rng, on_negative="clamp"
            )

    def test_shape_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            apply_overlap_correction(np.array([1, 1]), np.array([1, 1, 1, 1]), rng)

    def test_zero_noise_is_identity_when_consistent(self, rng):
        # When the noisy counts already satisfy the constraint, the
        # correction leaves them unchanged.
        previous = np.array([6, 4, 3, 7], dtype=np.int64)
        # M_0 = 9, M_1 = 11; choose consistent new counts.
        noisy = np.array([5, 4, 6, 5], dtype=np.int64)
        corrected, _ = apply_overlap_correction(previous, noisy, rng)
        assert corrected.tolist() == noisy.tolist()

    @given(previous=histograms(3), noisy=noisy_histograms(3), seed=st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_property_consistency_always_restored(self, previous, noisy, seed):
        corrected, _ = apply_overlap_correction(previous, noisy, as_generator(seed))
        assert check_window_consistency(previous, corrected)

    @given(previous=histograms(2), noisy=noisy_histograms(2), seed=st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_property_correction_is_centred(self, previous, noisy, seed):
        # The correction splits each pair's discrepancy evenly: the average
        # of (p - C^) over a pair is Delta_z (up to the +-1/2 rounding).
        corrected, events = apply_overlap_correction(
            previous, noisy, as_generator(seed)
        )
        if events:
            return  # redistribution breaks the exact algebra by design
        totals = pair_totals(previous)
        double_delta = totals - (noisy[0::2] + noisy[1::2])
        pair_shift = (corrected[0::2] - noisy[0::2]) + (corrected[1::2] - noisy[1::2])
        assert (pair_shift == double_delta).all()


class TestCheckWindowConsistency:
    def test_detects_violation(self):
        previous = np.array([5, 5, 5, 5], dtype=np.int64)
        bad = np.array([5, 5, 5, 6], dtype=np.int64)
        assert not check_window_consistency(previous, bad)

    def test_detects_negative(self):
        previous = np.array([5, 5], dtype=np.int64)
        assert not check_window_consistency(previous, np.array([-1, 11]))

    def test_accepts_valid(self):
        previous = np.array([5, 5, 5, 5], dtype=np.int64)
        good = np.array([4, 6, 7, 3], dtype=np.int64)
        assert check_window_consistency(previous, good)
