"""Tests for the categorical fixed-window synthesizer (Algorithm 1, q > 2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categorical_window import (
    CategoricalWindowSynthesizer,
    apply_categorical_correction,
    lift_categorical_weights,
)
from repro.data.categorical import CategoricalDataset, categorical_iid, categorical_markov
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NegativeCountError,
)
from repro.queries.categorical import (
    CategoricalPatternQuery,
    CategoryAtLeastM,
)
from repro.rng import as_generator


@pytest.fixture(scope="module")
def employment_panel():
    """3-state employment-status panel (employed/unemployed/out of LF)."""
    transition = np.array(
        [[0.90, 0.05, 0.05], [0.30, 0.60, 0.10], [0.05, 0.10, 0.85]]
    )
    return categorical_markov(1200, 10, transition, seed=0)


class TestCategoricalCorrection:
    def test_preserves_group_sums(self, rng):
        q, k = 3, 2
        previous = np.arange(q**k, dtype=np.int64) + 5
        noisy = previous + rng.integers(-4, 5, size=q**k)
        corrected, events = apply_categorical_correction(previous, noisy, q, rng)
        group_totals = previous.reshape(q, q).sum(axis=0)
        child_sums = corrected.reshape(q, q).sum(axis=1)
        assert (child_sums == group_totals).all()
        assert (corrected >= 0).all()
        assert events == 0

    def test_binary_case_matches_pair_semantics(self, rng):
        # q=2 must satisfy the same constraint as the binary module.
        from repro.core.consistency import check_window_consistency

        previous = np.array([8, 6, 7, 9], dtype=np.int64)
        noisy = np.array([7, 8, 4, 12], dtype=np.int64)
        corrected, _ = apply_categorical_correction(previous, noisy, 2, rng)
        assert check_window_consistency(previous, corrected)

    def test_residue_distributed_fairly(self):
        q = 3
        previous = np.array([4, 4, 4, 0, 0, 0, 0, 0, 0], dtype=np.int64)  # M_0=4
        noisy = np.zeros(9, dtype=np.int64)
        noisy[0:3] = [1, 1, 0]  # group 0 children sum 2; D = 2 -> base 0, residue 2
        totals = np.zeros(3)
        trials = 300
        for seed in range(trials):
            corrected, _ = apply_categorical_correction(
                previous, noisy, q, as_generator(seed)
            )
            totals += corrected[0:3]
        # Each child gets +1 with probability 2/3 on top of its noisy count.
        expected = np.array([1, 1, 0]) + 2 / 3
        assert np.abs(totals / trials - expected).max() < 0.15

    def test_negative_raise(self, rng):
        previous = np.array([1, 0, 0, 0], dtype=np.int64)
        noisy = np.array([-40, 40, 0, 0], dtype=np.int64)
        with pytest.raises(NegativeCountError):
            apply_categorical_correction(previous, noisy, 2, rng, on_negative="raise")

    def test_negative_redistribute_keeps_sums(self, rng):
        q = 3
        previous = np.zeros(9, dtype=np.int64)
        previous[0] = 6  # M_0 = 6 (pattern 00 has leading digit 0, code 0)
        noisy = np.zeros(9, dtype=np.int64)
        noisy[0:3] = [-50, 40, 4]
        corrected, events = apply_categorical_correction(previous, noisy, q, rng)
        assert events >= 1
        assert (corrected >= 0).all()
        group_totals = previous.reshape(q, q).sum(axis=0)
        assert (corrected.reshape(q, q).sum(axis=1) == group_totals).all()

    def test_invalid_policy(self, rng):
        with pytest.raises(ConfigurationError):
            apply_categorical_correction(
                np.zeros(4, dtype=np.int64),
                np.zeros(4, dtype=np.int64),
                2,
                rng,
                on_negative="clamp",
            )

    @given(seed=st.integers(0, 200), q=st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_property_group_sums_always_preserved(self, seed, q):
        generator = as_generator(seed)
        k = 2
        previous = generator.integers(0, 20, size=q**k).astype(np.int64)
        noisy = previous + generator.integers(-8, 9, size=q**k)
        corrected, _ = apply_categorical_correction(previous, noisy, q, generator)
        group_totals = previous.reshape(q, q ** (k - 1)).sum(axis=0)
        child_sums = corrected.reshape(q ** (k - 1), q).sum(axis=1)
        assert (child_sums == group_totals).all()
        assert (corrected >= 0).all()


class TestLiftCategoricalWeights:
    def test_lift_preserves_answers(self, employment_panel):
        query = CategoryAtLeastM(1, 3, category=1, m=1)
        lifted = lift_categorical_weights(query.weights, 1, 2, 3)
        t = 5
        hist2 = employment_panel.suffix_histogram(t, 2)
        direct = query.evaluate(employment_panel, t)
        via_lift = float(lifted @ hist2) / employment_panel.n_individuals
        assert direct == pytest.approx(via_lift)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lift_categorical_weights(np.zeros(3), 1, 2, 4)  # wrong length
        with pytest.raises(ConfigurationError):
            lift_categorical_weights(np.zeros(9), 2, 1, 3)  # downward


class TestCategoricalSynthesizer:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CategoricalWindowSynthesizer(horizon=5, window=2, alphabet=1, rho=1.0)
        with pytest.raises(ConfigurationError):
            CategoricalWindowSynthesizer(horizon=5, window=9, alphabet=3, rho=1.0)
        with pytest.raises(ConfigurationError):
            CategoricalWindowSynthesizer(horizon=5, window=2, alphabet=3, rho=0.0)
        with pytest.raises(ConfigurationError):
            # 17 bits of window over alphabet 2 exceed the bin guard.
            CategoricalWindowSynthesizer(horizon=20, window=17, alphabet=2, rho=1.0)

    def test_oracle_mode_exact(self, employment_panel):
        synth = CategoricalWindowSynthesizer(
            horizon=employment_panel.horizon, window=2, alphabet=3, rho=math.inf,
            seed=1,
        )
        release = synth.run(employment_panel)
        for t in (2, 5, 10):
            for code in range(9):
                query = CategoricalPatternQuery(2, code, 3)
                assert release.answer(query, t) == pytest.approx(
                    query.evaluate(employment_panel, t)
                )

    def test_consistency_and_census(self, employment_panel):
        synth = CategoricalWindowSynthesizer(
            horizon=employment_panel.horizon, window=2, alphabet=3, rho=0.1,
            seed=2, noise_method="vectorized",
        )
        release = synth.run(employment_panel)
        q = 3
        for t in range(3, employment_panel.horizon + 1):
            previous = release.histogram(t - 1)
            current = release.histogram(t)
            group_totals = previous.reshape(q, q).sum(axis=0)
            child_sums = current.reshape(q, q).sum(axis=1)
            assert (child_sums == group_totals).all()
            census = release.synthetic_data(t).suffix_histogram(t, 2)
            assert (census == current).all()

    def test_population_constant(self, employment_panel):
        synth = CategoricalWindowSynthesizer(
            horizon=employment_panel.horizon, window=2, alphabet=3, rho=0.1,
            seed=3, noise_method="vectorized",
        )
        release = synth.run(employment_panel)
        sizes = {int(release.histogram(t).sum()) for t in release.released_times()}
        assert sizes == {release.n_synthetic}

    def test_debiasing_identity(self, employment_panel):
        synth = CategoricalWindowSynthesizer(
            horizon=employment_panel.horizon, window=2, alphabet=3, rho=0.1,
            seed=4, noise_method="vectorized",
        )
        release = synth.run(employment_panel)
        query = CategoryAtLeastM(2, 3, category=1, m=1)
        t = 6
        biased = release.answer(query, t, debias=False)
        debiased = release.answer(query, t, debias=True)
        padding_count = release.n_pad * query.weight_sum
        assert biased * release.n_synthetic == pytest.approx(
            debiased * release.n_original + padding_count
        )

    def test_debiased_accuracy(self, employment_panel):
        synth = CategoricalWindowSynthesizer(
            horizon=employment_panel.horizon, window=2, alphabet=3, rho=0.2,
            seed=5, noise_method="vectorized",
        )
        release = synth.run(employment_panel)
        query = CategoryAtLeastM(2, 3, category=0, m=2)
        for t in (2, 6, 10):
            assert abs(
                release.answer(query, t) - query.evaluate(employment_panel, t)
            ) < 0.08

    def test_privacy_accounting(self, employment_panel):
        synth = CategoricalWindowSynthesizer(
            horizon=employment_panel.horizon, window=2, alphabet=3, rho=0.05,
            seed=6, noise_method="vectorized",
        )
        synth.run(employment_panel)
        assert synth.accountant.spent == pytest.approx(0.05)

    def test_alphabet_mismatch_rejected(self, employment_panel):
        synth = CategoricalWindowSynthesizer(
            horizon=employment_panel.horizon, window=2, alphabet=4, rho=0.1, seed=7
        )
        with pytest.raises(DataValidationError):
            synth.run(employment_panel)

    def test_column_value_validation(self):
        synth = CategoricalWindowSynthesizer(
            horizon=4, window=2, alphabet=3, rho=0.5, seed=8
        )
        with pytest.raises(DataValidationError):
            synth.observe(np.array([0, 3]))

    def test_padding_panel_uniform(self):
        synth = CategoricalWindowSynthesizer(
            horizon=6, window=2, alphabet=3, rho=0.1, n_pad=2, seed=9
        )
        panel = synth.padding_panel()
        for t in range(2, 7):
            assert (panel.suffix_histogram(t, 2) == 2).all()

    def test_query_width_above_window_answered_from_records(self, employment_panel):
        # Parity with the binary release: wider queries fall back to the
        # synthetic records (no accuracy guarantee — the Figure 3 caveat).
        synth = CategoricalWindowSynthesizer(
            horizon=employment_panel.horizon, window=2, alphabet=3, rho=0.1,
            seed=10, noise_method="vectorized",
        )
        release = synth.run(employment_panel)
        query = CategoryAtLeastM(3, 3, category=0, m=1)
        biased = release.answer(query, 5, debias=False)
        direct = query.evaluate(release.synthetic_data(5), 5)
        assert biased == pytest.approx(direct)
        # Batch answering has no record-level path for wide queries.
        with pytest.raises(ConfigurationError):
            release.answer_series(query)

    def test_answer_series_unreleased_round_raises_not_fitted(self, employment_panel):
        from repro.exceptions import NotFittedError

        synth = CategoricalWindowSynthesizer(
            horizon=employment_panel.horizon, window=3, alphabet=3, rho=0.1,
            seed=11, noise_method="vectorized",
        )
        release = synth.run(employment_panel)
        narrow = CategoryAtLeastM(2, 3, category=1, m=1)
        # t=2 satisfies the query's lower bound but precedes the first
        # released histogram (window=3) — same error as answer().
        with pytest.raises(NotFittedError):
            release.answer_series(narrow, times=[2])
        with pytest.raises(NotFittedError):
            release.answer(narrow, 2)

    def test_binary_alphabet_agrees_with_binary_synthesizer_oracle(self):
        # q=2 categorical synthesizer and the binary one agree exactly in
        # oracle mode on the same data.
        from repro.core.fixed_window import FixedWindowSynthesizer
        from repro.data.dataset import LongitudinalDataset

        matrix = np.random.default_rng(11).integers(0, 2, size=(300, 8))
        binary_panel = LongitudinalDataset(matrix)
        categorical_panel = CategoricalDataset(matrix, alphabet=2)

        binary = FixedWindowSynthesizer(
            horizon=8, window=3, rho=math.inf, seed=12
        ).run(binary_panel)
        categorical = CategoricalWindowSynthesizer(
            horizon=8, window=3, alphabet=2, rho=math.inf, seed=13
        ).run(categorical_panel)
        for t in range(3, 9):
            assert (binary.histogram(t) == categorical.histogram(t)).all()

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_property_invariants_random_panels(self, seed):
        panel = categorical_iid(100, 6, [0.3, 0.4, 0.3], seed=seed)
        synth = CategoricalWindowSynthesizer(
            horizon=6, window=2, alphabet=3, rho=0.2, seed=seed,
            noise_method="vectorized",
        )
        release = synth.run(panel)
        for t in range(3, 7):
            previous = release.histogram(t - 1)
            current = release.histogram(t)
            assert (current >= 0).all()
            assert current.sum() == previous.sum()
