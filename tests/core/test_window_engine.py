"""Tests for the unified alphabet-generic window engine.

The contract of the PR that introduced :mod:`repro.core.window_engine`:

* the binary synthesizer is the ``q = 2`` special case — a categorical
  synthesizer at ``alphabet=2`` is **bit-exact** with
  :class:`FixedWindowSynthesizer` (noise draws, synthetic records, and
  zCDP ledger included);
* the vectorized and scalar categorical engines implement the same
  algorithm (identical noiseless releases, identical assignment law);
* churn (``entrants=`` / ``exits=``) works through the categorical round
  loop exactly as it does through the binary one.
"""

import math

import numpy as np
import pytest

from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.core.consistency import (
    apply_group_correction,
    apply_overlap_correction,
    check_group_consistency,
    group_totals,
    pair_totals,
)
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.core.padding import PaddingSpec
from repro.core.synthetic_store import (
    WindowSyntheticStore,
    _assign_within_groups,
    _choose_within_groups,
)
from repro.data.categorical import CategoricalDataset, categorical_markov
from repro.data.dataset import LongitudinalDataset
from repro.data.generators import two_state_markov
from repro.exceptions import ConfigurationError, ConsistencyError
from repro.queries.categorical import CategoryAtLeastM
from repro.rng import as_generator


@pytest.fixture(scope="module")
def binary_matrix():
    return two_state_markov(400, 9, 0.25, 0.3, seed=3).matrix


@pytest.fixture(scope="module")
def q3_panel():
    transition = np.array(
        [[0.85, 0.10, 0.05], [0.25, 0.65, 0.10], [0.05, 0.15, 0.80]]
    )
    return categorical_markov(600, 8, transition, seed=4)


def _fingerprint(synth):
    release = synth.release
    parts = [release.histogram(t) for t in release.released_times()]
    parts.append(release.synthetic_data().matrix.astype(np.int64))
    return parts


class TestBinaryIsTheQ2SpecialCase:
    @pytest.mark.parametrize("window", [1, 2, 3])
    def test_bit_exact_under_noise(self, binary_matrix, window):
        horizon = binary_matrix.shape[1]
        binary = FixedWindowSynthesizer(horizon, window, 0.05, seed=11)
        categorical = CategoricalWindowSynthesizer(
            horizon, window, 2, 0.05, seed=11, engine="vectorized"
        )
        binary.run(LongitudinalDataset(binary_matrix))
        categorical.run(CategoricalDataset(binary_matrix, alphabet=2))
        for left, right in zip(_fingerprint(binary), _fingerprint(categorical)):
            assert (left == right).all()
        assert binary.accountant.charges == categorical.accountant.charges
        assert (
            binary._generator.bit_generator.state
            == categorical._generator.bit_generator.state
        )

    def test_same_padding_and_config_shape(self, binary_matrix):
        horizon = binary_matrix.shape[1]
        binary = FixedWindowSynthesizer(horizon, 3, 0.05, seed=1)
        categorical = CategoricalWindowSynthesizer(
            horizon, 3, 2, 0.05, seed=1, engine="vectorized"
        )
        assert binary.padding.n_pad == categorical.padding.n_pad
        assert binary.config_dict()["algorithm"] == "fixed_window"
        config = categorical.config_dict()
        assert config["algorithm"] == "categorical_window"
        assert config["alphabet"] == 2
        assert config["engine"] == "vectorized"

    def test_q2_release_keeps_the_categorical_contract(self, binary_matrix):
        # The shared store hands q = 2 panels back as binary datasets;
        # the categorical release must still expose CategoricalDataset —
        # including on the wide-query record fallback.
        horizon = binary_matrix.shape[1]
        synth = CategoricalWindowSynthesizer(horizon, 2, 2, 0.05, seed=15)
        release = synth.run(CategoricalDataset(binary_matrix, alphabet=2))
        panel = release.synthetic_data()
        assert isinstance(panel, CategoricalDataset)
        assert panel.alphabet == 2
        wide = CategoryAtLeastM(3, 2, category=1, m=1)
        assert np.isfinite(release.answer(wide, horizon, debias=False))

    def test_binary_ignores_repro_engine_env(self, binary_matrix, monkeypatch):
        # The binary specialization pins its bit-exact vectorized path.
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        horizon = binary_matrix.shape[1]
        synth = FixedWindowSynthesizer(horizon, 2, 0.05, seed=5)
        assert synth.engine == "vectorized"
        categorical = CategoricalWindowSynthesizer(horizon, 2, 3, 0.05, seed=5)
        assert categorical.engine == "scalar"


class TestEngineEquivalence:
    def test_noiseless_releases_identical(self, q3_panel):
        releases = [
            CategoricalWindowSynthesizer(
                q3_panel.horizon, 2, 3, math.inf, seed=7, engine=engine
            ).run(q3_panel)
            for engine in ("vectorized", "scalar")
        ]
        first, second = releases
        assert first.released_times() == second.released_times()
        for t in first.released_times():
            assert (first.histogram(t) == second.histogram(t)).all()

    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_census_matches_histograms_under_noise(self, q3_panel, engine):
        synth = CategoricalWindowSynthesizer(
            q3_panel.horizon, 2, 3, 0.2, seed=8, engine=engine,
            noise_method="vectorized",
        )
        release = synth.run(q3_panel)
        for t in release.released_times():
            census = release.synthetic_data(t).suffix_histogram(t, 2)
            assert (census == release.histogram(t)).all()

    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            CategoricalWindowSynthesizer(6, 2, 3, 0.1, engine="sclar")


class TestAssignWithinGroups:
    @pytest.mark.parametrize("seed", range(5))
    def test_two_labels_match_binary_helper_and_stream(self, seed):
        generator = as_generator(seed)
        group_of = generator.integers(0, 7, size=500)
        sizes = np.bincount(group_of, minlength=7)
        ones = np.array([generator.integers(0, s + 1) for s in sizes])
        quotas = np.stack([sizes - ones, ones], axis=1)

        lhs_gen = as_generator(seed + 100)
        rhs_gen = as_generator(seed + 100)
        labels = _assign_within_groups(group_of, 7, quotas, lhs_gen)
        chosen = _choose_within_groups(group_of, 7, ones, rhs_gen)
        expected = np.zeros(group_of.shape[0], dtype=np.int64)
        expected[chosen] = 1
        assert (labels == expected).all()
        assert lhs_gen.bit_generator.state == rhs_gen.bit_generator.state

    def test_quota_mismatch_rejected(self):
        group_of = np.array([0, 0, 1])
        with pytest.raises(ConsistencyError):
            _assign_within_groups(
                group_of, 2, np.array([[1, 0], [1, 0]]), as_generator(0)
            )

    def test_exact_quotas_hit(self):
        generator = as_generator(9)
        group_of = generator.integers(0, 4, size=300)
        sizes = np.bincount(group_of, minlength=4)
        quotas = np.zeros((4, 3), dtype=np.int64)
        for g, size in enumerate(sizes):
            split = np.sort(generator.integers(0, size + 1, size=2))
            quotas[g] = [split[0], split[1] - split[0], size - split[1]]
        labels = _assign_within_groups(group_of, 4, quotas, generator)
        for g in range(4):
            for label in range(3):
                assert ((group_of == g) & (labels == label)).sum() == quotas[g, label]

    def test_forced_assignment_consumes_no_randomness(self):
        generator = as_generator(10)
        before = generator.bit_generator.state
        group_of = np.array([0, 0, 1, 1, 1])
        labels = _assign_within_groups(
            group_of, 2, np.array([[2, 0, 0], [3, 0, 0]]), generator
        )
        assert (labels == 0).all()
        assert generator.bit_generator.state == before


class TestGroupCorrection:
    def test_q2_matches_pair_semantics(self):
        previous = np.array([8, 6, 7, 9], dtype=np.int64)
        noisy = np.array([7, 8, 4, 12], dtype=np.int64)
        corrected, _ = apply_group_correction(
            previous, noisy, 2, as_generator(1)
        )
        assert check_group_consistency(previous, corrected, 2)
        assert (pair_totals(previous) == group_totals(previous, 2)).all()

    @pytest.mark.parametrize("method", ["vectorized", "scalar"])
    def test_group_sums_preserved(self, method):
        generator = as_generator(2)
        previous = generator.integers(0, 25, size=27).astype(np.int64)
        noisy = previous + generator.integers(-6, 7, size=27)
        corrected, _ = apply_group_correction(
            previous, noisy, 3, generator, method=method
        )
        assert check_group_consistency(previous, corrected, 3)

    def test_vectorized_residue_uniform(self):
        # D_z = 2 over q = 3 children: each child gains +1 w.p. 2/3.
        previous = np.zeros(9, dtype=np.int64)
        previous[0] = 4  # M_0 = 4
        noisy = np.zeros(9, dtype=np.int64)
        noisy[0:3] = [1, 1, 0]
        totals = np.zeros(3)
        trials = 300
        for seed in range(trials):
            corrected, _ = apply_group_correction(
                previous, noisy, 3, as_generator(seed), method="vectorized"
            )
            totals += corrected[0:3]
        expected = np.array([1, 1, 0]) + 2 / 3
        assert np.abs(totals / trials - expected).max() < 0.15

    def test_invalid_method_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_group_correction(
                np.zeros(4, dtype=np.int64),
                np.zeros(4, dtype=np.int64),
                2,
                as_generator(0),
                method="loop",
            )

    def test_binary_projection_unchanged(self):
        # The q = 2 engine path must keep using the paired correction,
        # drawing from the same generator stream as the standalone one.
        previous = np.array([5, 5, 5, 5], dtype=np.int64)
        noisy = np.array([4, 7, 6, 3], dtype=np.int64)
        reference, _ = apply_overlap_correction(previous, noisy, as_generator(42))
        synth = CategoricalWindowSynthesizer(4, 2, 2, 0.5, seed=42)
        via_engine, _ = synth._project(previous, noisy)
        assert (via_engine == reference).all()


class TestCategoricalChurn:
    def test_zero_churn_bit_exact_with_static_path(self, q3_panel):
        horizon = q3_panel.horizon
        static = CategoricalWindowSynthesizer(horizon, 2, 3, 0.1, seed=13)
        dynamic = CategoricalWindowSynthesizer(horizon, 2, 3, 0.1, seed=13)
        static.run(q3_panel)
        for column in q3_panel.columns():
            dynamic.observe(column, entrants=0, exits=None)
        for left, right in zip(_fingerprint(static), _fingerprint(dynamic)):
            assert (left == right).all()
        assert static.accountant.charges == dynamic.accountant.charges

    def test_entrants_and_exits_thread_through(self, q3_panel):
        horizon = q3_panel.horizon
        matrix = q3_panel.matrix
        synth = CategoricalWindowSynthesizer(horizon, 2, 3, 0.1, seed=14)
        n = matrix.shape[0] - 3  # rows n..n+2 enter at round 2
        synth.observe(matrix[:n, 0])
        synth.observe(matrix[:, 1], entrants=3)
        keep = np.setdiff1d(np.arange(matrix.shape[0]), [5, 9])
        synth.observe(matrix[keep, 2], exits=[5, 9])
        for t in range(3, horizon):
            synth.observe(matrix[keep, t])
        release = synth.release
        assert release.n_original == matrix.shape[0]
        spans = synth.lifespans()
        assert (spans[:, 0] == 1).sum() == n
        assert (spans[:, 0] == 2).sum() == 3
        assert sorted(np.flatnonzero(spans[:, 1] == 3).tolist()) == [5, 9]
        # Populations are churn-aware: the debias denominator grows at
        # round 2 and the census still matches the histograms.
        assert release.population(1) == n
        assert release.population(2) == matrix.shape[0]
        for t in release.released_times():
            census = release.synthetic_data(t).suffix_histogram(t, 2)
            assert (census == release.histogram(t)).all()

    def test_out_of_alphabet_column_rejected(self):
        from repro.exceptions import DataValidationError

        synth = CategoricalWindowSynthesizer(4, 2, 3, 0.5, seed=8)
        with pytest.raises(DataValidationError):
            synth.observe(np.array([0, 3]))


class TestGeneralizedStoreAndPadding:
    def test_store_state_roundtrip_q3(self):
        generator = as_generator(21)
        counts = generator.integers(0, 6, size=27).astype(np.int64)
        store = WindowSyntheticStore(counts, 3, 6, generator, alphabet=3)
        state = store.state_dict()
        assert state["alphabet"] == 3
        clone = WindowSyntheticStore.from_state(state, generator)
        assert clone.alphabet == 3
        assert (clone.counts() == store.counts()).all()
        assert clone.as_dataset().alphabet == 3

    def test_legacy_binary_state_defaults_to_q2(self):
        generator = as_generator(22)
        store = WindowSyntheticStore(
            np.array([2, 1, 0, 3], dtype=np.int64), 2, 4, generator
        )
        state = store.state_dict()
        del state["alphabet"]  # pre-categorical bundles lack the key
        clone = WindowSyntheticStore.from_state(state, generator)
        assert clone.alphabet == 2
        assert isinstance(clone.as_dataset(), LongitudinalDataset)

    def test_padding_spec_alphabet_arithmetic(self):
        spec = PaddingSpec(window=2, n_pad=3, horizon=5, alphabet=3)
        assert spec.total_records == 3 * 9
        query = CategoryAtLeastM(1, 3, category=1, m=1)
        # Width-1 bins aggregate q bins of width 2: n_pad * q per category.
        assert spec.count_contribution(query) == 3 * 3 * query.weight_sum
        panel = spec.panel
        assert panel.alphabet == 3
        for t in range(2, 6):
            assert (panel.suffix_histogram(t, 2) == 3).all()
        assert spec.panel_count_answer(query, 3) == pytest.approx(
            spec.count_contribution(query)
        )

    def test_padding_spec_validation(self):
        with pytest.raises(ConfigurationError):
            PaddingSpec(window=2, n_pad=1, horizon=5, alphabet=1)
