"""End-to-end pipeline tests: SIPP pipeline -> synthesizers -> analysis."""

import math

import pytest

from repro import (
    AtLeastMOnes,
    CumulativeSynthesizer,
    FixedWindowSynthesizer,
    HammingAtLeast,
    NonPrivateSynthesizer,
    quarterly_poverty_workload,
)
from repro.data.sipp import load_sipp_2021
from repro.queries.workloads import quarter_ends


@pytest.fixture(scope="module")
def sipp():
    # A smaller SIPP draw keeps the end-to-end tests fast while exercising
    # the full pipeline (raw records -> preprocessing -> panel).
    return load_sipp_2021(seed=7, target_households=3000)


class TestFullPipelineWindow:
    def test_paper_workflow_runs(self, sipp):
        synth = FixedWindowSynthesizer(
            horizon=sipp.horizon, window=3, rho=0.05, seed=0,
            noise_method="vectorized",
        )
        release = synth.run(sipp)
        for query in quarterly_poverty_workload(3):
            for t in quarter_ends(sipp.horizon, 3):
                answer = release.answer(query, t)
                truth = query.evaluate(sipp, t)
                assert abs(answer - truth) < 0.05

    def test_release_metadata(self, sipp):
        synth = FixedWindowSynthesizer(
            horizon=sipp.horizon, window=3, rho=0.05, seed=1,
            noise_method="vectorized",
        )
        release = synth.run(sipp)
        assert release.n_original == 3000
        assert release.n_synthetic >= 3000
        assert release.window == 3
        assert release.t == sipp.horizon
        assert "FixedWindowRelease" in repr(release)

    def test_epsilon_delta_reporting(self, sipp):
        synth = FixedWindowSynthesizer(
            horizon=sipp.horizon, window=3, rho=0.05, seed=2,
            noise_method="vectorized",
        )
        synth.run(sipp)
        epsilon = synth.accountant.epsilon(delta=1e-6)
        expected = 0.05 + 2 * math.sqrt(0.05 * math.log(1e6))
        assert epsilon == pytest.approx(expected)


class TestFullPipelineCumulative:
    def test_paper_workflow_runs(self, sipp):
        synth = CumulativeSynthesizer(
            horizon=sipp.horizon, rho=0.05, seed=3, noise_method="vectorized"
        )
        release = synth.run(sipp)
        for b in (1, 3, 6):
            query = HammingAtLeast(b)
            for t in (3, 6, 9, 12):
                assert abs(release.answer(query, t) - query.evaluate(sipp, t)) < 0.05

    def test_repr(self, sipp):
        synth = CumulativeSynthesizer(
            horizon=sipp.horizon, rho=0.05, seed=4, noise_method="vectorized"
        )
        release = synth.run(sipp)
        assert "CumulativeRelease" in repr(release)


class TestCrossAlgorithmComparisons:
    def test_oracle_beats_private(self, sipp):
        query = AtLeastMOnes(3, 1)
        t = 12
        oracle = NonPrivateSynthesizer(sipp.horizon).run(sipp)
        private = FixedWindowSynthesizer(
            horizon=sipp.horizon, window=3, rho=0.01, seed=5,
            noise_method="vectorized",
        ).run(sipp)
        truth = query.evaluate(sipp, t)
        assert abs(oracle.answer(query, t) - truth) == 0.0
        assert abs(private.answer(query, t) - truth) >= 0.0

    def test_both_synthesizers_consume_the_same_stream(self, sipp):
        window_synth = FixedWindowSynthesizer(
            horizon=sipp.horizon, window=3, rho=0.05, seed=6,
            noise_method="vectorized",
        )
        cumulative_synth = CumulativeSynthesizer(
            horizon=sipp.horizon, rho=0.05, seed=7, noise_method="vectorized"
        )
        for column in sipp.columns():
            window_synth.observe(column)
            cumulative_synth.observe(column)
        assert window_synth.t == cumulative_synth.t == sipp.horizon

    def test_cumulative_answers_agree_with_window_reduction_oracle(self, sipp):
        # Section 2.1 reduction, checked through the released data rather
        # than the theory module: with zero noise, the k=T window release
        # answers cumulative queries exactly.
        small = load_sipp_2021(seed=11, target_households=200)
        window_synth = FixedWindowSynthesizer(
            horizon=small.horizon, window=small.horizon, rho=math.inf, seed=8
        )
        release = window_synth.run(window_synth_panel := small)
        from repro.queries.cumulative import cumulative_as_window_weights
        from repro.queries.window import WindowLinearQuery

        for b in (1, 4):
            weights = cumulative_as_window_weights(small.horizon, b)
            query = WindowLinearQuery(small.horizon, weights, name=f"c{b}")
            expected = HammingAtLeast(b).evaluate(small, small.horizon)
            assert release.answer(query, small.horizon) == pytest.approx(expected)
