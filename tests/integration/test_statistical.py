"""Statistical end-to-end checks: unbiasedness and error scaling.

These assert the paper's headline statistical claims on moderate data sizes
so the suite stays fast; the paper-scale versions run in benchmarks/.
"""

import math

import numpy as np
import pytest

from repro.analysis.replication import replicate_synthesizer
from repro.analysis.theory import debiased_error_bound, theorem_3_2_bound
from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.generators import two_state_markov
from repro.queries.cumulative import HammingAtLeast
from repro.queries.window import AtLeastMOnes

HORIZON = 12
N = 3000
RHO = 0.05


@pytest.fixture(scope="module")
def panel():
    return two_state_markov(N, HORIZON, p_stay=0.85, p_enter=0.02, seed=0)


@pytest.fixture(scope="module")
def window_answers(panel):
    def factory(generator):
        return FixedWindowSynthesizer(
            horizon=HORIZON, window=3, rho=RHO, seed=generator,
            noise_method="vectorized",
        )

    return replicate_synthesizer(
        factory,
        panel,
        [AtLeastMOnes(3, 1), AtLeastMOnes(3, 3)],
        times=[3, 6, 9, 12],
        n_reps=40,
        seed=1,
    )


@pytest.fixture(scope="module")
def cumulative_answers(panel):
    def factory(generator):
        return CumulativeSynthesizer(
            horizon=HORIZON, rho=RHO, seed=generator, noise_method="vectorized"
        )

    return replicate_synthesizer(
        factory,
        panel,
        [HammingAtLeast(3)],
        times=list(range(1, HORIZON + 1)),
        n_reps=40,
        seed=2,
    )


class TestWindowStatistics:
    def test_debiased_answers_unbiased(self, window_answers):
        errors = window_answers.errors()
        per_point_sd = errors.std(axis=0)
        standard_error = per_point_sd / math.sqrt(window_answers.n_reps)
        mean_error = np.abs(errors.mean(axis=0))
        assert (mean_error <= 5 * standard_error + 1e-4).all()

    def test_errors_within_theorem_bound(self, window_answers):
        # Query at_least_1 sums 7 bins; a crude per-query bound is
        # sqrt(7) * lambda / n with lambda the per-bin bound.
        lam = theorem_3_2_bound(HORIZON, 3, RHO, beta=0.01)
        per_query_bound = math.sqrt(7) * lam / N
        assert np.abs(window_answers.errors()).max() <= per_query_bound

    def test_error_time_uniform(self, window_answers):
        # Theorem 3.2: error variance does not grow with t.
        errors = window_answers.errors()[:, 0, :]
        sds = errors.std(axis=0)
        assert sds.max() < 4 * max(sds.min(), 1e-6)

    def test_band_covers_truth(self, window_answers):
        for i in range(2):
            summary = window_answers.summary(i)
            assert summary.covers_truth().all()


class TestCumulativeStatistics:
    def test_unbiased(self, cumulative_answers):
        errors = cumulative_answers.errors()
        per_point_sd = errors.std(axis=0)
        standard_error = per_point_sd / math.sqrt(cumulative_answers.n_reps)
        mean_error = np.abs(errors.mean(axis=0))
        assert (mean_error <= 5 * standard_error + 1e-4).all()

    def test_answers_monotone_in_t_within_each_rep(self, cumulative_answers):
        answers = cumulative_answers.answers[:, 0, :]
        assert (np.diff(answers, axis=1) >= -1e-12).all()

    def test_band_covers_truth(self, cumulative_answers):
        summary = cumulative_answers.summary(0)
        assert summary.covers_truth().all()


class TestErrorScaling:
    def test_more_budget_means_less_error(self, panel):
        def run_at(rho, seed):
            def factory(generator):
                return FixedWindowSynthesizer(
                    horizon=HORIZON, window=3, rho=rho, seed=generator,
                    noise_method="vectorized",
                )

            result = replicate_synthesizer(
                factory, panel, [AtLeastMOnes(3, 1)], times=[12], n_reps=25, seed=seed
            )
            return np.abs(result.errors()).mean()

        assert run_at(0.5, 3) < run_at(0.005, 4)

    def test_debiased_bound_scales_like_sqrt_horizon(self):
        short = debiased_error_bound(6, 3, 0.01, 0.05, 1000)
        long = debiased_error_bound(48, 3, 0.01, 0.05, 1000)
        ratio = long / short
        # sqrt(46/4) ~ 3.4 plus slow log growth: between 3 and 6.
        assert 3.0 < ratio < 6.0
