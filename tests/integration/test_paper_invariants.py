"""Property-based end-to-end checks of the paper's core invariants.

These run both synthesizers on hypothesis-generated panels and verify the
structural guarantees the theory relies on, independent of any specific
noise realization.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.core.monotonize import is_monotone_table
from repro.data.dataset import LongitudinalDataset

panels = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(8, 40), st.integers(4, 10)),
    elements=st.integers(0, 1),
)


class TestAlgorithm1Invariants:
    @given(matrix=panels, seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_consistency_and_census_for_any_panel(self, matrix, seed):
        panel = LongitudinalDataset(matrix)
        window = min(3, panel.horizon)
        synth = FixedWindowSynthesizer(
            horizon=panel.horizon,
            window=window,
            rho=0.1,
            seed=seed,
            noise_method="vectorized",
        )
        release = synth.run(panel)
        half = 1 << (window - 1)
        previous = None
        for t in release.released_times():
            histogram = release.histogram(t)
            # Non-negative counts and constant population.
            assert (histogram >= 0).all()
            assert histogram.sum() == release.n_synthetic
            # Overlap-consistency with the previous round.
            if previous is not None:
                pair_sums = histogram[0::2] + histogram[1::2]
                overlap = previous[:half] + previous[half:]
                assert (pair_sums == overlap).all()
            # Histogram equals the record census.
            census = release.synthetic_data(t).suffix_histogram(t, window)
            assert (census == histogram).all()
            previous = histogram

    @given(matrix=panels, seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_oracle_mode_reproduces_truth(self, matrix, seed):
        panel = LongitudinalDataset(matrix)
        window = min(2, panel.horizon)
        synth = FixedWindowSynthesizer(
            horizon=panel.horizon, window=window, rho=float("inf"), seed=seed
        )
        release = synth.run(panel)
        for t in release.released_times():
            truth = panel.suffix_histogram(t, window)
            assert (release.histogram(t) == truth).all()


class TestAlgorithm2Invariants:
    @given(matrix=panels, seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_monotone_table_and_census_for_any_panel(self, matrix, seed):
        panel = LongitudinalDataset(matrix)
        synth = CumulativeSynthesizer(
            horizon=panel.horizon, rho=0.1, seed=seed, noise_method="vectorized"
        )
        release = synth.run(panel)
        assert synth.check_invariants()
        table = release.threshold_table()
        assert is_monotone_table(table, population=panel.n_individuals)
        # Row t has zero mass above threshold t.
        for t in range(1, panel.horizon + 1):
            assert (table[t, t + 1 :] == 0).all()

    @given(matrix=panels, seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_oracle_mode_reproduces_truth(self, matrix, seed):
        panel = LongitudinalDataset(matrix)
        synth = CumulativeSynthesizer(
            horizon=panel.horizon, rho=float("inf"), seed=seed
        )
        release = synth.run(panel)
        for t in range(1, panel.horizon + 1):
            truth = panel.threshold_counts(t)
            for b in range(panel.horizon + 1):
                assert release.threshold_count(b, t) == truth[b]

    @given(
        matrix=panels,
        seed=st.integers(0, 1000),
        counter=st.sampled_from(["binary_tree", "simple", "honaker", "block"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_invariants_counter_agnostic(self, matrix, seed, counter):
        panel = LongitudinalDataset(matrix)
        synth = CumulativeSynthesizer(
            horizon=panel.horizon,
            rho=0.2,
            counter=counter,
            seed=seed,
            noise_method="vectorized",
        )
        synth.run(panel)
        assert synth.check_invariants()


class TestExtremePanels:
    @pytest.mark.parametrize("fill", [0, 1])
    def test_constant_panels(self, fill):
        matrix = np.full((30, 8), fill, dtype=np.uint8)
        panel = LongitudinalDataset(matrix)
        window_synth = FixedWindowSynthesizer(
            horizon=8, window=3, rho=0.1, seed=0, noise_method="vectorized"
        )
        window_synth.run(panel)
        cumulative_synth = CumulativeSynthesizer(
            horizon=8, rho=0.1, seed=0, noise_method="vectorized"
        )
        cumulative_synth.run(panel)
        assert cumulative_synth.check_invariants()

    def test_single_individual(self):
        panel = LongitudinalDataset(np.array([[1, 0, 1, 1, 0, 1]], dtype=np.uint8))
        synth = CumulativeSynthesizer(
            horizon=6, rho=0.5, seed=1, noise_method="vectorized"
        )
        synth.run(panel)
        assert synth.check_invariants()

    def test_single_round(self):
        panel = LongitudinalDataset(np.ones((20, 1), dtype=np.uint8))
        window_synth = FixedWindowSynthesizer(
            horizon=1, window=1, rho=0.5, seed=2, noise_method="vectorized"
        )
        release = window_synth.run(panel)
        assert release.released_times() == [1]
        cumulative_synth = CumulativeSynthesizer(
            horizon=1, rho=0.5, seed=2, noise_method="vectorized"
        )
        cumulative_synth.run(panel)
        assert cumulative_synth.check_invariants()
