"""Failure-injection tests: the release invariants must survive bad inputs.

Algorithm 2's monotonization and Algorithm 1's projection are the safety
layer between noisy statistics and the released records; these tests feed
them deliberately hostile statistics (an adversarial stream counter, huge
noise, zero data) and assert the structural guarantees still hold.
"""

import numpy as np
import pytest

from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.core.monotonize import is_monotone_table
from repro.data.generators import iid_bernoulli
from repro.streams.base import StreamCounter
from repro.streams.registry import _REGISTRY, register_counter


@pytest.fixture
def panel():
    return iid_bernoulli(120, 10, 0.3, seed=0)


@pytest.fixture
def adversarial_registry():
    """Temporarily register counters that misbehave on purpose."""

    @register_counter("_adversarial_wild")
    class WildCounter(StreamCounter):
        """Returns huge oscillating garbage regardless of the stream."""

        def _feed(self, z):
            sign = -1 if self._t % 2 else 1
            return float(sign * 10_000_000)

        def error_stddev(self, t):
            return 1e7

    @register_counter("_adversarial_negative")
    class NegativeCounter(StreamCounter):
        """Always reports an absurd negative total."""

        def _feed(self, z):
            return -1e9

        def error_stddev(self, t):
            return 1e9

    @register_counter("_adversarial_frozen")
    class FrozenCounter(StreamCounter):
        """Never moves from zero."""

        def _feed(self, z):
            return 0.0

        def error_stddev(self, t):
            return 0.0

    yield
    for name in ("_adversarial_wild", "_adversarial_negative", "_adversarial_frozen"):
        _REGISTRY.pop(name, None)


class TestAdversarialCounters:
    @pytest.mark.parametrize(
        "counter",
        ["_adversarial_wild", "_adversarial_negative", "_adversarial_frozen"],
    )
    def test_invariants_survive_any_counter(self, panel, adversarial_registry, counter):
        synthesizer = CumulativeSynthesizer(
            horizon=panel.horizon, rho=0.5, counter=counter, seed=1
        )
        release = synthesizer.run(panel)
        # Whatever garbage the counter produced, the released table is a
        # feasible monotone table and the synthetic records realize it.
        assert synthesizer.check_invariants()
        assert is_monotone_table(
            release.threshold_table(), population=panel.n_individuals
        )

    def test_wild_counter_cannot_exceed_population(self, panel, adversarial_registry):
        synthesizer = CumulativeSynthesizer(
            horizon=panel.horizon, rho=0.5, counter="_adversarial_wild", seed=2
        )
        release = synthesizer.run(panel)
        table = release.threshold_table()
        assert table.max() <= panel.n_individuals
        assert table.min() >= 0

    def test_frozen_counter_yields_all_zero_synthetic_data(
        self, panel, adversarial_registry
    ):
        synthesizer = CumulativeSynthesizer(
            horizon=panel.horizon, rho=0.5, counter="_adversarial_frozen", seed=3
        )
        release = synthesizer.run(panel)
        assert release.synthetic_data().matrix.sum() == 0


class TestExtremeNoiseWindow:
    def test_huge_noise_tiny_population_still_consistent(self):
        panel = iid_bernoulli(5, 8, 0.5, seed=4)
        synthesizer = FixedWindowSynthesizer(
            horizon=8, window=2, rho=1e-6, n_pad=0, seed=5,
            noise_method="vectorized",
        )
        release = synthesizer.run(panel)
        for t in range(3, 9):
            previous = release.histogram(t - 1)
            current = release.histogram(t)
            assert (current >= 0).all()
            assert (
                current[0::2] + current[1::2] == previous[:2] + previous[2:]
            ).all()

    def test_empty_population_rejected(self):
        synthesizer = CumulativeSynthesizer(horizon=4, rho=0.5, seed=6)
        with pytest.raises(Exception):
            synthesizer.observe(np.array([], dtype=np.int64))

    def test_all_zero_panel_with_noise(self):
        panel = iid_bernoulli(50, 8, 0.0, seed=7)
        synthesizer = CumulativeSynthesizer(
            horizon=8, rho=0.01, seed=8, noise_method="vectorized"
        )
        release = synthesizer.run(panel)
        assert synthesizer.check_invariants()
        # Noise may push counts up, but never above n or below 0.
        table = release.threshold_table()
        assert table.min() >= 0 and table.max() <= 50
