"""Tests for the ``utility`` experiment and its gateable frontier metrics."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.registry import list_experiments
from repro.experiments.utility import (
    UTILITY_HORIZONS,
    UTILITY_RHOS,
    frontier_metrics,
    run_utility_experiment,
)

TINY = dict(
    n_reps=2,
    seed=0,
    rhos=(0.05,),
    horizons=(6,),
    n_households=300,
    strategy="serial",
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_utility_experiment(**TINY)


class TestRunUtilityExperiment:
    def test_registered(self):
        assert "utility" in list_experiments()

    def test_default_sweep_constants(self):
        assert UTILITY_RHOS == tuple(sorted(UTILITY_RHOS))
        assert UTILITY_HORIZONS == tuple(sorted(UTILITY_HORIZONS))

    def test_all_checks_pass_on_tiny_config(self, tiny_result):
        assert tiny_result.all_checks_pass, tiny_result.render()

    def test_row_count(self, tiny_result):
        # One oracle row per horizon + 6 private scenarios per (rho, horizon).
        assert len(tiny_result.comparison_rows) == 1 + 6

    def test_ordering_check_present(self, tiny_result):
        names = [name for name, _ in tiny_result.checks]
        assert any("oracle < window < clamped" in name for name in names)

    def test_render_mentions_every_scenario(self, tiny_result):
        text = tiny_result.render()
        for scenario in (
            "nonprivate",
            "window",
            "clamped",
            "density",
            "recompute",
            "cumulative",
            "categorical",
        ):
            assert scenario in text

    def test_summaries_cover_anchor(self, tiny_result):
        labels = [summary.label for summary in tiny_result.summaries]
        assert len(labels) == 3
        assert all("rho0.05" in label or "rho=0.05" in label for label in labels)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rhos": ()},
            {"rhos": (0.0,)},
            {"rhos": (-0.1,)},
            {"horizons": ()},
            {"horizons": (3,)},  # must exceed window=3
        ],
    )
    def test_bad_sweeps_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            run_utility_experiment(**{**TINY, **kwargs})


class TestFrontierMetrics:
    def test_keys_and_values(self, tiny_result):
        metrics = frontier_metrics(tiny_result)
        for scenario in (
            "window",
            "clamped",
            "density",
            "recompute",
            "cumulative",
            "categorical",
        ):
            assert f"pmse_{scenario}_rho0.05_T6" in metrics
            assert f"rmse_{scenario}_rho0.05_T6" in metrics
        assert "margin_clamped_over_window_rho0.05_T6" in metrics
        assert metrics["margin_clamped_over_window_rho0.05_T6"] == pytest.approx(
            metrics["pmse_clamped_rho0.05_T6"] - metrics["pmse_window_rho0.05_T6"]
        )

    def test_oracle_rows_excluded(self, tiny_result):
        metrics = frontier_metrics(tiny_result)
        assert not any("nonprivate" in name for name in metrics)

    def test_all_finite_floats(self, tiny_result):
        for name, value in frontier_metrics(tiny_result).items():
            assert isinstance(value, float), name
            assert value == value, name  # no NaN


class TestSeedDeterminism:
    def test_repeated_runs_byte_identical(self):
        # The regression gate only works if a fixed seed pins every byte
        # of the report: run the experiment twice in-process and compare
        # the serialized frontier and the rendered table verbatim.
        first = run_utility_experiment(**TINY)
        second = run_utility_experiment(**TINY)

        def encode(result):
            return json.dumps(frontier_metrics(result), sort_keys=True)

        assert encode(first) == encode(second)
        assert json.dumps(first.comparison_rows) == json.dumps(
            second.comparison_rows
        )
        assert first.render() == second.render()

    def test_seed_changes_output(self):
        base = run_utility_experiment(**TINY)
        other = run_utility_experiment(**{**TINY, "seed": 1})
        assert json.dumps(frontier_metrics(base), sort_keys=True) != json.dumps(
            frontier_metrics(other), sort_keys=True
        )
