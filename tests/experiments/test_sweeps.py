"""Tests for the scaling-law sweep experiments."""

import numpy as np
import pytest

from repro.experiments.sweeps import (
    fit_loglog_slope,
    run_population_sweep,
    run_rho_sweep,
)


class TestFitLogLogSlope:
    def test_exact_power_law(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        assert fit_loglog_slope(x, x**-0.5) == pytest.approx(-0.5)
        assert fit_loglog_slope(x, 3.0 * x**-1.0) == pytest.approx(-1.0)
        assert fit_loglog_slope(x, x**2) == pytest.approx(2.0)

    def test_constant_series_zero_slope(self):
        x = np.array([1.0, 2.0, 4.0])
        assert fit_loglog_slope(x, np.full(3, 5.0)) == pytest.approx(0.0)


class TestRhoSweep:
    def test_shape_and_checks(self):
        result = run_rho_sweep(
            n_reps=8, seed=0, n=2000, rhos=(0.005, 0.02, 0.08, 0.32)
        )
        assert result.all_checks_pass, result.render()
        # One row per rho plus the slope row.
        assert len(result.comparison_rows) == 5

    def test_errors_reported_positive(self):
        result = run_rho_sweep(n_reps=4, seed=1, n=1500, rhos=(0.01, 0.1))
        numeric_rows = [r for r in result.comparison_rows if isinstance(r["rho"], float)]
        assert all(row["mean_abs_error"] > 0 for row in numeric_rows)


class TestPopulationSweep:
    def test_shape_and_checks(self):
        result = run_population_sweep(
            n_reps=8, seed=2, rho=0.05, sizes=(500, 1000, 2000, 4000)
        )
        assert result.all_checks_pass, result.render()

    def test_error_smaller_for_larger_population(self):
        result = run_population_sweep(
            n_reps=6, seed=3, rho=0.05, sizes=(500, 8000)
        )
        numeric_rows = [r for r in result.comparison_rows if isinstance(r["n"], int)]
        assert numeric_rows[0]["mean_abs_error"] > numeric_rows[-1]["mean_abs_error"]
