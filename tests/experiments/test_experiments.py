"""Tests for the experiment definitions, registry, and CLI.

Experiment runs here use tiny repetition counts and small data so the whole
module stays fast; the statistically meaningful runs live in benchmarks/.
"""

import pytest

from repro.data.generators import two_state_markov
from repro.exceptions import ConfigurationError
from repro.experiments.cli import build_parser, main
from repro.experiments.config import FigureResult, bench_reps, default_reps
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.simulated_window import run_simulated_window_experiment
from repro.experiments.sipp_cumulative import run_sipp_cumulative_experiment
from repro.experiments.sipp_window import run_sipp_window_experiment


@pytest.fixture(scope="module")
def small_sipp_like():
    """A SIPP-shaped but small panel so experiment tests stay fast."""
    return two_state_markov(1500, 12, p_stay=0.87, p_enter=0.017, seed=42)


class TestFigureResult:
    def test_checks_aggregate(self):
        result = FigureResult(experiment_id="x", title="t")
        result.check("a", True)
        assert result.all_checks_pass
        result.check("b", False)
        assert not result.all_checks_pass

    def test_render_contains_sections(self):
        result = FigureResult(
            experiment_id="x",
            title="demo title",
            parameters={"rho": 0.01},
            paper_expectation="something holds",
        )
        result.check("a check", True)
        text = result.render()
        assert "demo title" in text
        assert "rho=0.01" in text
        assert "[PASS] a check" in text

    def test_bench_reps_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REPS", "7")
        assert bench_reps() == 7
        monkeypatch.setenv("REPRO_BENCH_REPS", "junk")
        assert bench_reps() == default_reps
        monkeypatch.setenv("REPRO_BENCH_REPS", "-3")
        assert bench_reps() == default_reps


class TestRegistry:
    def test_all_figures_present(self):
        for experiment_id in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            assert experiment_id in EXPERIMENTS

    def test_ablations_present(self):
        for experiment_id in ("abl-counter", "abl-npad", "abl-budget", "abl-baseline"):
            assert experiment_id in EXPERIMENTS

    def test_get_unknown(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_list_sorted(self):
        assert list_experiments() == sorted(list_experiments())


class TestSippWindowExperiment:
    def test_biased_figure_shape(self, small_sipp_like):
        result = run_sipp_window_experiment(
            rho=0.05, n_reps=4, seed=0, debias=False, data=small_sipp_like,
            include_debiased_panel=False,
        )
        assert len(result.summaries) == 4  # four quarterly queries
        assert result.parameters["rho"] == 0.05
        assert result.all_checks_pass, result.render()

    def test_debiased_panel_appended(self, small_sipp_like):
        result = run_sipp_window_experiment(
            rho=0.05, n_reps=4, seed=0, debias=False, data=small_sipp_like,
            include_debiased_panel=True,
        )
        assert len(result.summaries) == 8
        labels = [summary.label for summary in result.summaries]
        assert any("debiased" in label for label in labels)

    def test_quarters_on_x_axis(self, small_sipp_like):
        result = run_sipp_window_experiment(
            rho=0.05, n_reps=2, seed=1, data=small_sipp_like,
            include_debiased_panel=False,
        )
        assert result.summaries[0].x.tolist() == [3.0, 6.0, 9.0, 12.0]


class TestSippCumulativeExperiment:
    def test_series_and_checks(self, small_sipp_like):
        result = run_sipp_cumulative_experiment(
            rho=0.05, n_reps=4, seed=0, b=3, data=small_sipp_like
        )
        assert len(result.summaries) == 1
        assert result.summaries[0].x.tolist() == list(map(float, range(1, 13)))
        assert result.all_checks_pass, result.render()

    def test_custom_counter(self, small_sipp_like):
        result = run_sipp_cumulative_experiment(
            rho=0.05, n_reps=2, seed=1, b=2, counter="sqrt_factorization",
            data=small_sipp_like,
        )
        assert result.parameters["counter"] == "sqrt_factorization"


class TestSimulatedWindowExperiment:
    def test_debiased_run_passes_checks(self):
        result = run_simulated_window_experiment(
            n_reps=6, seed=0, debias=True, n=4000, rho=0.05
        )
        assert result.all_checks_pass, result.render()

    def test_biased_run_passes_checks(self):
        result = run_simulated_window_experiment(
            n_reps=6, seed=0, debias=False, n=4000, rho=0.05
        )
        assert result.all_checks_pass, result.render()

    def test_bound_lines_attached_to_supported_widths(self):
        result = run_simulated_window_experiment(
            n_reps=2, seed=1, debias=True, n=2000, rho=0.05
        )
        assert len(result.bound_lines) == 2  # k=2 and k=3 series


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "abl-counter" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_executes(self, capsys, monkeypatch):
        # Patch in a fast fake experiment to keep the CLI test quick.
        from repro.experiments import registry

        def fake(n_reps, seed=0, engine=None, strategy=None, n_jobs=None, alphabet=None, attributes=None):
            result = FigureResult(experiment_id="fake", title="fake experiment")
            result.check("always true", True)
            result.check("engine threaded", engine in ("vectorized", "scalar"))
            result.check(
                "strategy threaded",
                strategy in ("auto", "batched", "process", "serial"),
            )
            return result

        monkeypatch.setitem(registry.EXPERIMENTS, "fake", fake)
        assert main(["run", "fake", "--reps", "1"]) == 0
        assert "fake experiment" in capsys.readouterr().out
        assert main(["run", "fake", "--engine", "scalar"]) == 0
        assert main(["run", "fake", "--replication-strategy", "process", "--n-jobs", "2"]) == 0

    def test_run_command_fails_on_failed_checks(self, capsys, monkeypatch):
        from repro.experiments import registry

        def fake(n_reps, seed=0, engine=None, strategy=None, n_jobs=None, alphabet=None, attributes=None):
            result = FigureResult(experiment_id="fake2", title="failing experiment")
            result.check("always false", False)
            return result

        monkeypatch.setitem(registry.EXPERIMENTS, "fake2", fake)
        assert main(["run", "fake2"]) == 1


class TestChurnExperiment:
    def test_attrition_sweep_passes_all_checks(self):
        from repro.experiments.churn import run_churn_experiment

        result = run_churn_experiment(
            n_reps=2, seed=1, n_households=300, hazards=(0.0, 0.05)
        )
        assert result.experiment_id == "churn"
        assert result.all_checks_pass, result.checks
        assert len(result.summaries) == 2
        check_names = [name for name, _ in result.checks]
        assert any("bit-exact" in name and "vectorized" in name for name in check_names)
        assert any("bit-exact" in name and "scalar" in name for name in check_names)
        retained = [row["retained_final"] for row in result.comparison_rows]
        assert retained[0] == 1.0 and retained[1] < 1.0

    def test_registered_and_runnable_from_cli(self, capsys):
        assert "churn" in list_experiments()


class TestCategoricalExperiment:
    def test_figure_passes_all_checks(self):
        from repro.experiments.categorical import run_categorical_experiment

        result = run_categorical_experiment(
            n_reps=2, seed=1, n_individuals=400, horizon=8, window=2
        )
        assert result.experiment_id == "categorical"
        assert result.all_checks_pass, result.checks
        assert len(result.summaries) == 3
        check_names = [name for name, _ in result.checks]
        assert any("bit-exact" in name for name in check_names)
        assert any("identical noiseless histograms" in name for name in check_names)

    def test_alphabet_threads_through_registry(self):
        result = get_experiment("categorical")(
            2, seed=2, alphabet=4, engine="vectorized"
        )
        assert result.parameters["alphabet"] == 4
        assert result.all_checks_pass, result.checks

    def test_registered(self):
        assert "categorical" in list_experiments()
