"""The docs site builds warning-free and covers the expected pages.

Skipped automatically when docutils/jinja2 are absent (the minimal CI
test environment installs only numpy/pytest/hypothesis); the dedicated
CI docs job installs them and runs the build with warnings as errors.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("docutils")
pytest.importorskip("jinja2")

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def built_docs(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("docs_build")
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "docs" / "build.py"), "--out", str(out_dir)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, f"docs build failed:\n{result.stdout}\n{result.stderr}"
    return out_dir


def test_all_pages_built(built_docs):
    expected = {
        "index.html",
        "architecture.html",
        "engines.html",
        "serving.html",
        "scaling-out.html",
        "fault-tolerance.html",
        "dynamic-populations.html",
        "privacy-accounting.html",
        "utility.html",
        "checkpoint-format.html",
        "api.html",
    }
    assert {p.name for p in built_docs.glob("*.html")} == expected


def test_api_reference_covers_public_surface(built_docs):
    api = (built_docs / "api.html").read_text()
    for symbol in (
        "StreamingSynthesizer",
        "ShardedService",
        "CumulativeSynthesizer",
        "FixedWindowSynthesizer",
        "ZCDPAccountant",
        "SerializationError",
        "make_counter",
        "make_bank",
        "answer_batch",
        "checkpoint",
    ):
        assert symbol in api, f"API reference is missing {symbol}"


def test_serving_page_documents_the_contracts(built_docs):
    serving = (built_docs / "serving.html").read_text()
    assert "byte-identically" in serving
    assert "parallel composition" in serving


def test_utility_page_documents_scoring_and_gate(built_docs):
    utility = (built_docs / "utility.html").read_text()
    assert "pMSE" in utility
    assert "padded" in utility
    assert "check_regression" in utility


def test_build_rejects_rst_warnings(tmp_path):
    """A page with an RST error must fail the build (warnings-as-errors)."""
    # Reuse the real builder against a broken page by invoking its
    # rst_to_html directly — the subprocess path is covered above.
    sys.path.insert(0, str(REPO_ROOT / "docs"))
    try:
        import build as docs_build

        with pytest.raises(SystemExit, match="warnings are errors"):
            docs_build.rst_to_html("Title\n==\n\n`unclosed", str(tmp_path / "bad.rst"))
    finally:
        sys.path.remove(str(REPO_ROOT / "docs"))
