"""Docstring audit: the public surface stays fully documented.

Enforces the documentation contract on every symbol re-exported from
``repro`` (top level), ``repro.serve``, and ``repro.streams.registry``:

* a substantive docstring exists;
* callables that take parameters document them — a ``Parameters``
  section on the symbol itself, on a base class, or (for dataclasses)
  an ``Attributes`` section describing the fields;
* public methods and properties of exported classes have docstrings.

This is what keeps the generated API reference (``docs/build.py``)
complete: the page renders docstrings verbatim, so an undocumented
symbol would ship an empty reference entry.
"""

import dataclasses
import inspect

import pytest

import repro
import repro.serve
import repro.streams.registry


def _public_symbols():
    surfaces = [
        (repro, [n for n in repro.__all__ if n != "__version__"]),
        (repro.serve, list(repro.serve.__all__)),
        (
            repro.streams.registry,
            [n for n in repro.streams.registry.__all__ if n != "ENGINES"],
        ),
    ]
    for module, names in surfaces:
        for name in names:
            yield f"{module.__name__}.{name}", getattr(module, name)


SYMBOLS = sorted(_public_symbols())


def _parameters(obj):
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return []
    return [p for p in signature.parameters.values() if p.name not in ("self", "cls")]


def _documents_parameters(obj) -> bool:
    docs = [inspect.getdoc(obj) or ""]
    if inspect.isclass(obj):
        docs += [c.__doc__ or "" for c in obj.__mro__[1:] if c is not object]
        docs.append(inspect.getdoc(obj.__init__) or "")
        if dataclasses.is_dataclass(obj):
            # NumPy style documents dataclass fields under "Attributes".
            return any("Parameters" in d or "Attributes" in d for d in docs)
    return any("Parameters" in d for d in docs)


@pytest.mark.parametrize("qualname,obj", SYMBOLS, ids=[q for q, _ in SYMBOLS])
def test_symbol_has_substantive_docstring(qualname, obj):
    if not callable(obj):
        pytest.skip("not a callable symbol")
    doc = inspect.getdoc(obj) or ""
    assert len(doc) >= 30, f"{qualname} has no substantive docstring"


@pytest.mark.parametrize("qualname,obj", SYMBOLS, ids=[q for q, _ in SYMBOLS])
def test_callable_parameters_are_documented(qualname, obj):
    if not callable(obj):
        pytest.skip("not a callable symbol")
    if getattr(obj, "_is_protocol", False):
        # typing.Protocol classes are not instantiable; their apparent
        # (*args, **kwargs) constructor is typing machinery, not API.
        pytest.skip("protocol class — no constructor to document")
    if not _parameters(obj):
        pytest.skip("takes no parameters")
    assert _documents_parameters(obj), (
        f"{qualname} takes parameters but documents none "
        "(no Parameters section on the symbol, a base class, or __init__)"
    )


@pytest.mark.parametrize("qualname,obj", SYMBOLS, ids=[q for q, _ in SYMBOLS])
def test_class_members_are_documented(qualname, obj):
    if not inspect.isclass(obj):
        pytest.skip("not a class")
    undocumented = []
    for name, member in vars(obj).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            if not (inspect.getdoc(member) or ""):
                undocumented.append(name)
            continue
        target = (
            member.__func__
            if isinstance(member, (classmethod, staticmethod))
            else member
        )
        if callable(target) and not (inspect.getdoc(target) or ""):
            undocumented.append(name)
    assert not undocumented, f"{qualname} has undocumented members: {undocumented}"
