"""Tests for panel and release serialization."""

import json

import pytest

from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.categorical import categorical_iid
from repro.data.generators import iid_bernoulli
from repro.data.io import (
    load_panel_csv,
    load_panel_npz,
    save_panel_csv,
    save_panel_npz,
    save_release_csv,
)
from repro.exceptions import DataValidationError


class TestCsvRoundtrip:
    def test_binary_roundtrip(self, tmp_path, tiny_panel):
        path = save_panel_csv(tiny_panel, tmp_path / "panel.csv")
        loaded = load_panel_csv(path)
        assert loaded == tiny_panel

    def test_categorical_roundtrip(self, tmp_path):
        panel = categorical_iid(40, 6, [0.2, 0.5, 0.3], seed=0)
        path = save_panel_csv(panel, tmp_path / "cat.csv")
        loaded = load_panel_csv(path, alphabet=3)
        assert loaded == panel

    def test_header_written(self, tmp_path, tiny_panel):
        path = save_panel_csv(tiny_panel, tmp_path / "panel.csv")
        first_line = path.read_text().splitlines()[0]
        assert first_line == "t1,t2,t3,t4,t5"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataValidationError):
            load_panel_csv(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1,0\n0,1\n")
        with pytest.raises(DataValidationError):
            load_panel_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("t1,t2\n1,0\n1\n")
        with pytest.raises(DataValidationError):
            load_panel_csv(path)

    def test_non_binary_content_rejected_for_binary_load(self, tmp_path):
        path = tmp_path / "cat.csv"
        path.write_text("t1,t2\n0,2\n")
        with pytest.raises(DataValidationError):
            load_panel_csv(path, alphabet=2)


class TestNpzRoundtrip:
    def test_binary_roundtrip(self, tmp_path):
        panel = iid_bernoulli(30, 8, 0.4, seed=1)
        path = save_panel_npz(panel, tmp_path / "panel.npz")
        loaded = load_panel_npz(path)
        assert loaded == panel

    def test_categorical_roundtrip(self, tmp_path):
        panel = categorical_iid(30, 8, [0.1, 0.2, 0.3, 0.4], seed=2)
        path = save_panel_npz(panel, tmp_path / "cat.npz")
        loaded = load_panel_npz(path)
        assert loaded == panel
        assert loaded.alphabet == 4


class TestReleaseExport:
    def test_fixed_window_release_export(self, tmp_path, small_markov_panel):
        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.05, seed=3,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        csv_path, json_path = save_release_csv(release, tmp_path / "out")
        loaded = load_panel_csv(csv_path)
        assert loaded == release.synthetic_data()
        metadata = json.loads(json_path.read_text())
        assert metadata["kind"] == "fixed_window"
        assert metadata["n_pad"] == release.padding.n_pad
        assert metadata["n_original"] == small_markov_panel.n_individuals

    def test_exported_metadata_enables_offline_debiasing(
        self, tmp_path, small_markov_panel
    ):
        from repro.queries.window import AtLeastMOnes

        synth = FixedWindowSynthesizer(
            horizon=small_markov_panel.horizon, window=3, rho=0.05, seed=4,
            noise_method="vectorized",
        )
        release = synth.run(small_markov_panel)
        csv_path, json_path = save_release_csv(release, tmp_path / "out")
        panel = load_panel_csv(csv_path)
        metadata = json.loads(json_path.read_text())

        # An analyst with only the two files reproduces the debiased answer.
        query = AtLeastMOnes(3, 1)
        t = small_markov_panel.horizon
        count = query.evaluate(panel, t) * panel.n_individuals
        multiplicity = 2 ** (metadata["window"] - query.k)
        padding_count = metadata["n_pad"] * multiplicity * query.weight_sum
        offline = (count - padding_count) / metadata["n_original"]
        assert offline == pytest.approx(release.answer(query, t))

    def test_categorical_release_export(self, tmp_path):
        from repro.core.categorical_window import CategoricalWindowSynthesizer

        panel = categorical_iid(100, 6, [0.3, 0.4, 0.3], seed=5)
        synth = CategoricalWindowSynthesizer(
            horizon=6, window=2, alphabet=3, rho=0.1, seed=6,
            noise_method="vectorized",
        )
        release = synth.run(panel)
        csv_path, json_path = save_release_csv(release, tmp_path / "cat")
        metadata = json.loads(json_path.read_text())
        assert metadata["kind"] == "categorical_window"
        assert metadata["alphabet"] == 3
        loaded = load_panel_csv(csv_path, alphabet=3)
        assert loaded == release.synthetic_data()

    def test_q2_categorical_release_keeps_categorical_kind(self, tmp_path):
        # The discriminator is the release type, not the alphabet value:
        # a q=2 categorical export must not masquerade as binary metadata.
        from repro.core.categorical_window import CategoricalWindowSynthesizer

        panel = categorical_iid(80, 5, [0.6, 0.4], seed=7)
        synth = CategoricalWindowSynthesizer(
            horizon=5, window=2, alphabet=2, rho=0.2, seed=8,
            noise_method="vectorized",
        )
        release = synth.run(panel)
        _, json_path = save_release_csv(release, tmp_path / "cat2")
        metadata = json.loads(json_path.read_text())
        assert metadata["kind"] == "categorical_window"
        assert metadata["alphabet"] == 2
