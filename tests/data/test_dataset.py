"""Tests for the LongitudinalDataset container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.dataset import LongitudinalDataset
from repro.exceptions import DataValidationError

panels = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 10)),
    elements=st.integers(0, 1),
)


class TestConstruction:
    def test_basic_shape(self, tiny_panel):
        assert tiny_panel.n_individuals == 4
        assert tiny_panel.horizon == 5

    def test_rejects_non_binary(self):
        with pytest.raises(DataValidationError):
            LongitudinalDataset([[0, 2], [1, 0]])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(DataValidationError):
            LongitudinalDataset([1, 0, 1])

    def test_matrix_is_read_only(self, tiny_panel):
        with pytest.raises(ValueError):
            tiny_panel.matrix[0, 0] = 1

    def test_input_copied(self):
        source = np.zeros((2, 3), dtype=np.uint8)
        panel = LongitudinalDataset(source)
        source[0, 0] = 1
        assert panel.matrix[0, 0] == 0

    def test_equality_and_hash(self, tiny_panel):
        clone = LongitudinalDataset(tiny_panel.matrix)
        assert tiny_panel == clone
        assert hash(tiny_panel) == hash(clone)
        assert tiny_panel != LongitudinalDataset([[0] * 5] * 4)

    def test_repr(self, tiny_panel):
        assert "n=4" in repr(tiny_panel) and "T=5" in repr(tiny_panel)


class TestAccess:
    def test_column_is_one_indexed(self, tiny_panel):
        assert tiny_panel.column(1).tolist() == [1, 0, 1, 0]
        assert tiny_panel.column(5).tolist() == [0, 0, 1, 1]

    def test_column_bounds(self, tiny_panel):
        with pytest.raises(DataValidationError):
            tiny_panel.column(0)
        with pytest.raises(DataValidationError):
            tiny_panel.column(6)

    def test_columns_iterates_in_order(self, tiny_panel):
        columns = list(tiny_panel.columns())
        assert len(columns) == 5
        assert columns[0].tolist() == [1, 0, 1, 0]

    def test_prefix(self, tiny_panel):
        prefix = tiny_panel.prefix(2)
        assert prefix.horizon == 2
        assert prefix.n_individuals == 4

    def test_subset(self, tiny_panel):
        subset = tiny_panel.subset([0, 2])
        assert subset.n_individuals == 2
        assert (subset.matrix[1] == tiny_panel.matrix[2]).all()

    def test_concat(self, tiny_panel):
        doubled = tiny_panel.concat(tiny_panel)
        assert doubled.n_individuals == 8

    def test_concat_horizon_mismatch(self, tiny_panel):
        with pytest.raises(DataValidationError):
            tiny_panel.concat(tiny_panel.prefix(3))


class TestWindowPrimitives:
    def test_window_codes_known_values(self, tiny_panel):
        # Row 0 is 1,0,1,1,0; window (t=3, k=2) is (0,1) -> code 1.
        codes = tiny_panel.window_codes(3, 2)
        assert codes.tolist() == [1, 1, 3, 0]

    def test_window_codes_full_width(self, tiny_panel):
        codes = tiny_panel.window_codes(5, 5)
        # Row 2 is all ones: code 2^5 - 1.
        assert codes[2] == 31

    def test_window_before_k_rejected(self, tiny_panel):
        with pytest.raises(DataValidationError):
            tiny_panel.window_codes(1, 2)

    def test_suffix_histogram_sums_to_n(self, tiny_panel):
        for t in range(2, 6):
            assert tiny_panel.suffix_histogram(t, 2).sum() == 4

    def test_suffix_histogram_known(self, tiny_panel):
        hist = tiny_panel.suffix_histogram(3, 2)
        # Codes at t=3,k=2: [1,1,3,0].
        assert hist.tolist() == [1, 2, 0, 1]

    @given(panels, st.data())
    @settings(max_examples=30, deadline=None)
    def test_histogram_matches_bruteforce(self, matrix, data):
        panel = LongitudinalDataset(matrix)
        k = data.draw(st.integers(1, panel.horizon))
        t = data.draw(st.integers(k, panel.horizon))
        hist = panel.suffix_histogram(t, k)
        brute = np.zeros(1 << k, dtype=np.int64)
        for row in matrix:
            code = 0
            for bit in row[t - k : t]:
                code = (code << 1) | int(bit)
            brute[code] += 1
        assert (hist == brute).all()


class TestCumulativePrimitives:
    def test_hamming_weights(self, tiny_panel):
        assert tiny_panel.hamming_weights(5).tolist() == [3, 1, 5, 1]
        assert tiny_panel.hamming_weights(0).tolist() == [0, 0, 0, 0]

    def test_threshold_counts_structure(self, tiny_panel):
        counts = tiny_panel.threshold_counts(5)
        assert counts[0] == 4  # everyone has weight >= 0
        assert counts.shape == (6,)
        assert (np.diff(counts) <= 0).all()  # non-increasing in b

    def test_threshold_counts_known(self, tiny_panel):
        counts = tiny_panel.threshold_counts(5)
        # weights [3,1,5,1]: S_1=4, S_2=2, S_3=2, S_4=1, S_5=1.
        assert counts.tolist() == [4, 4, 2, 2, 1, 1]

    def test_increments_reconstruct_thresholds(self, markov_panel):
        # Summing z_b^t over t must reproduce S_b^T for every b.
        horizon = markov_panel.horizon
        totals = np.zeros(horizon + 1, dtype=np.int64)
        for t in range(1, horizon + 1):
            increments = markov_panel.increments(t)
            totals[1 : t + 1] += increments
        expected = markov_panel.threshold_counts(horizon)
        assert (totals[1:] == expected[1:]).all()

    def test_increments_first_round(self, tiny_panel):
        # z_1^1 = number of 1s in the first column.
        assert tiny_panel.increments(1).tolist() == [2]

    @given(panels)
    @settings(max_examples=30, deadline=None)
    def test_threshold_counts_monotone_in_t(self, matrix):
        panel = LongitudinalDataset(matrix)
        previous = np.zeros(panel.horizon + 1, dtype=np.int64)
        previous[0] = panel.n_individuals
        for t in range(1, panel.horizon + 1):
            current = panel.threshold_counts(t)
            assert (current >= previous).all() or (current[1:] >= previous[1:]).all()
            previous = current
