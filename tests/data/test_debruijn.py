"""Tests for the de Bruijn padding construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.debruijn import debruijn_sequence, padding_panel
from repro.exceptions import ConfigurationError


class TestDeBruijnSequence:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_every_pattern_appears_exactly_once(self, k):
        cycle = debruijn_sequence(k)
        assert cycle.shape == (1 << k,)
        seen = set()
        doubled = np.concatenate([cycle, cycle])
        for start in range(1 << k):
            code = 0
            for bit in doubled[start : start + k]:
                code = (code << 1) | int(bit)
            seen.add(code)
        assert seen == set(range(1 << k))

    def test_binary_entries(self):
        assert set(np.unique(debruijn_sequence(4))) <= {0, 1}

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            debruijn_sequence(0)

    def test_k1_is_zero_one(self):
        assert sorted(debruijn_sequence(1).tolist()) == [0, 1]


class TestPaddingPanel:
    @pytest.mark.parametrize("k,n_pad", [(1, 1), (2, 3), (3, 2), (4, 1)])
    def test_every_window_histogram_uniform(self, k, n_pad):
        horizon = 10
        panel = padding_panel(k, n_pad, horizon)
        assert panel.n_individuals == n_pad * (1 << k)
        for t in range(k, horizon + 1):
            hist = panel.suffix_histogram(t, k)
            assert (hist == n_pad).all(), (k, n_pad, t, hist)

    def test_zero_padding_empty(self):
        panel = padding_panel(3, 0, 8)
        assert panel.n_individuals == 0

    def test_negative_padding_rejected(self):
        with pytest.raises(ConfigurationError):
            padding_panel(3, -1, 8)

    def test_horizon_shorter_than_window_rejected(self):
        with pytest.raises(ConfigurationError):
            padding_panel(4, 1, 3)

    def test_long_horizon_wraps_cycle(self):
        # horizon much longer than the cycle length 2^k.
        panel = padding_panel(2, 1, 25)
        for t in range(2, 26):
            assert (panel.suffix_histogram(t, 2) == 1).all()

    @given(
        k=st.integers(1, 5),
        n_pad=st.integers(1, 3),
        extra=st.integers(0, 10),
    )
    @settings(max_examples=20, deadline=None)
    def test_uniformity_property(self, k, n_pad, extra):
        horizon = k + extra
        panel = padding_panel(k, n_pad, horizon)
        for t in range(k, horizon + 1):
            assert (panel.suffix_histogram(t, k) == n_pad).all()

    def test_smaller_window_histogram_also_uniform(self):
        # A width-k' <= k marginal of a uniform width-k histogram is uniform
        # with multiplicity 2^(k-k').
        panel = padding_panel(4, 2, 12)
        for t in range(4, 13):
            hist = panel.suffix_histogram(t, 2)
            assert (hist == 2 * 4).all()
