"""Tests for the categorical data substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.categorical import (
    CategoricalDataset,
    categorical_iid,
    categorical_markov,
    categorical_padding_panel,
)
from repro.data.debruijn import debruijn_sequence
from repro.exceptions import ConfigurationError, DataValidationError


class TestCategoricalDataset:
    def test_shape_and_alphabet(self):
        panel = CategoricalDataset([[0, 1, 2], [2, 1, 0]], alphabet=3)
        assert panel.n_individuals == 2
        assert panel.horizon == 3
        assert panel.alphabet == 3

    def test_rejects_out_of_range(self):
        with pytest.raises(DataValidationError):
            CategoricalDataset([[0, 3]], alphabet=3)
        with pytest.raises(DataValidationError):
            CategoricalDataset([[-1, 0]], alphabet=3)

    def test_rejects_small_alphabet(self):
        with pytest.raises(ConfigurationError):
            CategoricalDataset([[0, 0]], alphabet=1)

    def test_window_codes_base_q(self):
        panel = CategoricalDataset([[2, 1, 0]], alphabet=3)
        # Window (t=2, k=2) is (2, 1): code 2*3 + 1 = 7.
        assert panel.window_codes(2, 2).tolist() == [7]
        assert panel.window_codes(3, 3).tolist() == [2 * 9 + 1 * 3 + 0]

    def test_suffix_histogram_sums_to_n(self):
        panel = categorical_iid(200, 6, [0.2, 0.3, 0.5], seed=0)
        for t in range(2, 7):
            assert panel.suffix_histogram(t, 2).sum() == 200

    def test_binary_special_case_matches_longitudinal(self):
        from repro.data.dataset import LongitudinalDataset

        matrix = np.random.default_rng(1).integers(0, 2, size=(50, 6))
        categorical = CategoricalDataset(matrix, alphabet=2)
        binary = LongitudinalDataset(matrix)
        for t in range(3, 7):
            assert (
                categorical.suffix_histogram(t, 3) == binary.suffix_histogram(t, 3)
            ).all()

    def test_equality_and_prefix(self):
        panel = categorical_iid(20, 5, [0.5, 0.25, 0.25], seed=2)
        assert panel == CategoricalDataset(panel.matrix, alphabet=3)
        assert panel.prefix(3).horizon == 3

    def test_read_only(self):
        panel = CategoricalDataset([[0, 1]], alphabet=2)
        with pytest.raises(ValueError):
            panel.matrix[0, 0] = 1


class TestGenerators:
    def test_iid_marginals(self):
        probs = [0.2, 0.3, 0.5]
        panel = categorical_iid(20000, 4, probs, seed=3)
        for category, p in enumerate(probs):
            assert abs((panel.matrix == category).mean() - p) < 0.01

    def test_iid_validation(self):
        with pytest.raises(ConfigurationError):
            categorical_iid(10, 5, [1.0])
        with pytest.raises(ConfigurationError):
            categorical_iid(10, 5, [0.5, 0.6])
        with pytest.raises(ConfigurationError):
            categorical_iid(0, 5, [0.5, 0.5])

    def test_markov_respects_transitions(self):
        transition = np.array([[0.9, 0.1, 0.0], [0.0, 0.9, 0.1], [0.1, 0.0, 0.9]])
        panel = categorical_markov(20000, 10, transition, seed=4)
        matrix = panel.matrix
        from_zero = matrix[:, 1:][matrix[:, :-1] == 0]
        assert abs((from_zero == 0).mean() - 0.9) < 0.02
        assert (from_zero == 2).mean() < 0.005  # forbidden transition

    def test_markov_initial_distribution(self):
        transition = np.full((3, 3), 1 / 3)
        panel = categorical_markov(
            9000, 2, transition, initial=[1.0, 0.0, 0.0], seed=5
        )
        assert (panel.matrix[:, 0] == 0).all()

    def test_markov_validation(self):
        with pytest.raises(ConfigurationError):
            categorical_markov(10, 5, np.array([[0.5, 0.4], [0.5, 0.5]]))
        with pytest.raises(ConfigurationError):
            categorical_markov(10, 5, np.ones((2, 3)))
        with pytest.raises(ConfigurationError):
            categorical_markov(
                10, 5, np.full((2, 2), 0.5), initial=[0.9, 0.2]
            )


class TestCategoricalDeBruijn:
    @pytest.mark.parametrize("alphabet,k", [(3, 1), (3, 2), (3, 3), (4, 2), (5, 2)])
    def test_cycle_enumerates_all_patterns(self, alphabet, k):
        cycle = debruijn_sequence(k, alphabet=alphabet)
        assert cycle.shape == (alphabet**k,)
        doubled = np.concatenate([cycle, cycle])
        seen = set()
        for start in range(alphabet**k):
            code = 0
            for digit in doubled[start : start + k]:
                code = code * alphabet + int(digit)
            seen.add(code)
        assert seen == set(range(alphabet**k))

    def test_invalid_alphabet(self):
        with pytest.raises(ConfigurationError):
            debruijn_sequence(2, alphabet=1)

    @pytest.mark.parametrize("alphabet,k,n_pad", [(3, 2, 1), (3, 2, 2), (4, 2, 1), (3, 3, 1)])
    def test_padding_panel_uniform_in_every_window(self, alphabet, k, n_pad):
        horizon = k + 6
        panel = categorical_padding_panel(k, n_pad, horizon, alphabet)
        assert panel.n_individuals == n_pad * alphabet**k
        for t in range(k, horizon + 1):
            assert (panel.suffix_histogram(t, k) == n_pad).all()

    def test_zero_padding(self):
        panel = categorical_padding_panel(2, 0, 6, 3)
        assert panel.n_individuals == 0

    @given(alphabet=st.integers(2, 4), k=st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_padding_uniformity_property(self, alphabet, k):
        horizon = k + 4
        panel = categorical_padding_panel(k, 1, horizon, alphabet)
        for t in range(k, horizon + 1):
            assert (panel.suffix_histogram(t, k) == 1).all()
