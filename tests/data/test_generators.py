"""Tests for the synthetic stream generators."""

import numpy as np
import pytest

from repro.data.generators import (
    all_ones,
    bursty_spells,
    iid_bernoulli,
    mixture,
    seasonal,
    two_state_markov,
)
from repro.exceptions import ConfigurationError


class TestAllOnes:
    def test_every_entry_is_one(self):
        panel = all_ones(10, 6)
        assert (panel.matrix == 1).all()

    def test_shape(self):
        panel = all_ones(25000, 12)
        assert panel.n_individuals == 25000 and panel.horizon == 12

    def test_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            all_ones(0, 5)
        with pytest.raises(ConfigurationError):
            all_ones(5, 0)


class TestIidBernoulli:
    def test_marginal_rate(self):
        panel = iid_bernoulli(5000, 10, p=0.3, seed=0)
        assert abs(panel.matrix.mean() - 0.3) < 0.02

    def test_p_zero_and_one(self):
        assert (iid_bernoulli(10, 5, 0.0, seed=0).matrix == 0).all()
        assert (iid_bernoulli(10, 5, 1.0, seed=0).matrix == 1).all()

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            iid_bernoulli(10, 5, 1.5)

    def test_reproducible(self):
        a = iid_bernoulli(20, 5, 0.5, seed=3)
        b = iid_bernoulli(20, 5, 0.5, seed=3)
        assert a == b


class TestTwoStateMarkov:
    def test_stationary_marginals(self):
        panel = two_state_markov(20000, 12, p_stay=0.85, p_enter=0.03, seed=1)
        stationary = 0.03 / (0.03 + 0.15)
        monthly = panel.matrix.mean(axis=0)
        assert np.abs(monthly - stationary).max() < 0.02

    def test_persistence(self):
        panel = two_state_markov(20000, 12, p_stay=0.9, p_enter=0.02, seed=2)
        matrix = panel.matrix
        in_state = matrix[:, :-1] == 1
        stay_rate = matrix[:, 1:][in_state].mean()
        assert abs(stay_rate - 0.9) < 0.02

    def test_explicit_initial_probability(self):
        panel = two_state_markov(5000, 3, p_stay=0.5, p_enter=0.5, p_initial=1.0, seed=3)
        assert (panel.matrix[:, 0] == 1).all()

    def test_invalid_probabilities(self):
        with pytest.raises(ConfigurationError):
            two_state_markov(10, 5, p_stay=1.2, p_enter=0.1)
        with pytest.raises(ConfigurationError):
            two_state_markov(10, 5, p_stay=0.5, p_enter=-0.1)


class TestBurstySpells:
    def test_starts_out_of_spell(self):
        panel = bursty_spells(1000, 8, spell_rate=0.05, mean_spell_length=3, seed=4)
        # First column is all zeros by construction (p_initial=0).
        assert (panel.matrix[:, 0] == 0).all()

    def test_mean_spell_length_validated(self):
        with pytest.raises(ConfigurationError):
            bursty_spells(10, 5, spell_rate=0.1, mean_spell_length=0.5)

    def test_spell_lengths_geometric(self):
        panel = bursty_spells(30000, 12, spell_rate=0.1, mean_spell_length=4, seed=5)
        matrix = panel.matrix
        in_spell = matrix[:, 1:-1] == 1
        continuing = matrix[:, 2:][in_spell[:, : matrix.shape[1] - 2]]
        assert abs(continuing.mean() - 0.75) < 0.02  # 1 - 1/4


class TestSeasonal:
    def test_rate_oscillates(self):
        panel = seasonal(30000, 12, base_p=0.3, amplitude=0.2, period=12, seed=6)
        monthly = panel.matrix.mean(axis=0)
        assert monthly.max() > 0.42 and monthly.min() < 0.18

    def test_clipping_keeps_valid_probabilities(self):
        panel = seasonal(1000, 12, base_p=0.05, amplitude=0.5, period=6, seed=7)
        assert set(np.unique(panel.matrix)) <= {0, 1}

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            seasonal(10, 5, 0.5, 0.1, period=0)


class TestMixture:
    def test_pools_components(self):
        a = all_ones(10, 4)
        b = iid_bernoulli(20, 4, 0.0, seed=8)
        pooled = mixture([a, b], seed=9)
        assert pooled.n_individuals == 30
        assert pooled.matrix.sum() == 40  # only the all-ones rows contribute

    def test_shuffle_changes_order_not_content(self):
        a = all_ones(5, 3)
        b = iid_bernoulli(5, 3, 0.0, seed=10)
        pooled = mixture([a, b], seed=11, shuffle=True)
        assert pooled.matrix.sum() == 15

    def test_requires_matching_horizons(self):
        with pytest.raises(ConfigurationError):
            mixture([all_ones(5, 3), all_ones(5, 4)])

    def test_empty_components_rejected(self):
        with pytest.raises(ConfigurationError):
            mixture([])
