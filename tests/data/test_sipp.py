"""Tests for the SIPP simulator and the paper's preprocessing pipeline."""

import numpy as np
import pytest

from repro.data.sipp import (
    SIPP_2021_HORIZON,
    SIPP_2021_N_HOUSEHOLDS,
    SippRawData,
    load_sipp_2021,
    preprocess_sipp,
    simulate_sipp_raw,
)
from repro.exceptions import ConfigurationError, DataValidationError


class TestSimulateRaw:
    def test_row_count_accounts_for_multi_person(self):
        raw = simulate_sipp_raw(500, seed=0)
        # Every household contributes 12 person-months for person 1, plus
        # 12 more for each second person.
        assert raw.n_rows >= 500 * 12
        assert raw.n_rows <= 500 * 24

    def test_some_households_have_two_persons(self):
        raw = simulate_sipp_raw(1000, seed=1)
        assert (raw.person_id == 2).any()

    def test_some_missingness(self):
        raw = simulate_sipp_raw(2000, seed=2)
        assert np.isnan(raw.income_poverty_ratio).any()

    def test_months_one_indexed(self):
        raw = simulate_sipp_raw(50, seed=3)
        assert raw.month.min() == 1
        assert raw.month.max() == SIPP_2021_HORIZON

    def test_ratio_positive_when_present(self):
        raw = simulate_sipp_raw(200, seed=4)
        present = raw.income_poverty_ratio[~np.isnan(raw.income_poverty_ratio)]
        assert (present > 0).all()

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            simulate_sipp_raw(0)
        with pytest.raises(ConfigurationError):
            simulate_sipp_raw(10, horizon=0)

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(DataValidationError):
            SippRawData(
                household_id=np.zeros(3, dtype=np.int64),
                person_id=np.zeros(3, dtype=np.int64),
                month=np.zeros(2, dtype=np.int64),
                income_poverty_ratio=np.zeros(3),
            )


class TestPreprocess:
    def test_one_series_per_household(self):
        raw = simulate_sipp_raw(800, seed=5)
        panel = preprocess_sipp(raw)
        # At most one row per surviving household.
        assert panel.n_individuals <= 800

    def test_households_with_missing_months_dropped(self):
        household = np.repeat([0, 1], 12)
        person = np.ones(24, dtype=np.int64)
        month = np.tile(np.arange(1, 13), 2)
        ratio = np.full(24, 2.0)
        ratio[3] = np.nan  # household 0 misses month 4
        raw = SippRawData(household, person, month, ratio)
        panel = preprocess_sipp(raw)
        assert panel.n_individuals == 1

    def test_binarization_threshold(self):
        household = np.zeros(12, dtype=np.int64)
        person = np.ones(12, dtype=np.int64)
        month = np.arange(1, 13)
        ratio = np.array([0.5, 0.99, 1.0, 1.5, 2.0, 0.2, 3.0, 0.999, 1.001, 5.0, 0.1, 1.0])
        raw = SippRawData(household, person, month, ratio)
        panel = preprocess_sipp(raw)
        expected = (ratio < 1.0).astype(int)
        assert panel.matrix[0].tolist() == expected.tolist()

    def test_lowest_person_number_kept(self):
        # Household 0 surveyed twice; person 1's series must win.
        household = np.zeros(24, dtype=np.int64)
        person = np.repeat([2, 1], 12)
        month = np.tile(np.arange(1, 13), 2)
        ratio = np.concatenate([np.full(12, 0.5), np.full(12, 2.0)])
        raw = SippRawData(household, person, month, ratio)
        panel = preprocess_sipp(raw)
        assert panel.n_individuals == 1
        assert (panel.matrix[0] == 0).all()  # person 1's non-poor series

    def test_incomplete_household_missing_whole_month_dropped(self):
        # Household reports only 11 of 12 months: dropped.
        household = np.zeros(11, dtype=np.int64)
        person = np.ones(11, dtype=np.int64)
        month = np.arange(1, 12)
        ratio = np.full(11, 2.0)
        raw = SippRawData(household, person, month, ratio)
        panel = preprocess_sipp(raw)
        assert panel.n_individuals == 0


class TestLoadSipp2021:
    def test_paper_dimensions(self):
        panel = load_sipp_2021(seed=99)
        assert panel.n_individuals == SIPP_2021_N_HOUSEHOLDS
        assert panel.horizon == SIPP_2021_HORIZON

    def test_poverty_rate_in_calibrated_range(self):
        panel = load_sipp_2021(seed=100)
        monthly = panel.matrix.mean(axis=0)
        assert 0.09 < monthly.mean() < 0.14

    def test_quarterly_stats_in_figure1_range(self):
        panel = load_sipp_2021(seed=101)
        weights_q1 = panel.matrix[:, :3].sum(axis=1)
        at_least_one = (weights_q1 >= 1).mean()
        all_three = (weights_q1 == 3).mean()
        assert 0.10 < at_least_one < 0.20
        assert 0.05 < all_three < 0.12

    def test_persistence_present(self):
        panel = load_sipp_2021(seed=102)
        matrix = panel.matrix
        in_poverty = matrix[:, :-1] == 1
        stay = matrix[:, 1:][in_poverty].mean()
        assert stay > 0.7  # strong month-to-month persistence

    def test_reproducible(self):
        assert load_sipp_2021(seed=5) == load_sipp_2021(seed=5)

    def test_all_bins_occupied_for_k3(self):
        # Algorithm 1's k=3 histogram should have no structurally empty bins.
        panel = load_sipp_2021(seed=103)
        hist = panel.suffix_histogram(3, 3)
        assert (hist > 0).all()

    def test_keep_all_households_mode(self):
        panel = load_sipp_2021(seed=104, target_households=None)
        assert panel.n_individuals >= SIPP_2021_N_HOUSEHOLDS

    def test_custom_target(self):
        panel = load_sipp_2021(seed=105, target_households=500)
        assert panel.n_individuals == 500


class TestSippDynamic:
    def test_dynamic_panel_dimensions_and_attrition(self):
        from repro.data.sipp import load_sipp_dynamic

        panel = load_sipp_dynamic(seed=7, target_households=400)
        assert panel.n_ever == 400 and panel.horizon == 12
        assert panel.churned
        # Default ~2.5 %/month hazard loses a nontrivial share by month 12.
        retained = panel.n_active(12) / panel.n_ever
        assert 0.5 < retained < 0.95

    def test_dynamic_panel_deterministic(self):
        from repro.data.sipp import load_sipp_dynamic

        a = load_sipp_dynamic(seed=8, target_households=200)
        b = load_sipp_dynamic(seed=8, target_households=200)
        assert (a.matrix == b.matrix).all()
        assert (a.exit_round == b.exit_round).all()

    def test_zero_hazard_zero_entry_is_static(self):
        from repro.data.sipp import load_sipp_dynamic

        panel = load_sipp_dynamic(
            seed=9, target_households=150, attrition_hazard=0.0, entry_rate=0.0
        )
        assert not panel.churned
