"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import LongitudinalDataset
from repro.data.generators import two_state_markov
from repro.rng import as_generator


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests needing raw randomness."""
    return as_generator(12345)


@pytest.fixture
def tiny_panel() -> LongitudinalDataset:
    """A 4x5 hand-written panel with known statistics."""
    return LongitudinalDataset(
        [
            [1, 0, 1, 1, 0],
            [0, 0, 1, 0, 0],
            [1, 1, 1, 1, 1],
            [0, 0, 0, 0, 1],
        ]
    )


@pytest.fixture
def markov_panel() -> LongitudinalDataset:
    """A medium Markov panel (n=600, T=12) with poverty-like dynamics."""
    return two_state_markov(600, 12, p_stay=0.85, p_enter=0.03, seed=7)


@pytest.fixture
def small_markov_panel() -> LongitudinalDataset:
    """A small Markov panel (n=150, T=8) for faster synthesizer tests."""
    return two_state_markov(150, 8, p_stay=0.8, p_enter=0.05, seed=3)
