"""The benchmark regression gate (benchmarks/check_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _write(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload))


@pytest.fixture
def gate_dirs(tmp_path):
    reports = tmp_path / "reports"
    baselines = tmp_path / "baselines"
    reports.mkdir()
    baselines.mkdir()
    _write(
        baselines / "BENCH_example.json",
        {
            "benchmark": "example",
            "metrics": {
                "speedup": {"value": 10.0, "direction": "higher"},
                "latency_ms": {"value": 5.0, "direction": "lower"},
            },
        },
    )
    _write(
        reports / "BENCH_example.json",
        {
            "benchmark": "example",
            "schema": 1,
            "metrics": {"speedup": 11.0, "latency_ms": 4.0},
        },
    )
    return reports, baselines


class TestIsRegression:
    def test_higher_direction(self):
        assert not check_regression.is_regression(8.0, 10.0, "higher", 1.5)
        assert check_regression.is_regression(6.0, 10.0, "higher", 1.5)

    def test_lower_direction(self):
        assert not check_regression.is_regression(7.0, 5.0, "lower", 1.5)
        assert check_regression.is_regression(8.0, 5.0, "lower", 1.5)

    def test_unknown_direction(self):
        with pytest.raises(ValueError):
            check_regression.is_regression(1.0, 1.0, "sideways", 1.5)


class TestResolveMetric:
    def test_metrics_mapping_wins(self):
        report = {"metrics": {"speedup": 3.0}, "speedup": 99.0}
        assert check_regression.resolve_metric(report, "speedup") == 3.0

    def test_dotted_path(self):
        report = {"speedup_vs_serial": {"batched": 12.5}}
        assert check_regression.resolve_metric(report, "speedup_vs_serial.batched") == 12.5

    def test_missing_returns_none(self):
        assert check_regression.resolve_metric({}, "nope.deep") is None


class TestCheck:
    def test_passes_within_tolerance(self, gate_dirs):
        reports, baselines = gate_dirs
        failures, lines = check_regression.check(reports, baselines, 1.5)
        assert failures == []
        assert len(lines) == 2

    def test_fails_on_two_x_slowdown(self, gate_dirs):
        reports, baselines = gate_dirs
        _write(
            reports / "BENCH_example.json",
            {"benchmark": "example", "metrics": {"speedup": 5.5, "latency_ms": 10.0}},
        )
        failures, _ = check_regression.check(reports, baselines, 1.5)
        assert len(failures) == 2

    def test_missing_report_fails(self, gate_dirs):
        reports, baselines = gate_dirs
        (reports / "BENCH_example.json").unlink()
        failures, _ = check_regression.check(reports, baselines, 1.5)
        assert any("report missing" in failure for failure in failures)

    def test_missing_metric_fails(self, gate_dirs):
        reports, baselines = gate_dirs
        _write(reports / "BENCH_example.json", {"benchmark": "example", "metrics": {}})
        failures, _ = check_regression.check(reports, baselines, 1.5)
        assert any("absent" in failure for failure in failures)

    def test_empty_baselines_fail(self, tmp_path):
        (tmp_path / "baselines").mkdir()
        (tmp_path / "reports").mkdir()
        failures, _ = check_regression.check(
            tmp_path / "reports", tmp_path / "baselines", 1.5
        )
        assert failures


class TestSelfTest:
    def test_catches_injected_slowdown(self, gate_dirs, capsys):
        reports, baselines = gate_dirs
        assert check_regression.self_test(reports, baselines, 1.5, 2.0) == 0
        assert "is caught" in capsys.readouterr().out

    def test_flags_toothless_injection_factor(self, gate_dirs, capsys):
        reports, baselines = gate_dirs
        assert check_regression.self_test(reports, baselines, 1.5, 1.2) > 0

    def test_flags_already_regressed_report(self, gate_dirs):
        reports, baselines = gate_dirs
        _write(
            reports / "BENCH_example.json",
            {"benchmark": "example", "metrics": {"speedup": 1.0, "latency_ms": 50.0}},
        )
        assert check_regression.self_test(reports, baselines, 1.5, 2.0) > 0


class TestUtilityAccuracyGate:
    """The gate catches *accuracy* regressions, not just speed ones."""

    COMMITTED = (
        Path(__file__).parent.parent
        / "benchmarks"
        / "baselines"
        / "BENCH_test_utility.json"
    )

    @pytest.fixture
    def utility_gate_dirs(self, tmp_path):
        reports = tmp_path / "reports"
        baselines = tmp_path / "baselines"
        reports.mkdir()
        baselines.mkdir()
        payload = json.loads(self.COMMITTED.read_text())
        _write(baselines / "BENCH_test_utility.json", payload)
        healthy = {
            name: spec["value"] for name, spec in payload["metrics"].items()
        }
        _write(
            reports / "BENCH_test_utility.json",
            {"benchmark": "test_utility", "metrics": healthy},
        )
        return reports, baselines, payload

    def test_committed_baseline_gates_accuracy_metrics(self):
        payload = json.loads(self.COMMITTED.read_text())
        directions = {
            name: spec["direction"] for name, spec in payload["metrics"].items()
        }
        # pMSE and rmse are costs; the clamped-minus-window margin is the
        # canary that must stay open.
        assert any(name.startswith("pmse_window") for name in directions)
        assert any(name.startswith("rmse_window") for name in directions)
        assert directions["margin_clamped_over_window_rho0.05_T12"] == "higher"
        assert all(
            direction == "lower"
            for name, direction in directions.items()
            if name.startswith(("pmse_", "rmse_"))
        )

    def test_healthy_report_passes(self, utility_gate_dirs):
        reports, baselines, _ = utility_gate_dirs
        failures, lines = check_regression.check(reports, baselines, 1.5)
        assert failures == []
        assert lines

    def test_injected_accuracy_regression_fails(self, utility_gate_dirs):
        # Doubling the noise scale (a quartered rho) roughly quadruples
        # every pMSE/rmse metric and collapses the clamped-over-window
        # margin; all of that must trip the 1.5x gate.
        reports, baselines, payload = utility_gate_dirs
        degraded = {}
        for name, spec in payload["metrics"].items():
            if spec["direction"] == "lower":
                degraded[name] = spec["value"] * 4.0
            else:
                degraded[name] = spec["value"] / 4.0
        _write(
            reports / "BENCH_test_utility.json",
            {"benchmark": "test_utility", "metrics": degraded},
        )
        failures, _ = check_regression.check(reports, baselines, 1.5)
        assert len(failures) == len(payload["metrics"])

    def test_real_noise_doubling_trips_the_metric(self):
        # End-to-end: score Algorithm 1 healthy (rho) vs degraded (rho/4,
        # i.e. doubled noise sigma) and confirm the measured pMSE shift is
        # a gate-visible regression, not a within-tolerance wobble.
        import numpy as np

        from repro.analysis.utility import pmse_release
        from repro.core.fixed_window import FixedWindowSynthesizer
        from repro.data.generators import two_state_markov

        panel = two_state_markov(800, 8, 0.87, 0.05, seed=12)

        def mean_pmse(rho):
            scores = [
                pmse_release(
                    panel,
                    FixedWindowSynthesizer(8, 3, rho, seed=rep).run(panel),
                    8,
                    3,
                ).ratio
                for rep in range(6)
            ]
            return float(np.mean(scores))

        healthy = mean_pmse(0.1)
        degraded = mean_pmse(0.025)
        assert check_regression.is_regression(degraded, healthy, "lower", 1.5)
        assert not check_regression.is_regression(healthy, healthy, "lower", 1.5)


class TestCommittedBaselines:
    """Against the real baselines — gated on locally generated reports.

    ``benchmarks/reports/`` holds regenerable artifacts (gitignored); a
    fresh checkout has none until the smoke benchmarks run, so these
    tests skip rather than fail there.  The ``bench-regression`` CI job
    runs the benchmarks first and then executes the gate for real.
    """

    @pytest.fixture(autouse=True)
    def _require_reports(self):
        baselines = sorted(check_regression.DEFAULT_BASELINES.glob("*.json"))
        assert baselines, "committed baselines must exist"
        missing = [
            b.name
            for b in baselines
            if not (check_regression.DEFAULT_REPORTS / b.name).exists()
        ]
        if missing:
            pytest.skip(f"benchmark reports not generated locally: {missing}")

    def test_committed_reports_pass_the_committed_gate(self):
        failures, lines = check_regression.check(
            check_regression.DEFAULT_REPORTS,
            check_regression.DEFAULT_BASELINES,
            check_regression.DEFAULT_TOLERANCE,
        )
        assert failures == [], failures
        assert lines

    def test_cli_self_test_passes(self):
        assert check_regression.main(["--self-test"]) == 0
