"""Tests for the stream-counter registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.streams.base import StreamCounter
from repro.streams.registry import (
    _REGISTRY,
    available_counters,
    make_counter,
    register_counter,
)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_counters()
        for expected in ("binary_tree", "simple", "honaker", "sqrt_factorization", "block"):
            assert expected in names

    def test_available_counters_sorted(self):
        names = available_counters()
        assert list(names) == sorted(names)

    def test_make_counter_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown counter"):
            make_counter("nonexistent", horizon=4, rho=1.0)

    def test_make_counter_forwards_kwargs(self):
        counter = make_counter("block", horizon=12, rho=1.0, block_size=3)
        assert counter.block_size == 3

    def test_register_custom_counter(self):
        @register_counter("test_custom")
        class CustomCounter(StreamCounter):
            def _feed(self, z):
                return float(self._true_sum)

            def error_stddev(self, t):
                return 0.0

        try:
            counter = make_counter("test_custom", horizon=4, rho=1.0)
            assert counter.feed(3) == 3.0
        finally:
            del _REGISTRY["test_custom"]

    def test_register_rejects_non_counter(self):
        decorator = register_counter("bogus")
        with pytest.raises(ConfigurationError):
            decorator(dict)
