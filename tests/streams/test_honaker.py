"""Tests for the Honaker-refined tree counter."""

import math

import numpy as np
import pytest

from repro.streams.binary_tree import BinaryTreeCounter
from repro.streams.honaker import HonakerCounter


class TestHonakerCounter:
    def test_noiseless_exact(self):
        counter = HonakerCounter(10, math.inf, seed=0)
        stream = [1, 2, 0, 0, 3, 1, 1, 0, 2, 1]
        assert np.allclose(counter.run(stream), np.cumsum(stream))

    def test_node_variance_strictly_improves_with_level(self):
        counter = HonakerCounter(16, 0.5)
        sigma_sq = float(counter.sigma_sq)
        assert counter.node_variance(0) == pytest.approx(sigma_sq)
        for level in range(1, 5):
            assert counter.node_variance(level) < sigma_sq
            assert counter.node_variance(level) < counter.node_variance(level - 1) * 1.01

    def test_node_variance_zero_when_noiseless(self):
        counter = HonakerCounter(16, math.inf)
        assert counter.node_variance(3) == 0.0

    def test_predicted_error_beats_plain_tree(self):
        honaker = HonakerCounter(16, 0.5)
        tree = BinaryTreeCounter(16, 0.5)
        # Same per-node noise scale; refinement shrinks every node estimate.
        for t in (3, 7, 11, 15):
            assert honaker.error_stddev(t) < tree.error_stddev(t)

    def test_empirical_error_beats_plain_tree(self):
        stream = [1] * 15  # popcount(15)=4: worst case for the plain tree
        honaker_errors, tree_errors = [], []
        for seed in range(300):
            honaker = HonakerCounter(15, 0.5, seed=seed, noise_method="vectorized")
            tree = BinaryTreeCounter(15, 0.5, seed=seed, noise_method="vectorized")
            honaker_errors.append(honaker.run(stream)[-1] - 15)
            tree_errors.append(tree.run(stream)[-1] - 15)
        assert np.std(honaker_errors) < np.std(tree_errors)

    def test_pending_nodes_tile_prefix(self):
        # Internal invariant: at every t, pending nodes' true sums add to S_t.
        counter = HonakerCounter(12, 0.5, seed=1)
        stream = [2, 0, 1, 3, 1, 1, 0, 2, 1, 0, 0, 4]
        for t, z in enumerate(stream, start=1):
            counter.feed(z)
            tiled = sum(
                node.true_sum for node in counter._pending if node is not None
            )
            assert tiled == sum(stream[:t])

    def test_empirical_std_matches_prediction(self):
        stream = [1] * 12
        errors = []
        for seed in range(300):
            counter = HonakerCounter(12, 0.5, seed=seed, noise_method="vectorized")
            errors.append(counter.run(stream)[-1] - 12)
        predicted = HonakerCounter(12, 0.5).error_stddev(12)
        assert abs(np.std(errors) / predicted - 1.0) < 0.25
