"""Behavioural contract tests shared by every registered stream counter."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StreamLengthError
from repro.streams.registry import available_counters, make_counter

ALL_COUNTERS = list(available_counters())


@pytest.mark.parametrize("name", ALL_COUNTERS)
class TestCounterContract:
    def test_noiseless_mode_exact(self, name):
        counter = make_counter(name, horizon=12, rho=math.inf, seed=0)
        stream = [1, 0, 2, 1, 1, 0, 3, 1, 0, 2, 1, 1]
        assert np.allclose(counter.run(stream), np.cumsum(stream))

    def test_outputs_have_horizon_length(self, name):
        counter = make_counter(name, horizon=9, rho=1.0, seed=1)
        assert counter.run([1] * 9).shape == (9,)

    def test_horizon_enforced(self, name):
        counter = make_counter(name, horizon=2, rho=1.0, seed=2)
        counter.run([1, 1])
        with pytest.raises(StreamLengthError):
            counter.feed(0)

    def test_error_stddev_positive_under_noise(self, name):
        counter = make_counter(name, horizon=12, rho=0.5, seed=3)
        assert counter.error_stddev(12) > 0

    def test_error_stddev_zero_when_noiseless(self, name):
        counter = make_counter(name, horizon=12, rho=math.inf, seed=3)
        assert counter.error_stddev(12) == 0.0

    def test_error_scale_shrinks_with_budget(self, name):
        low = make_counter(name, horizon=12, rho=0.01, seed=4)
        high = make_counter(name, horizon=12, rho=1.0, seed=4)
        assert high.error_stddev(12) < low.error_stddev(12)

    def test_empirical_error_within_predicted_scale(self, name):
        stream = [2] * 12
        errors = []
        for seed in range(150):
            counter = make_counter(
                name, horizon=12, rho=0.5, seed=seed, noise_method="vectorized"
            )
            errors.append(counter.run(stream)[-1] - 24)
        predicted = make_counter(name, horizon=12, rho=0.5).error_stddev(12)
        # Empirical stddev should be within 35% of the analytic prediction.
        assert abs(np.std(errors) / predicted - 1.0) < 0.35

    def test_unbiasedness(self, name):
        stream = [1] * 8
        finals = []
        for seed in range(200):
            counter = make_counter(
                name, horizon=8, rho=0.5, seed=seed, noise_method="vectorized"
            )
            finals.append(counter.run(stream)[-1])
        standard_error = np.std(finals) / math.sqrt(len(finals))
        assert abs(np.mean(finals) - 8) < 5 * standard_error + 1e-9

    def test_repr_contains_name(self, name):
        counter = make_counter(name, horizon=4, rho=1.0)
        assert type(counter).__name__ in repr(counter)

    @given(stream=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=16))
    @settings(max_examples=15, deadline=None)
    def test_noiseless_exact_on_arbitrary_streams(self, name, stream):
        counter = make_counter(name, horizon=len(stream), rho=math.inf, seed=0)
        assert np.allclose(counter.run(stream), np.cumsum(stream))
