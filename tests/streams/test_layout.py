"""ArrayArena: contiguous layouts, alignment, and the shared backend."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streams.layout import ALIGNMENT, ArrayArena

SPECS = [
    ("counts", (5,), np.int64),
    ("block", (4, 6), np.float64, "F"),
    ("flags", (3,), np.bool_),
]


def test_views_match_specs_and_start_zeroed():
    arena = ArrayArena(SPECS)
    assert arena.keys() == ["counts", "block", "flags"]
    counts, block, flags = arena["counts"], arena["block"], arena["flags"]
    assert counts.shape == (5,) and counts.dtype == np.int64
    assert block.shape == (4, 6) and block.flags.f_contiguous
    assert flags.dtype == np.bool_
    for view in (counts, block, flags):
        assert not view.any()
    assert "counts" in arena and "nope" not in arena
    assert set(arena.arrays()) == {"counts", "block", "flags"}


def test_views_share_one_aligned_buffer():
    arena = ArrayArena(SPECS)
    addresses = [arena[key].__array_interface__["data"][0] for key in arena.keys()]
    assert all(address % ALIGNMENT == 0 for address in addresses)
    assert addresses == sorted(addresses)  # buffer order == spec order
    span = addresses[-1] + arena["flags"].nbytes - addresses[0]
    assert span <= arena.nbytes
    # Writes land in the backing buffer, not in private copies.
    arena["counts"][:] = 7
    assert arena.arrays()["counts"].sum() == 35


def test_malformed_specs_rejected():
    with pytest.raises(ConfigurationError, match="tuples"):
        ArrayArena([("counts",)])
    with pytest.raises(ConfigurationError, match="non-empty strings"):
        ArrayArena([("", (3,), np.int64)])
    with pytest.raises(ConfigurationError, match="duplicate"):
        ArrayArena([("a", (1,), np.int64), ("a", (2,), np.int64)])
    with pytest.raises(ConfigurationError, match="order"):
        ArrayArena([("a", (2, 2), np.int64, "K")])
    with pytest.raises(ConfigurationError, match="negative"):
        ArrayArena([("a", (-1,), np.int64)])


def test_missing_key_raises_configuration_error():
    arena = ArrayArena(SPECS)
    with pytest.raises(ConfigurationError, match="no array 'nope'"):
        arena["nope"]


def test_name_requires_shared():
    with pytest.raises(ConfigurationError, match="shared=True"):
        ArrayArena(SPECS, name="whatever")


def test_empty_and_scalar_shapes():
    arena = ArrayArena([("empty", (0,), np.int64), ("one", (1,), np.float64)])
    assert arena["empty"].size == 0
    assert arena["one"].shape == (1,)


def test_shared_arena_attach_sees_writes():
    creator = ArrayArena(SPECS, shared=True)
    try:
        assert creator.shared and creator.name
        creator["block"][:] = np.arange(24, dtype=np.float64).reshape(4, 6)
        attached = ArrayArena(SPECS, shared=True, name=creator.name)
        try:
            assert attached.name == creator.name
            assert np.array_equal(attached["block"], creator["block"])
            attached["counts"][0] = 41
            assert creator["counts"][0] == 41
        finally:
            attached.close()
    finally:
        creator.unlink()


def test_attach_rejects_undersized_segment():
    small = ArrayArena([("tiny", (1,), np.uint8)], shared=True)
    try:
        with pytest.raises(ConfigurationError, match="holds"):
            ArrayArena(SPECS, shared=True, name=small.name)
    finally:
        small.unlink()


def test_unlink_is_creator_only_and_idempotent():
    creator = ArrayArena([("a", (4,), np.int64)], shared=True)
    name = creator.name
    attached = ArrayArena([("a", (4,), np.int64)], shared=True, name=name)
    attached.unlink()  # attach-only arena must NOT remove the segment
    still_there = ArrayArena([("a", (4,), np.int64)], shared=True, name=name)
    still_there.close()
    creator.unlink()
    creator.unlink()  # second unlink is a no-op
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_local_arena_repr_and_close():
    arena = ArrayArena(SPECS)
    assert "local" in repr(arena)
    arena.close()
    with pytest.raises(ConfigurationError):
        arena["counts"]
