"""Tests for the square-root factorization counter."""

import math

import numpy as np
import pytest

from repro.streams.binary_tree import BinaryTreeCounter
from repro.streams.sqrt_factorization import (
    SqrtFactorizationCounter,
    sqrt_factorization_coefficients,
)


class TestCoefficients:
    def test_first_values(self):
        coeffs = sqrt_factorization_coefficients(5)
        # f_k = binom(2k, k) / 4^k: 1, 1/2, 3/8, 5/16, 35/128.
        assert coeffs[0] == pytest.approx(1.0)
        assert coeffs[1] == pytest.approx(0.5)
        assert coeffs[2] == pytest.approx(3 / 8)
        assert coeffs[3] == pytest.approx(5 / 16)
        assert coeffs[4] == pytest.approx(35 / 128)

    def test_monotone_decreasing(self):
        coeffs = sqrt_factorization_coefficients(50)
        assert (np.diff(coeffs) < 0).all()

    def test_squared_factorization_reconstructs_all_ones(self):
        # A^(1/2) @ A^(1/2) must equal the lower-triangular all-ones matrix.
        size = 16
        coeffs = sqrt_factorization_coefficients(size)
        half = np.zeros((size, size))
        for i in range(size):
            for j in range(i + 1):
                half[i, j] = coeffs[i - j]
        product = half @ half
        expected = np.tril(np.ones((size, size)))
        assert np.allclose(product, expected, atol=1e-10)

    def test_empty_length(self):
        assert sqrt_factorization_coefficients(0).shape == (0,)


class TestSqrtFactorizationCounter:
    def test_noiseless_exact(self):
        counter = SqrtFactorizationCounter(8, math.inf, seed=0)
        stream = [1, 0, 2, 0, 1, 3, 0, 1]
        assert np.allclose(counter.run(stream), np.cumsum(stream))

    def test_error_stddev_nearly_flat_over_time(self):
        counter = SqrtFactorizationCounter(64, 0.5)
        # Unlike the tree's popcount oscillation, the factorization error
        # grows smoothly: adjacent steps differ by a vanishing amount.
        sds = [counter.error_stddev(t) for t in range(1, 65)]
        assert all(b >= a for a, b in zip(sds, sds[1:]))  # monotone
        assert sds[63] / sds[32] < 1.2  # slow growth

    def test_beats_tree_constants_small_horizon(self):
        factorization = SqrtFactorizationCounter(12, 0.5)
        tree = BinaryTreeCounter(12, 0.5)
        # "Constant matters": at the worst-case popcount time the
        # factorization's predicted error is smaller.
        worst_tree = max(tree.error_stddev(t) for t in range(1, 13))
        worst_fact = max(factorization.error_stddev(t) for t in range(1, 13))
        assert worst_fact < worst_tree

    def test_empirical_std_matches_prediction(self):
        stream = [1] * 12
        errors = []
        for seed in range(300):
            counter = SqrtFactorizationCounter(
                12, 0.5, seed=seed, noise_method="vectorized"
            )
            errors.append(counter.run(stream)[-1] - 12)
        predicted = SqrtFactorizationCounter(12, 0.5).error_stddev(12)
        assert abs(np.std(errors) / predicted - 1.0) < 0.25

    def test_noise_is_correlated_across_time(self):
        # Consecutive outputs reuse earlier noise draws: out_1 = xi_1 and
        # out_2 = xi_2 + f_1 xi_1, so corr(out_1, out_2) = 0.5/sqrt(1.25)
        # ~= 0.447.  An independent-noise counter would show ~0.
        firsts, seconds = [], []
        for seed in range(400):
            counter = SqrtFactorizationCounter(4, 0.5, seed=seed)
            outputs = counter.run([0, 0, 0, 0])
            firsts.append(outputs[0])
            seconds.append(outputs[1])
        correlation = np.corrcoef(firsts, seconds)[0, 1]
        assert abs(correlation - 0.447) < 0.15
