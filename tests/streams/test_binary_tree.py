"""Tests for the binary tree counter (paper Algorithm 3)."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, StreamLengthError
from repro.streams.binary_tree import BinaryTreeCounter, _lowest_set_bit


class TestLowestSetBit:
    def test_powers_of_two(self):
        assert _lowest_set_bit(1) == 0
        assert _lowest_set_bit(2) == 1
        assert _lowest_set_bit(8) == 3

    def test_odd_numbers(self):
        for t in (1, 3, 5, 7, 9, 11):
            assert _lowest_set_bit(t) == 0

    def test_mixed(self):
        assert _lowest_set_bit(12) == 2  # 1100b
        assert _lowest_set_bit(6) == 1  # 110b


class TestBinaryTreeCounter:
    def test_noiseless_exact_prefix_sums(self):
        counter = BinaryTreeCounter(16, math.inf, seed=0)
        stream = [3, 0, 1, 2, 5, 0, 0, 1, 4, 2, 2, 0, 1, 1, 0, 7]
        assert np.allclose(counter.run(stream), np.cumsum(stream))

    def test_levels_matches_bit_length(self):
        assert BinaryTreeCounter(12, 1.0).levels == 4
        assert BinaryTreeCounter(16, 1.0).levels == 5
        assert BinaryTreeCounter(1, 1.0).levels == 1

    def test_sigma_sq_calibration(self):
        counter = BinaryTreeCounter(16, 0.5)
        assert float(counter.sigma_sq) == pytest.approx(5 / (2 * 0.5))

    def test_horizon_enforced(self):
        counter = BinaryTreeCounter(3, 1.0, seed=0)
        counter.run([1, 1, 1])
        with pytest.raises(StreamLengthError):
            counter.feed(1)

    def test_negative_element_rejected(self):
        counter = BinaryTreeCounter(4, 1.0, seed=0)
        with pytest.raises(ConfigurationError):
            counter.feed(-1)

    def test_nodes_in_estimate_is_popcount(self):
        counter = BinaryTreeCounter(16, 1.0)
        assert counter.nodes_in_estimate(7) == 3
        assert counter.nodes_in_estimate(8) == 1
        assert counter.nodes_in_estimate(0) == 0

    def test_error_stddev_power_of_two_smaller(self):
        # At t=8 only one node contributes; at t=7 three do.
        counter = BinaryTreeCounter(16, 1.0)
        assert counter.error_stddev(8) < counter.error_stddev(7)

    def test_empirical_error_matches_prediction(self):
        stream = [1] * 12
        errors = []
        for seed in range(400):
            counter = BinaryTreeCounter(12, 1.0, seed=seed, noise_method="vectorized")
            errors.append(counter.run(stream)[-1] - 12)
        predicted = BinaryTreeCounter(12, 1.0).error_stddev(12)
        assert abs(np.std(errors) / predicted - 1.0) < 0.20

    def test_estimates_are_integers(self):
        counter = BinaryTreeCounter(8, 0.5, seed=1)
        outputs = counter.run([1, 0, 2, 1, 0, 0, 3, 1])
        assert all(float(v).is_integer() for v in outputs)

    def test_true_sum_tracked(self):
        counter = BinaryTreeCounter(4, 1.0, seed=0)
        counter.run([2, 3, 0, 1])
        assert counter.true_sum == 6

    def test_accuracy_statement(self):
        counter = BinaryTreeCounter(16, 0.5)
        accuracy = counter.accuracy(beta=0.05)
        assert accuracy.alpha > 0
        assert accuracy.beta == 0.05

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            BinaryTreeCounter(0, 1.0)
        with pytest.raises(ConfigurationError):
            BinaryTreeCounter(4, 0.0)
        with pytest.raises(ConfigurationError):
            BinaryTreeCounter(4, 1.0, noise_method="bogus")
