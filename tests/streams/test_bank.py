"""Tests for the vectorized CounterBank engine.

Pins down the three contracts the refactor relies on:

1. **Bank/scalar equivalence** — seeded noiseless runs are bit-exact
   between ``engine="vectorized"`` and ``engine="scalar"`` for *every*
   registered counter, and the fallback path is bit-exact even with noise
   (same per-row seeds drive the same scalar counters).
2. **Staggered activation** — bank row ``b`` sees exactly the stream
   ``z_b^t`` for ``t = b..T``, nothing earlier.
3. **Heterogeneous-scale sampling** — the new ``sample_columns`` /
   ``sample_array_2d`` APIs honor per-column scales, including exact
   zeros for noiseless columns.
"""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core.budget import allocate_budget
from repro.core.cumulative import CumulativeSynthesizer
from repro.dp.discrete_gaussian import DiscreteGaussianSampler
from repro.dp.discrete_laplace import DiscreteLaplaceSampler
from repro.exceptions import ConfigurationError, StreamLengthError
from repro.streams.bank import (
    BinaryTreeBank,
    CounterBank,
    FallbackBank,
    SimpleBank,
    SqrtFactorizationBank,
)
from repro.streams.registry import (
    available_banks,
    available_counters,
    make_bank,
    make_counter,
)

HORIZON = 17  # deliberately not a power of two


def _increment_table(horizon: int, seed: int, high: int = 25) -> np.ndarray:
    """Lower-triangular (T, T) table; row t-1 holds the round-t vector."""
    rng = np.random.default_rng(seed)
    table = rng.integers(0, high, size=(horizon, horizon))
    return np.tril(table).astype(np.int64)


def _run_scalar_reference(name: str, horizon: int, rho_vec, increments) -> np.ndarray:
    """Drive one scalar counter per threshold, mirroring the scalar engine."""
    counters = [
        make_counter(name, horizon=horizon - b + 1, rho=float(rho_vec[b - 1]), seed=b)
        for b in range(1, horizon + 1)
    ]
    out = np.zeros((horizon, horizon), dtype=np.float64)
    for t in range(1, horizon + 1):
        for b in range(1, t + 1):
            out[t - 1, b - 1] = counters[b - 1].feed(int(increments[t - 1, b - 1]))
    return out


class TestNoiselessEquivalence:
    @pytest.mark.parametrize("name", sorted(available_counters()))
    def test_bank_matches_scalar_counters_bitwise(self, name):
        rho_vec = np.full(HORIZON, math.inf)
        increments = _increment_table(HORIZON, seed=1)
        bank = make_bank(name, horizon=HORIZON, rho_per_threshold=rho_vec, seeds=0)
        banked = bank.run(increments)
        reference = _run_scalar_reference(name, HORIZON, rho_vec, increments)
        assert (banked == reference).all()

    @pytest.mark.parametrize("name", sorted(available_counters()))
    def test_synthesizer_engines_bit_identical(self, name, small_markov_panel):
        releases = []
        for engine in ("vectorized", "scalar"):
            synth = CumulativeSynthesizer(
                horizon=small_markov_panel.horizon,
                rho=math.inf,
                counter=name,
                seed=7,
                engine=engine,
            )
            releases.append(synth.run(small_markov_panel))
        a, b = releases
        assert (a.threshold_table() == b.threshold_table()).all()
        assert (a.synthetic_data().matrix == b.synthetic_data().matrix).all()

    def test_fallback_engine_bit_identical_with_noise(self, small_markov_panel):
        # No native bank for honaker: the fallback wraps the same scalar
        # counters with the same seeds, so even noisy runs are identical.
        releases = []
        for engine in ("vectorized", "scalar"):
            synth = CumulativeSynthesizer(
                horizon=small_markov_panel.horizon,
                rho=0.05,
                counter="honaker",
                seed=11,
                engine=engine,
                noise_method="vectorized",
            )
            releases.append(synth.run(small_markov_panel))
        a, b = releases
        assert (a.threshold_table() == b.threshold_table()).all()


class TestStaggeredActivation:
    def test_row_b_sees_stream_from_round_b(self):
        # Counter b's true sum must equal sum_t z_b^t over t = b..T only.
        increments = _increment_table(HORIZON, seed=2)
        bank = make_bank(
            "binary_tree",
            horizon=HORIZON,
            rho_per_threshold=np.full(HORIZON, math.inf),
            seeds=3,
        )
        for t in range(1, HORIZON + 1):
            bank.feed(increments[t - 1, :t])
            expected = increments[: t, :].sum(axis=0)[:t]
            assert (bank.true_sums[:t] == expected).all()
            assert (bank.true_sums[t:] == 0).all()
            assert bank.active == t

    def test_fallback_rows_have_staggered_local_clocks(self):
        increments = _increment_table(HORIZON, seed=3)
        bank = FallbackBank(
            HORIZON, np.full(HORIZON, math.inf), seeds=4, counter="binary_tree"
        )
        bank.run(increments)
        for b, counter in enumerate(bank.counters, start=1):
            assert counter.horizon == HORIZON - b + 1
            assert counter.t == HORIZON - b + 1  # activated at round b

    def test_row_horizons(self):
        bank = SimpleBank(5, np.full(5, math.inf), seeds=0)
        assert (bank.row_horizons() == np.array([5, 4, 3, 2, 1])).all()


class TestBankValidation:
    def test_bad_shapes_rejected(self):
        bank = BinaryTreeBank(4, np.full(4, math.inf), seeds=0)
        with pytest.raises(ConfigurationError):
            bank.feed(np.array([1, 2]))  # round 1 expects length 1
        bank.feed([1])
        with pytest.raises(ConfigurationError):
            bank.feed([-1, 0])

    def test_horizon_exhaustion(self):
        bank = SimpleBank(2, np.full(2, math.inf), seeds=0)
        bank.feed([1])
        bank.feed([1, 2])
        with pytest.raises(StreamLengthError):
            bank.feed([1, 2])

    def test_rho_vector_validated(self):
        with pytest.raises(ConfigurationError):
            BinaryTreeBank(4, np.full(3, 1.0))
        with pytest.raises(ConfigurationError):
            BinaryTreeBank(4, np.array([1.0, 0.0, 1.0, 1.0]))

    def test_seed_sequence_length_validated(self):
        with pytest.raises(ConfigurationError):
            SimpleBank(4, np.full(4, 1.0), seeds=[1, 2])

    def test_engine_name_validated(self):
        with pytest.raises(ConfigurationError):
            CumulativeSynthesizer(horizon=4, rho=1.0, engine="bogus")


class TestBankNoise:
    @pytest.mark.parametrize("name", sorted(available_banks()))
    @pytest.mark.parametrize("noise_method", ["exact", "vectorized"])
    def test_native_banks_run_noisy(self, name, noise_method):
        horizon = 9
        rho_vec = allocate_budget(horizon, 0.5, "corollary_b1")
        bank = make_bank(
            name,
            horizon=horizon,
            rho_per_threshold=rho_vec,
            seeds=5,
            noise_method=noise_method,
        )
        estimates = bank.run(_increment_table(horizon, seed=4))
        assert np.isfinite(estimates).all()
        # Noisy estimates track the truth to within a loose multiple of
        # the per-row analytic scale (sanity, not a tail bound).
        final = estimates[-1]
        truth = bank.true_sums
        for b in range(1, horizon + 1):
            scale = bank.error_stddev(b, horizon - b + 1)
            assert abs(final[b - 1] - truth[b - 1]) <= max(8 * scale, 1e-9)

    def test_error_stddev_matches_scalar_counters(self):
        horizon = 12
        rho_vec = allocate_budget(horizon, 0.3, "corollary_b1")
        for name in sorted(available_banks()):
            bank = make_bank(name, horizon=horizon, rho_per_threshold=rho_vec, seeds=0)
            for b in (1, 3, 7, 12):
                counter = make_counter(
                    name, horizon=horizon - b + 1, rho=float(rho_vec[b - 1]), seed=0
                )
                local_t = horizon - b + 1
                assert bank.error_stddev(b, local_t) == pytest.approx(
                    counter.error_stddev(local_t), rel=1e-9
                )

    def test_mixed_noiseless_rows(self):
        # Explicitly mixed budgets: inf rows stay exact, finite rows jitter.
        horizon = 6
        rho_vec = np.array([math.inf, 1e-4, math.inf, 1e-4, math.inf, 1e-4])
        bank = make_bank(
            "simple", horizon=horizon, rho_per_threshold=rho_vec, seeds=6,
            noise_method="vectorized",
        )
        increments = _increment_table(horizon, seed=5)
        estimates = bank.run(increments)
        final = estimates[-1]
        truth = bank.true_sums
        assert final[0] == truth[0] and final[2] == truth[2] and final[4] == truth[4]


class TestBankRegistry:
    def test_native_banks_registered(self):
        names = available_banks()
        for expected in ("binary_tree", "simple", "sqrt_factorization", "laplace_tree"):
            assert expected in names

    def test_unknown_counter_rejected(self):
        with pytest.raises(ConfigurationError):
            make_bank("bogus", horizon=4, rho_per_threshold=np.full(4, 1.0))

    def test_fallback_for_unbanked_counter(self):
        bank = make_bank("honaker", horizon=4, rho_per_threshold=np.full(4, 1.0))
        assert isinstance(bank, FallbackBank)

    def test_counter_kwargs_route_to_fallback(self):
        bank = make_bank(
            "block",
            horizon=6,
            rho_per_threshold=np.full(6, 1.0),
            counter_kwargs={"block_size": 2},
        )
        assert isinstance(bank, FallbackBank)
        bank.feed([1])
        assert bank.counters[0].block_size == 2

    def test_native_bank_types(self):
        rho_vec = np.full(4, 1.0)
        assert isinstance(
            make_bank("binary_tree", horizon=4, rho_per_threshold=rho_vec),
            BinaryTreeBank,
        )
        assert isinstance(
            make_bank("sqrt_factorization", horizon=4, rho_per_threshold=rho_vec),
            SqrtFactorizationBank,
        )


class TestHeterogeneousSamplers:
    def test_gaussian_columns_zero_variance_is_zero(self):
        sampler = DiscreteGaussianSampler(0, seed=0, method="vectorized")
        draws = sampler.sample_columns([0.0, 4.0, 0.0, 9.0])
        assert draws.shape == (4,)
        assert draws[0] == 0 and draws[2] == 0

    @pytest.mark.parametrize("method", ["exact", "vectorized"])
    def test_gaussian_columns_scale_tracks_sigma(self, method):
        sampler = DiscreteGaussianSampler(0, seed=1, method=method)
        sigma_sqs = [Fraction(1), Fraction(400)] if method == "exact" else [1.0, 400.0]
        n = 400 if method == "exact" else 3000
        draws = sampler.sample_array_2d(sigma_sqs, n)
        assert draws.shape == (n, 2)
        small, big = draws[:, 0].std(), draws[:, 1].std()
        assert small < 3.0  # sigma 1
        assert 12.0 < big < 30.0  # sigma 20

    def test_gaussian_columns_negative_rejected(self):
        sampler = DiscreteGaussianSampler(0, seed=2, method="vectorized")
        with pytest.raises(ValueError):
            sampler.sample_columns([1.0, -1.0])

    def test_laplace_columns_zero_scale_is_zero(self):
        sampler = DiscreteLaplaceSampler(1, seed=3, method="vectorized")
        draws = sampler.sample_columns([0.0, 5.0, 0.0])
        assert draws.shape == (3,)
        assert draws[0] == 0 and draws[2] == 0

    @pytest.mark.parametrize("method", ["exact", "vectorized"])
    def test_laplace_columns_scale_tracks_scale(self, method):
        sampler = DiscreteLaplaceSampler(1, seed=4, method=method)
        scales = [Fraction(1, 2), Fraction(20)] if method == "exact" else [0.5, 20.0]
        n = 300 if method == "exact" else 3000
        draws = sampler.sample_array_2d(scales, n)
        assert draws.shape == (n, 2)
        assert draws[:, 0].std() < draws[:, 1].std()

    def test_reproducible_from_seed(self):
        a = DiscreteGaussianSampler(0, seed=9, method="vectorized").sample_columns(
            [4.0, 100.0, 0.0]
        )
        b = DiscreteGaussianSampler(0, seed=9, method="vectorized").sample_columns(
            [4.0, 100.0, 0.0]
        )
        assert (a == b).all()


class TestEngineResolution:
    def test_env_var_reaches_synthesizer_default(self, monkeypatch):
        from repro.streams.registry import resolve_engine

        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        assert resolve_engine(None) == "scalar"
        synth = CumulativeSynthesizer(horizon=4, rho=1.0, seed=0)
        assert synth.engine == "scalar" and synth.bank is None

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        synth = CumulativeSynthesizer(horizon=4, rho=1.0, seed=0, engine="vectorized")
        assert synth.engine == "vectorized" and synth.bank is not None

    def test_typo_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "sclar")
        with pytest.raises(ConfigurationError):
            CumulativeSynthesizer(horizon=4, rho=1.0, seed=0)

    def test_unset_env_defaults_to_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        synth = CumulativeSynthesizer(horizon=4, rho=1.0, seed=0)
        assert synth.engine == "vectorized"


class TestSynthesizerEngineSurface:
    def test_release_view_is_cached(self):
        synth = CumulativeSynthesizer(horizon=4, rho=1.0, seed=0)
        assert synth.release is synth.release

    def test_bank_property(self):
        vec = CumulativeSynthesizer(horizon=4, rho=1.0, seed=0, engine="vectorized")
        sca = CumulativeSynthesizer(horizon=4, rho=1.0, seed=0, engine="scalar")
        assert isinstance(vec.bank, CounterBank)
        assert sca.bank is None

    def test_ledger_identical_across_engines(self, small_markov_panel):
        charges = []
        for engine in ("vectorized", "scalar"):
            synth = CumulativeSynthesizer(
                horizon=small_markov_panel.horizon,
                rho=0.02,
                seed=1,
                engine=engine,
                noise_method="vectorized",
            )
            synth.run(small_markov_panel)
            charges.append(synth.accountant.charges)
        assert charges[0] == charges[1]

    def test_counter_error_stddev_inactive_is_none(self):
        synth = CumulativeSynthesizer(horizon=6, rho=0.5, seed=2)
        assert synth.counter_error_stddev(3, 1) is None
        synth.observe(np.zeros(10, dtype=np.int64))
        assert synth.counter_error_stddev(1, 1) is not None
        assert synth.counter_error_stddev(2, 1) is None

    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_out_of_range_threshold_ci_degenerate(self, engine):
        # b = 0 and b > T are exact constants; the CI must stay degenerate
        # (historical behavior), not raise.
        from repro.analysis.confidence import cumulative_answer_ci
        from repro.queries.cumulative import HammingAtLeast

        synth = CumulativeSynthesizer(
            horizon=5, rho=0.5, seed=3, engine=engine, noise_method="vectorized"
        )
        for _ in range(3):
            synth.observe(np.ones(20, dtype=np.int64))
        release = synth.release
        lower, upper = cumulative_answer_ci(release, HammingAtLeast(0), 3)
        assert lower == upper == 1.0
        lower, upper = cumulative_answer_ci(release, HammingAtLeast(6), 3)
        assert lower == upper == 0.0


class TestRepAxis:
    """Replicated banks: (R, t) shapes, noiseless equivalence, validation."""

    NATIVE = ("binary_tree", "simple", "sqrt_factorization", "laplace_tree")

    @pytest.mark.parametrize("name", NATIVE)
    def test_feed_shapes_with_rep_axis(self, name):
        bank = make_bank(
            name,
            horizon=6,
            rho_per_threshold=allocate_budget(6, 0.5, "corollary_b1"),
            seeds=1,
            n_reps=4,
        )
        for t in range(1, 7):
            estimates = bank.feed(np.arange(t))
            assert estimates.shape == (4, t)

    @pytest.mark.parametrize("name", NATIVE)
    def test_noiseless_reps_all_match_single_run(self, name):
        increments = _increment_table(8, seed=5)
        rho_vec = np.full(8, math.inf)
        replicated = make_bank(
            name, horizon=8, rho_per_threshold=rho_vec, seeds=2, n_reps=3
        ).run(increments)
        single = make_bank(
            name, horizon=8, rho_per_threshold=rho_vec, seeds=2
        ).run(increments)
        assert replicated.shape == (3, 8, 8)
        assert (replicated == single[None, :, :]).all()

    @pytest.mark.parametrize("name", NATIVE)
    @pytest.mark.parametrize("noise_method", ["exact", "vectorized"])
    def test_noisy_reps_differ(self, name, noise_method):
        increments = _increment_table(6, seed=6)
        bank = make_bank(
            name,
            horizon=6,
            rho_per_threshold=allocate_budget(6, 0.2, "corollary_b1"),
            seeds=3,
            noise_method=noise_method,
            n_reps=3,
        )
        out = bank.run(increments)
        assert not (out[0] == out[1]).all()
        assert not (out[1] == out[2]).all()

    def test_single_rep_shape_unchanged(self):
        bank = make_bank(
            "binary_tree",
            horizon=4,
            rho_per_threshold=np.full(4, math.inf),
            seeds=4,
            n_reps=1,
        )
        assert bank.feed(np.array([2])).shape == (1,)

    def test_fallback_rejects_rep_axis(self):
        with pytest.raises(ConfigurationError):
            make_bank(
                "honaker",
                horizon=4,
                rho_per_threshold=np.full(4, math.inf),
                n_reps=2,
            )
        with pytest.raises(ConfigurationError):
            FallbackBank(4, np.full(4, math.inf), n_reps=2)

    def test_counter_kwargs_reject_rep_axis(self):
        # counter_kwargs force the fallback, which has no rep axis.
        with pytest.raises(ConfigurationError):
            make_bank(
                "block",
                horizon=4,
                rho_per_threshold=np.full(4, math.inf),
                n_reps=2,
                counter_kwargs={"block_size": 2},
            )

    def test_n_reps_validated(self):
        with pytest.raises(ConfigurationError):
            make_bank(
                "binary_tree",
                horizon=4,
                rho_per_threshold=np.full(4, math.inf),
                n_reps=0,
            )

    def test_error_stddev_independent_of_reps(self):
        rho_vec = allocate_budget(8, 0.5, "corollary_b1")
        one = make_bank("binary_tree", horizon=8, rho_per_threshold=rho_vec, seeds=5)
        many = make_bank(
            "binary_tree", horizon=8, rho_per_threshold=rho_vec, seeds=5, n_reps=7
        )
        for b in (1, 4, 8):
            assert one.error_stddev(b, 3) == many.error_stddev(b, 3)


class TestSizeAwareSamplers:
    """sample_columns(..., size=R) — the (R, rows) rep-axis draw."""

    @pytest.mark.parametrize("method", ["exact", "vectorized"])
    def test_gaussian_size_shape_and_zero_columns(self, method):
        sampler = DiscreteGaussianSampler(0, seed=11, method=method)
        draws = sampler.sample_columns([0, 4.0, 25.0], size=6)
        assert draws.shape == (6, 3)
        assert (draws[:, 0] == 0).all()

    @pytest.mark.parametrize("method", ["exact", "vectorized"])
    def test_laplace_size_shape_and_zero_columns(self, method):
        sampler = DiscreteLaplaceSampler(1, seed=12, method=method)
        draws = sampler.sample_columns([0, 2.0, 9.0], size=6)
        assert draws.shape == (6, 3)
        assert (draws[:, 0] == 0).all()

    def test_size_zero_and_negative(self):
        sampler = DiscreteGaussianSampler(0, seed=13, method="vectorized")
        assert sampler.sample_columns([1.0, 2.0], size=0).shape == (0, 2)
        with pytest.raises(ValueError):
            sampler.sample_columns([1.0], size=-1)

    def test_size_none_keeps_legacy_bit_stream(self):
        a = DiscreteGaussianSampler(0, seed=14, method="vectorized")
        b = DiscreteGaussianSampler(0, seed=14, method="vectorized")
        scales = [3.0, 7.0, 11.0]
        assert (a.sample_columns(scales) == b.sample_columns(scales, size=None)).all()

    def test_rows_are_independent(self):
        sampler = DiscreteGaussianSampler(0, seed=15, method="vectorized")
        draws = sampler.sample_columns(np.full(64, 1000.0), size=2)
        assert not (draws[0] == draws[1]).all()
