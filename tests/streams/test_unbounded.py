"""Tests for the unknown-horizon counter."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streams.binary_tree import BinaryTreeCounter
from repro.streams.unbounded import UnknownHorizonCounter


class TestUnknownHorizonCounter:
    def test_noiseless_exact_arbitrary_length(self):
        counter = UnknownHorizonCounter(math.inf, seed=0)
        stream = list(np.random.default_rng(0).integers(0, 5, size=45))
        assert np.allclose(counter.run(stream), np.cumsum(stream))

    def test_never_exhausts(self):
        counter = UnknownHorizonCounter(0.5, seed=1, noise_method="vectorized")
        for _ in range(200):  # far beyond any single segment
            counter.feed(1)
        assert counter.t == 200

    def test_segment_structure(self):
        counter = UnknownHorizonCounter(0.5, seed=2, noise_method="vectorized")
        # Segments have lengths 1, 2, 4, 8, ...: after 7 elements the
        # counter is inside its third segment; after 8 it opened the fourth.
        for _ in range(7):
            counter.feed(0)
        assert counter._segment_index == 2
        counter.feed(0)
        assert counter._segment_index == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UnknownHorizonCounter(0.0)
        counter = UnknownHorizonCounter(1.0, seed=3)
        with pytest.raises(ConfigurationError):
            counter.feed(-1)

    def test_unbiased(self):
        stream = [1] * 20
        finals = []
        for seed in range(200):
            counter = UnknownHorizonCounter(0.5, seed=seed, noise_method="vectorized")
            finals.append(counter.run(stream)[-1])
        standard_error = np.std(finals) / math.sqrt(len(finals))
        assert abs(np.mean(finals) - 20) < 5 * standard_error + 1e-9

    def test_empirical_error_matches_prediction(self):
        stream = [1] * 30
        errors = []
        for seed in range(300):
            counter = UnknownHorizonCounter(0.5, seed=seed, noise_method="vectorized")
            errors.append(counter.run(stream)[-1] - 30)
        predicted = UnknownHorizonCounter(0.5).error_stddev(30)
        assert abs(np.std(errors) / predicted - 1.0) < 0.30

    def test_price_of_unknown_horizon(self):
        # Worst case over the horizon, the unbounded counter costs more
        # than a known-horizon tree at the same budget (it cannot exploit
        # T), but stays within a small polylog factor.
        horizon = 63
        unbounded = UnknownHorizonCounter(0.5)
        known = BinaryTreeCounter(horizon, 0.5)
        worst_unbounded = max(unbounded.error_stddev(t) for t in range(1, horizon + 1))
        worst_known = max(known.error_stddev(t) for t in range(1, horizon + 1))
        assert worst_unbounded > worst_known
        assert worst_unbounded < 6 * worst_known

    def test_error_stddev_monotone_overall(self):
        counter = UnknownHorizonCounter(0.5)
        # Not pointwise monotone (tree popcount effects), but growing over
        # segment scales.
        assert counter.error_stddev(64) > counter.error_stddev(4)

    def test_repr(self):
        counter = UnknownHorizonCounter(0.5, seed=4)
        counter.feed(1)
        assert "segments=1" in repr(counter)
