"""CounterBank.extend_rows and CumulativeSynthesizer.extend_horizon.

Row growth appends counter state without perturbing existing rows' RNG
streams, recalibrates nothing already in force, and reports the exact
extra zCDP each widened row costs — the churn-aware accounting for a
panel that outlives its planned horizon.
"""

import math

import numpy as np
import pytest

from repro.core.budget import allocate_budget
from repro.core.cumulative import CumulativeSynthesizer
from repro.data.generators import iid_bernoulli
from repro.exceptions import ConfigurationError, SerializationError
from repro.streams.bank import FallbackBank
from repro.streams.registry import make_bank

NATIVE_EXTENSIBLE = ("binary_tree", "laplace_tree", "simple")


def _increment_stream(total_rounds: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 25, size=t).astype(np.int64)
        for t in range(1, total_rounds + 1)
    ]


class TestExtendRows:
    @pytest.mark.parametrize("counter", NATIVE_EXTENSIBLE)
    def test_noiseless_extension_matches_fresh_bank(self, counter):
        horizon, k = 12, 5
        increments = _increment_stream(horizon + k)
        extended = make_bank(
            counter, horizon=horizon, rho_per_threshold=np.full(horizon, math.inf),
            seeds=1,
        )
        for z in increments[:7]:
            extended.feed(z)
        extra = extended.extend_rows(k, np.full(k, math.inf))
        assert extra.shape == (horizon,) and (extra == 0).all()
        fresh = make_bank(
            counter, horizon=horizon + k,
            rho_per_threshold=np.full(horizon + k, math.inf), seeds=2,
        )
        for z in increments[:7]:
            fresh.feed(z)
        for z in increments[7:]:
            np.testing.assert_allclose(extended.feed(z), fresh.feed(z))

    @pytest.mark.parametrize("counter", NATIVE_EXTENSIBLE)
    def test_extension_consumes_no_randomness_and_keeps_buffers(self, counter):
        horizon = 8
        bank = make_bank(
            counter, horizon=horizon,
            rho_per_threshold=allocate_budget(horizon, 1.0, "uniform"), seeds=3,
        )
        for z in _increment_stream(4, seed=1)[:4]:
            bank.feed(z)
        before = bank.state_dict()
        bank.extend_rows(2, np.full(2, 0.1))
        after = bank.state_dict()
        # Same generator position and untouched running sums prefix.
        assert before["generator"] == after["generator"]
        assert (after["true_sums"][:horizon] == before["true_sums"]).all()
        assert (after["true_sums"][horizon:] == 0).all()

    def test_binary_tree_extension_cost_is_level_ratio(self):
        horizon, k = 12, 4
        rho = allocate_budget(horizon, 1.0, "uniform")
        bank = make_bank("binary_tree", horizon=horizon, rho_per_threshold=rho, seeds=0)
        extra = bank.extend_rows(k, np.full(k, 1.0 / horizon))
        old_levels = [int(n).bit_length() for n in range(horizon, 0, -1)]
        new_levels = [int(n).bit_length() for n in range(horizon + k, k, -1)]
        expected = [
            rho_b * (new - old) / old
            for rho_b, old, new in zip(rho, old_levels, new_levels)
        ]
        np.testing.assert_allclose(extra, expected)

    def test_laplace_tree_extension_cost_is_squared_level_ratio(self):
        horizon, k = 12, 4
        rho = allocate_budget(horizon, 1.0, "uniform")
        bank = make_bank("laplace_tree", horizon=horizon, rho_per_threshold=rho, seeds=0)
        extra = bank.extend_rows(k, np.full(k, 1.0 / horizon))
        old_levels = [int(n).bit_length() for n in range(horizon, 0, -1)]
        new_levels = [int(n).bit_length() for n in range(horizon + k, k, -1)]
        expected = [
            rho_b * ((new / old) ** 2 - 1.0)
            for rho_b, old, new in zip(rho, old_levels, new_levels)
        ]
        np.testing.assert_allclose(extra, expected)

    def test_simple_extension_cost_is_per_release(self):
        horizon, k = 6, 3
        rho = allocate_budget(horizon, 1.0, "uniform")
        bank = make_bank("simple", horizon=horizon, rho_per_threshold=rho, seeds=0)
        extra = bank.extend_rows(k, np.full(k, 1.0 / horizon))
        expected = [k * rho_b / length for rho_b, length in zip(rho, range(horizon, 0, -1))]
        np.testing.assert_allclose(extra, expected)

    def test_sqrt_factorization_and_fallback_refuse(self):
        rho = np.full(6, 0.1)
        sqrt_bank = make_bank("sqrt_factorization", horizon=6, rho_per_threshold=rho, seeds=0)
        with pytest.raises(ConfigurationError, match="does not support extend_rows"):
            sqrt_bank.extend_rows(2, np.full(2, 0.1))
        fallback = FallbackBank(6, rho, seeds=0, counter="honaker")
        with pytest.raises(ConfigurationError, match="does not support extend_rows"):
            fallback.extend_rows(2, np.full(2, 0.1))
        # A refused extension mutates nothing.
        assert sqrt_bank.horizon == 6 and fallback.horizon == 6

    def test_rejects_bad_arguments(self):
        bank = make_bank("binary_tree", horizon=4, rho_per_threshold=np.full(4, 0.1), seeds=0)
        with pytest.raises(ConfigurationError, match="k must be positive"):
            bank.extend_rows(0, np.zeros(0))
        with pytest.raises(ConfigurationError, match="length k=2"):
            bank.extend_rows(2, np.full(3, 0.1))
        with pytest.raises(ConfigurationError, match="positive"):
            bank.extend_rows(2, np.array([0.1, -1.0]))


class TestExtendHorizon:
    def test_mid_stream_extension_streams_past_the_old_horizon(self):
        panel = iid_bernoulli(80, 8, 0.4, seed=1)
        synth = CumulativeSynthesizer(8, 0.8, seed=2, engine="vectorized")
        for index, column in enumerate(panel.columns()):
            synth.observe(column)
            if index == 4:
                total_before = synth.accountant.total_rho
                synth.extend_horizon(3, 0.05)
                assert synth.accountant.total_rho > total_before + 3 * 0.05
        for column in iid_bernoulli(80, 3, 0.4, seed=9).columns():
            synth.observe(column)
        assert synth.t == 11 == synth.horizon
        assert synth.check_invariants()
        # The full budget (base + new rows + surcharges) is exactly spent.
        assert synth.accountant.spent == pytest.approx(synth.accountant.total_rho)
        labels = [label for label, _ in synth.accountant.charges]
        assert any("horizon extension surcharge" in label for label in labels)
        assert any("budget extended" in label for label in labels)

    def test_noiseless_extension_matches_wide_noiseless_run(self):
        panel = iid_bernoulli(40, 9, 0.3, seed=5)
        extended = CumulativeSynthesizer(6, math.inf, seed=0, engine="vectorized")
        for index, column in enumerate(panel.columns()):
            if index == 6:
                extended.extend_horizon(3, math.inf)
            extended.observe(column)
        wide = CumulativeSynthesizer(9, math.inf, seed=0, engine="vectorized")
        wide_release = wide.run(panel)
        assert (
            extended.release.threshold_table() == wide_release.threshold_table()
        ).all()

    def test_scalar_engine_refuses(self):
        synth = CumulativeSynthesizer(6, 0.5, seed=0, engine="scalar")
        with pytest.raises(ConfigurationError, match="vectorized"):
            synth.extend_horizon(2, 0.05)

    def test_noise_mode_mismatch_refused(self):
        noisy = CumulativeSynthesizer(6, 0.5, seed=0, engine="vectorized")
        with pytest.raises(ConfigurationError, match="finite rho_new"):
            noisy.extend_horizon(2, math.inf)
        oracle = CumulativeSynthesizer(6, math.inf, seed=0, engine="vectorized")
        with pytest.raises(ConfigurationError, match="math.inf"):
            oracle.extend_horizon(2, 0.05)

    def test_checkpoint_after_extension_fails_closed(self):
        synth = CumulativeSynthesizer(6, 0.5, seed=0, engine="vectorized")
        synth.observe(np.ones(10, dtype=np.int64))
        synth.extend_horizon(2, 0.05)
        with pytest.raises(SerializationError, match="extend_horizon"):
            synth.state_dict()
