"""Tests for the block counter, naive counter, and monotone wrapper."""

import math

import numpy as np
import pytest

from repro.exceptions import StreamLengthError
from repro.streams.binary_tree import BinaryTreeCounter
from repro.streams.block import BlockCounter
from repro.streams.monotone import MonotoneCounter
from repro.streams.simple import SimpleCounter


class TestBlockCounter:
    def test_default_block_size_is_sqrt(self):
        assert BlockCounter(16, 1.0).block_size == 4
        assert BlockCounter(12, 1.0).block_size == 4  # ceil(sqrt(12))

    def test_custom_block_size(self):
        assert BlockCounter(12, 1.0, block_size=3).block_size == 3

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockCounter(12, 1.0, block_size=0)

    def test_noiseless_exact(self):
        counter = BlockCounter(10, math.inf, seed=0)
        stream = [1, 2, 0, 1, 1, 0, 0, 3, 1, 1]
        assert np.allclose(counter.run(stream), np.cumsum(stream))

    def test_error_terms_reset_at_block_boundary(self):
        counter = BlockCounter(16, 1.0, block_size=4)
        # Just after a boundary the open block holds 1 singleton.
        assert counter.error_stddev(5) < counter.error_stddev(4)

    def test_sigma_sq_covers_two_measurements(self):
        counter = BlockCounter(16, 0.5)
        assert float(counter.sigma_sq) == pytest.approx(1 / 0.5)


class TestSimpleCounter:
    def test_noiseless_exact(self):
        counter = SimpleCounter(6, math.inf, seed=0)
        assert np.allclose(counter.run([1, 1, 0, 2, 0, 1]), [1, 2, 2, 4, 4, 5])

    def test_sigma_sq_scales_with_horizon(self):
        assert float(SimpleCounter(100, 0.5).sigma_sq) == pytest.approx(100.0)
        assert float(SimpleCounter(10, 0.5).sigma_sq) == pytest.approx(10.0)

    def test_error_flat_over_time(self):
        counter = SimpleCounter(12, 0.5)
        assert counter.error_stddev(1) == counter.error_stddev(12)

    def test_worse_than_tree_for_large_horizon(self):
        simple = SimpleCounter(1024, 0.5)
        tree = BinaryTreeCounter(1024, 0.5)
        assert tree.error_stddev(1023) < simple.error_stddev(1023)


class TestMonotoneCounter:
    def test_outputs_non_decreasing(self):
        inner = BinaryTreeCounter(12, 0.05, seed=3)
        counter = MonotoneCounter(inner)
        outputs = counter.run([1, 0, 2, 1, 1, 0, 3, 1, 0, 2, 1, 1])
        assert (np.diff(outputs) >= 0).all()

    def test_noiseless_passthrough(self):
        inner = BinaryTreeCounter(6, math.inf, seed=0)
        counter = MonotoneCounter(inner)
        assert np.allclose(counter.run([1, 0, 2, 0, 1, 1]), [1, 1, 3, 3, 4, 5])

    def test_error_never_worse_than_inner_lemma_42(self):
        # Run the same noise stream through a plain and a wrapped counter
        # and verify the clamped error is pointwise <= the running max of
        # the raw errors (the single-stream Lemma 4.2 statement).
        stream = [1] * 12
        truth = np.cumsum(stream)
        for seed in range(50):
            raw = BinaryTreeCounter(12, 0.1, seed=seed, noise_method="vectorized").run(
                stream
            )
            clamped = np.maximum.accumulate(raw)
            raw_errors = np.abs(raw - truth)
            clamped_errors = np.abs(clamped - truth)
            assert (clamped_errors <= np.maximum.accumulate(raw_errors) + 1e-9).all()

    def test_horizon_enforced_through_wrapper(self):
        counter = MonotoneCounter(BinaryTreeCounter(2, 1.0, seed=0))
        counter.run([1, 1])
        with pytest.raises(StreamLengthError):
            counter.feed(1)

    def test_error_stddev_delegates(self):
        inner = BinaryTreeCounter(12, 0.5)
        assert MonotoneCounter(inner).error_stddev(7) == inner.error_stddev(7)
