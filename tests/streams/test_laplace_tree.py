"""Tests for the pure-DP Laplace tree counter."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streams.binary_tree import BinaryTreeCounter
from repro.streams.laplace_tree import LaplaceTreeCounter


class TestLaplaceTreeCounter:
    def test_noiseless_exact(self):
        counter = LaplaceTreeCounter(10, math.inf, seed=0)
        stream = [1, 0, 2, 1, 0, 3, 1, 0, 0, 2]
        assert np.allclose(counter.run(stream), np.cumsum(stream))

    def test_epsilon_from_rho_conversion(self):
        counter = LaplaceTreeCounter(16, 0.5)
        assert counter.epsilon == pytest.approx(math.sqrt(1.0))

    def test_from_epsilon_constructor(self):
        counter = LaplaceTreeCounter.from_epsilon(16, 2.0)
        assert counter.epsilon == pytest.approx(2.0)
        assert counter.rho == pytest.approx(2.0)

    def test_from_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            LaplaceTreeCounter.from_epsilon(16, 0.0)

    def test_scale_is_levels_over_epsilon(self):
        counter = LaplaceTreeCounter.from_epsilon(16, 2.0)
        assert float(counter.scale) == pytest.approx(5 / 2.0)  # L=5 for T=16

    def test_estimates_are_integers(self):
        counter = LaplaceTreeCounter(8, 0.5, seed=1)
        outputs = counter.run([1, 0, 2, 1, 0, 0, 3, 1])
        assert all(float(v).is_integer() for v in outputs)

    def test_empirical_std_matches_prediction(self):
        stream = [1] * 12
        errors = []
        for seed in range(300):
            counter = LaplaceTreeCounter(
                12, 0.5, seed=seed, noise_method="vectorized"
            )
            errors.append(counter.run(stream)[-1] - 12)
        predicted = LaplaceTreeCounter(12, 0.5).error_stddev(12)
        assert abs(np.std(errors) / predicted - 1.0) < 0.25

    def test_worse_than_gaussian_tree_at_same_zcdp(self):
        # At the same zCDP level, Laplace noise pays the pure-DP premium.
        laplace = LaplaceTreeCounter(12, 0.05)
        gaussian = BinaryTreeCounter(12, 0.05)
        assert laplace.error_stddev(11) > gaussian.error_stddev(11)

    def test_registered(self):
        from repro.streams.registry import available_counters, make_counter

        assert "laplace_tree" in available_counters()
        counter = make_counter("laplace_tree", horizon=8, rho=0.5, seed=2)
        assert isinstance(counter, LaplaceTreeCounter)

    def test_works_inside_algorithm_2(self, small_markov_panel):
        from repro.core.cumulative import CumulativeSynthesizer

        synth = CumulativeSynthesizer(
            horizon=small_markov_panel.horizon,
            rho=0.05,
            counter="laplace_tree",
            seed=3,
            noise_method="vectorized",
        )
        synth.run(small_markov_panel)
        assert synth.check_invariants()
