"""Algebraic property tests across the query classes.

These pin down identities the release machinery relies on: weight-count
combinatorics, lifting composition, and cross-class consistency between
window and cumulative views of the same data.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.debias import lift_window_weights
from repro.data.generators import iid_bernoulli, two_state_markov
from repro.queries.cumulative import HammingAtLeast
from repro.queries.window import (
    AtLeastMConsecutiveOnes,
    AtLeastMOnes,
    ExactlyMOnes,
    PatternQuery,
)


class TestWeightCombinatorics:
    @given(k=st.integers(1, 6), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_at_least_selects_binomial_many_patterns(self, k, data):
        m = data.draw(st.integers(0, k))
        query = AtLeastMOnes(k, m)
        expected = sum(math.comb(k, j) for j in range(m, k + 1))
        assert query.weight_sum == expected

    @given(k=st.integers(1, 6), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_exactly_selects_binomial(self, k, data):
        m = data.draw(st.integers(0, k))
        assert ExactlyMOnes(k, m).weight_sum == math.comb(k, m)

    @given(k=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_exactly_partitions_at_least(self, k):
        # sum_m Exactly(m) == AtLeast(0) pointwise in weight space.
        total = np.zeros(1 << k)
        for m in range(k + 1):
            total += ExactlyMOnes(k, m).weights
        assert (total == AtLeastMOnes(k, 0).weights).all()

    @given(k=st.integers(2, 6), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_consecutive_implies_at_least(self, k, data):
        # A run of m ones implies at least m ones: weights dominated.
        m = data.draw(st.integers(0, k))
        consecutive = AtLeastMConsecutiveOnes(k, m).weights
        at_least = AtLeastMOnes(k, m).weights
        assert (consecutive <= at_least).all()

    def test_pattern_queries_partition_unity(self):
        k = 3
        total = np.zeros(1 << k)
        for code in range(1 << k):
            total += PatternQuery(k, code).weights
        assert (total == 1.0).all()


class TestLiftingAlgebra:
    @given(k1=st.integers(1, 3), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_lift_composition(self, k1, data):
        k2 = data.draw(st.integers(k1, 4))
        k3 = data.draw(st.integers(k2, 5))
        weights = data.draw(
            st.lists(
                st.floats(-2, 2, allow_nan=False), min_size=1 << k1, max_size=1 << k1
            )
        )
        weights = np.asarray(weights)
        direct = lift_window_weights(weights, k1, k3)
        composed = lift_window_weights(lift_window_weights(weights, k1, k2), k2, k3)
        assert np.allclose(direct, composed)

    @given(k=st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_lift_preserves_weight_sum_scaling(self, k):
        weights = np.ones(1 << k)
        lifted = lift_window_weights(weights, k, k + 2)
        # Each original bin splits into 4 width-(k+2) bins.
        assert lifted.sum() == pytest.approx(4 * weights.sum())

    def test_lifted_answers_agree_on_data(self):
        panel = iid_bernoulli(400, 8, 0.35, seed=0)
        query = AtLeastMOnes(2, 1)
        t = 6
        direct = query.evaluate(panel, t)
        for to_k in (3, 4):
            lifted = lift_window_weights(query.weights, 2, to_k)
            hist = panel.suffix_histogram(t, to_k)
            assert float(lifted @ hist) / panel.n_individuals == pytest.approx(direct)


class TestCrossClassConsistency:
    def test_window_all_ones_equals_cumulative_at_k(self):
        # At t = k, "all k window ones" == "Hamming weight >= k".
        panel = two_state_markov(500, 6, 0.8, 0.1, seed=1)
        k = 4
        from repro.queries.window import AllOnes

        window_value = AllOnes(k).evaluate(panel, k)
        cumulative_value = HammingAtLeast(k).evaluate(panel, k)
        assert window_value == pytest.approx(cumulative_value)

    def test_at_least_one_complement(self):
        # P(>= 1 one in window) = 1 - P(all-zero pattern).
        panel = iid_bernoulli(600, 7, 0.4, seed=2)
        k, t = 3, 5
        lhs = AtLeastMOnes(k, 1).evaluate(panel, t)
        rhs = 1.0 - PatternQuery(k, 0).evaluate(panel, t)
        assert lhs == pytest.approx(rhs)

    @given(seed=st.integers(0, 50), b=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_hamming_at_least_difference_nonnegative(self, seed, b):
        panel = iid_bernoulli(100, 6, 0.5, seed=seed)
        t = 6
        assert HammingAtLeast(b).evaluate(panel, t) >= HammingAtLeast(b + 1).evaluate(
            panel, t
        )
