"""Tests for fixed time window queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import LongitudinalDataset
from repro.data.generators import iid_bernoulli
from repro.exceptions import ConfigurationError
from repro.queries.window import (
    AllOnes,
    AtLeastMConsecutiveOnes,
    AtLeastMOnes,
    ExactlyMOnes,
    PatternQuery,
    WindowLinearQuery,
    pattern_bits,
)


class TestPatternBits:
    def test_big_endian_decoding(self):
        assert pattern_bits(0b101, 3) == (1, 0, 1)
        assert pattern_bits(0b001, 3) == (0, 0, 1)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            pattern_bits(8, 3)


class TestPatternQuery:
    def test_from_code_and_bits_agree(self):
        by_code = PatternQuery(3, 0b110)
        by_bits = PatternQuery(3, (1, 1, 0))
        assert by_code.pattern_code == by_bits.pattern_code == 6

    def test_one_hot_weights(self):
        query = PatternQuery(2, 0b10)
        assert query.weights.tolist() == [0, 0, 1, 0]

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            PatternQuery(3, (1, 0))
        with pytest.raises(ConfigurationError):
            PatternQuery(2, (1, 2))

    def test_evaluate(self, tiny_panel):
        # Windows at t=3, k=2: codes [1,1,3,0].
        assert PatternQuery(2, 0b01).evaluate(tiny_panel, 3) == pytest.approx(0.5)
        assert PatternQuery(2, 0b11).evaluate(tiny_panel, 3) == pytest.approx(0.25)

    def test_min_time(self):
        query = PatternQuery(3, 0)
        with pytest.raises(ConfigurationError):
            query.evaluate(LongitudinalDataset([[0, 0, 0]]), 2)


class TestNamedQueries:
    def test_at_least_zero_is_always_one(self, tiny_panel):
        assert AtLeastMOnes(2, 0).evaluate(tiny_panel, 3) == 1.0

    def test_at_least_counts(self, tiny_panel):
        # t=5, k=3 windows: rows are (1,1,0),(1,0,0),(1,1,1),(0,0,1).
        assert AtLeastMOnes(3, 1).evaluate(tiny_panel, 5) == pytest.approx(1.0)
        assert AtLeastMOnes(3, 2).evaluate(tiny_panel, 5) == pytest.approx(0.5)
        assert AtLeastMOnes(3, 3).evaluate(tiny_panel, 5) == pytest.approx(0.25)

    def test_consecutive_vs_total(self, tiny_panel):
        # Window (1,0,1) has two ones but no two consecutive.
        panel = LongitudinalDataset([[1, 0, 1]])
        assert AtLeastMOnes(3, 2).evaluate(panel, 3) == 1.0
        assert AtLeastMConsecutiveOnes(3, 2).evaluate(panel, 3) == 0.0

    def test_all_ones_query(self, tiny_panel):
        assert AllOnes(3).evaluate(tiny_panel, 5) == pytest.approx(0.25)

    def test_exactly_m(self, tiny_panel):
        assert ExactlyMOnes(3, 2).evaluate(tiny_panel, 5) == pytest.approx(0.25)

    def test_exactly_partitions_unity(self):
        panel = iid_bernoulli(500, 6, 0.4, seed=0)
        total = sum(ExactlyMOnes(3, m).evaluate(panel, 4) for m in range(4))
        assert total == pytest.approx(1.0)

    def test_at_least_decomposes_into_exactly(self):
        panel = iid_bernoulli(500, 6, 0.4, seed=1)
        lhs = AtLeastMOnes(3, 2).evaluate(panel, 5)
        rhs = ExactlyMOnes(3, 2).evaluate(panel, 5) + ExactlyMOnes(3, 3).evaluate(panel, 5)
        assert lhs == pytest.approx(rhs)

    def test_invalid_m(self):
        with pytest.raises(ConfigurationError):
            AtLeastMOnes(3, 4)
        with pytest.raises(ConfigurationError):
            ExactlyMOnes(3, -1)

    def test_names_are_stable(self):
        assert AtLeastMOnes(3, 1).name == "at_least_1_of_3"
        assert AtLeastMConsecutiveOnes(3, 2).name == "at_least_2_consecutive_of_3"
        assert AllOnes(3).name == "all_3"


class TestWindowLinearQuery:
    def test_weights_validated(self):
        with pytest.raises(ConfigurationError):
            WindowLinearQuery(2, [1.0, 2.0, 3.0])  # wrong length

    def test_from_predicate(self):
        query = WindowLinearQuery.from_predicate(2, lambda bits: bits[0] == 1, "starts1")
        assert query.weights.tolist() == [0, 0, 1, 1]

    def test_evaluate_histogram_consistency(self, markov_panel):
        query = AtLeastMOnes(3, 1)
        hist = markov_panel.suffix_histogram(6, 3)
        direct = query.evaluate(markov_panel, 6)
        via_hist = query.evaluate_histogram(hist, markov_panel.n_individuals)
        assert direct == pytest.approx(via_hist)

    def test_evaluate_histogram_validation(self):
        query = AtLeastMOnes(2, 1)
        with pytest.raises(ConfigurationError):
            query.evaluate_histogram(np.zeros(3), 10)
        with pytest.raises(ConfigurationError):
            query.evaluate_histogram(np.zeros(4), 0)

    def test_weight_sum_and_l2(self):
        query = AtLeastMOnes(2, 1)  # weights [0,1,1,1]
        assert query.weight_sum == pytest.approx(3.0)
        assert query.weight_l2 == pytest.approx(np.sqrt(3.0))

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=20, deadline=None)
    def test_indicator_queries_bounded(self, k, data):
        m = data.draw(st.integers(0, k))
        panel = iid_bernoulli(50, k + 2, 0.5, seed=data.draw(st.integers(0, 100)))
        value = AtLeastMOnes(k, m).evaluate(panel, k + 1)
        assert 0.0 <= value <= 1.0
