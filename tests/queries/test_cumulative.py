"""Tests for cumulative time queries."""

import pytest

from repro.data.generators import iid_bernoulli
from repro.exceptions import ConfigurationError
from repro.queries.cumulative import (
    HammingAtLeast,
    HammingExactly,
    cumulative_as_window_weights,
)
from repro.queries.window import WindowLinearQuery


class TestHammingAtLeast:
    def test_b_zero_always_one(self, tiny_panel):
        assert HammingAtLeast(0).evaluate(tiny_panel, 3) == 1.0

    def test_known_values(self, tiny_panel):
        # Weights through t=5: [3, 1, 5, 1].
        assert HammingAtLeast(1).evaluate(tiny_panel, 5) == 1.0
        assert HammingAtLeast(2).evaluate(tiny_panel, 5) == pytest.approx(0.5)
        assert HammingAtLeast(4).evaluate(tiny_panel, 5) == pytest.approx(0.25)

    def test_monotone_in_b(self, markov_panel):
        values = [HammingAtLeast(b).evaluate(markov_panel, 10) for b in range(11)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_monotone_in_t(self, markov_panel):
        query = HammingAtLeast(2)
        values = [query.evaluate(markov_panel, t) for t in range(1, 13)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_impossible_threshold_zero(self, tiny_panel):
        assert HammingAtLeast(4).evaluate(tiny_panel, 3) == 0.0

    def test_negative_b_rejected(self):
        with pytest.raises(ConfigurationError):
            HammingAtLeast(-1)


class TestHammingExactly:
    def test_partitions_unity(self, markov_panel):
        t = 8
        total = sum(HammingExactly(b).evaluate(markov_panel, t) for b in range(t + 1))
        assert total == pytest.approx(1.0)

    def test_difference_identity(self, markov_panel):
        t = 9
        for b in range(5):
            expected = HammingAtLeast(b).evaluate(markov_panel, t) - HammingAtLeast(
                b + 1
            ).evaluate(markov_panel, t)
            assert HammingExactly(b).evaluate(markov_panel, t) == pytest.approx(expected)

    def test_negative_b_rejected(self):
        with pytest.raises(ConfigurationError):
            HammingExactly(-2)


class TestReductionToWindowQueries:
    def test_weights_shape(self):
        weights = cumulative_as_window_weights(4, 2)
        assert weights.shape == (16,)

    def test_weights_select_heavy_patterns(self):
        weights = cumulative_as_window_weights(3, 2)
        # Patterns with >= 2 ones: 011, 101, 110, 111 -> codes 3, 5, 6, 7.
        assert weights.tolist() == [0, 0, 0, 1, 0, 1, 1, 1]

    def test_reduction_agrees_with_direct_evaluation(self):
        # Section 2.1: with k = T the cumulative query is a window query.
        panel = iid_bernoulli(300, 6, 0.45, seed=2)
        horizon = panel.horizon
        for b in (1, 3, 5):
            window_query = WindowLinearQuery(
                horizon, cumulative_as_window_weights(horizon, b), name=f"c_{b}"
            )
            direct = HammingAtLeast(b).evaluate(panel, horizon)
            via_window = window_query.evaluate(panel, horizon)
            assert direct == pytest.approx(via_window)

    def test_b_zero_selects_everything(self):
        weights = cumulative_as_window_weights(3, 0)
        assert (weights == 1.0).all()

    def test_guards(self):
        with pytest.raises(ConfigurationError):
            cumulative_as_window_weights(0, 1)
        with pytest.raises(ConfigurationError):
            cumulative_as_window_weights(25, 1)
        with pytest.raises(ConfigurationError):
            cumulative_as_window_weights(4, -1)


class TestWorkloads:
    def test_quarterly_workload_composition(self):
        from repro.queries.workloads import quarterly_poverty_workload

        workload = quarterly_poverty_workload(3)
        names = [query.name for query in workload]
        assert names == [
            "at_least_1_of_3",
            "at_least_2_of_3",
            "at_least_2_consecutive_of_3",
            "all_3",
        ]

    def test_quarterly_workload_ordering(self, markov_panel):
        from repro.queries.workloads import quarterly_poverty_workload

        workload = quarterly_poverty_workload(3)
        values = [query.evaluate(markov_panel, 6) for query in workload]
        # at-least-1 >= at-least-2 >= at-least-2-consecutive >= all-3.
        assert values[0] >= values[1] >= values[2] >= values[3]

    def test_quarter_ends(self):
        from repro.queries.workloads import quarter_ends

        assert quarter_ends(12, 3) == [3, 6, 9, 12]
        assert quarter_ends(8, 3) == [3, 6]

    def test_quarter_ends_guard(self):
        from repro.queries.workloads import quarter_ends

        with pytest.raises(ConfigurationError):
            quarter_ends(2, 3)

    def test_cumulative_series_factory(self):
        from repro.queries.workloads import cumulative_threshold_series

        assert cumulative_threshold_series(4).b == 4

    def test_workload_k_guard(self):
        from repro.queries.workloads import quarterly_poverty_workload

        with pytest.raises(ConfigurationError):
            quarterly_poverty_workload(1)
