"""Query planner: compilation, workload round-trips, and answer caching.

The contracts the batched read path stands on:

* ``compile_cumulative`` maps Hamming-threshold queries onto threshold
  table columns exactly (including the virtual zero column for
  ``b > horizon``);
* ``encode_workload``/``decode_workload`` round-trip a mixed workload
  bit-identically, which is what lets the process executor ship a
  compiled workload through shared memory;
* ``AnswerCache`` serves a grid back only at the version it was stored
  under — every ``observe()``, ``load_state()``, and
  ``extend_horizon()`` bumps the release version, so churny services
  can never serve stale answers.
"""

import math

import numpy as np
import pytest

from repro.core import CumulativeSynthesizer, FixedWindowSynthesizer
from repro.exceptions import ConfigurationError
from repro.queries import AtLeastMOnes, HammingAtLeast, HammingExactly
from repro.queries.base import WindowQuery
from repro.queries.categorical import CategoricalWindowQuery
from repro.queries.plan import (
    AnswerCache,
    compile_cumulative,
    decode_workload,
    encode_workload,
    query_signature,
    release_answer_grid,
    scalar_answer_grid,
    workload_key,
)

HORIZON = 6
N = 40


def _column(t: int) -> np.ndarray:
    return (np.arange(N) + t) % 2


def _driven_cumulative(rho=math.inf):
    synth = CumulativeSynthesizer(HORIZON, rho, seed=0)
    for t in range(1, HORIZON + 1):
        synth.observe(_column(t))
    return synth


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------


class TestCompileCumulative:
    def test_column_indices_reproduce_threshold_differences(self):
        synth = _driven_cumulative()
        release = synth.release
        queries = [HammingAtLeast(1), HammingAtLeast(4), HammingExactly(2)]
        lower, upper = compile_cumulative(queries, HORIZON)
        augmented = np.concatenate(
            [release.threshold_table(), np.zeros((HORIZON + 1, 1), dtype=np.int64)],
            axis=1,
        )
        for t in range(1, HORIZON + 1):
            counts = augmented[t, lower] - augmented[t, upper]
            for qi, query in enumerate(queries):
                assert counts[qi] / N == release.answer(query, t)

    def test_b_above_horizon_maps_to_the_virtual_zero_column(self):
        lower, upper = compile_cumulative(
            [HammingAtLeast(HORIZON + 3), HammingExactly(HORIZON)], HORIZON
        )
        zero = HORIZON + 1
        assert lower[0] == zero and upper[0] == zero
        assert lower[1] == HORIZON and upper[1] == zero

    def test_non_hamming_queries_are_rejected(self):
        with pytest.raises(ConfigurationError, match="cumulative planner"):
            compile_cumulative([AtLeastMOnes(3, 1)], HORIZON)


# ----------------------------------------------------------------------
# Workload round-trips
# ----------------------------------------------------------------------


class TestWorkloadRoundTrip:
    def test_mixed_workload_round_trips_bit_identically(self):
        workload = [
            HammingAtLeast(2),
            HammingExactly(1),
            AtLeastMOnes(3, 2),
            WindowQuery(2, np.array([0.25, -1.5, 3.0, 0.0]), "custom"),
            CategoricalWindowQuery(
                1, np.array([0.0, 1.0, 0.5]), 3, name="cat-probe"
            ),
        ]
        spec, buffer = encode_workload(workload)
        rebuilt = decode_workload(spec, buffer)
        # Window subclasses flatten to their weight vector (signatures —
        # hence answers — are preserved; the subclass identity is not).
        for original, clone in zip(workload, rebuilt):
            assert query_signature(clone) == query_signature(original)
            assert query_signature(clone) is not None
            if isinstance(original, WindowQuery):
                assert clone.name == original.name
                assert clone.weights.tobytes() == original.weights.tobytes()

    def test_unknown_queries_ride_along_as_opaque_entries(self):
        sentinel = object()
        spec, buffer = encode_workload([sentinel])
        assert buffer.size == 0
        assert decode_workload(spec, buffer)[0] is sentinel


# ----------------------------------------------------------------------
# Signatures and workload keys
# ----------------------------------------------------------------------


class TestWorkloadKey:
    def test_equal_workloads_share_a_key(self):
        queries = [HammingAtLeast(2), HammingExactly(1)]
        clones = [HammingAtLeast(2), HammingExactly(1)]
        assert workload_key(queries, [1, 2]) == workload_key(clones, [1, 2])

    def test_key_separates_times_queries_and_kwargs(self):
        queries = [AtLeastMOnes(3, 1)]
        base = workload_key(queries, [3, 4])
        assert base != workload_key(queries, [3, 5])
        assert base != workload_key([AtLeastMOnes(3, 2)], [3, 4])
        assert base != workload_key(queries, [3, 4], debias=False)

    def test_unknown_query_or_unhashable_kwargs_disable_caching(self):
        assert workload_key([object()], [1]) is None
        assert workload_key([HammingAtLeast(1)], [1], bad=[1, 2]) is None


# ----------------------------------------------------------------------
# AnswerCache
# ----------------------------------------------------------------------


class TestAnswerCache:
    def test_hit_only_at_the_stored_version(self):
        cache = AnswerCache()
        grid = np.array([[1.0, 2.0]])
        cache.put(0, "key", grid)
        assert np.array_equal(cache.get(0, "key"), grid)
        assert cache.get(1, "key") is None

    def test_new_version_evicts_every_stale_entry(self):
        cache = AnswerCache()
        cache.put(0, "a", np.zeros((1, 1)))
        cache.put(0, "b", np.ones((1, 1)))
        assert len(cache) == 2
        cache.put(1, "a", np.zeros((1, 1)))
        assert len(cache) == 1
        assert cache.get(1, "b") is None

    def test_grids_are_copied_both_ways(self):
        cache = AnswerCache()
        grid = np.array([[1.0]])
        cache.put(0, "key", grid)
        grid[0, 0] = 99.0
        served = cache.get(0, "key")
        assert served[0, 0] == 1.0
        served[0, 0] = -1.0
        assert cache.get(0, "key")[0, 0] == 1.0


# ----------------------------------------------------------------------
# Grid semantics and dispatch
# ----------------------------------------------------------------------


class TestGridSemantics:
    def test_scalar_grid_nans_below_min_time(self):
        release = _driven_cumulative().release
        grid = scalar_answer_grid(release, [HammingAtLeast(1)], [1, HORIZON])
        assert not np.isnan(grid).any()
        # HammingExactly(0) is answerable from t=1 too; fabricate a floor
        # via a window query against a window release instead.
        synth = FixedWindowSynthesizer(HORIZON, 3, math.inf, seed=0)
        for t in range(1, HORIZON + 1):
            synth.observe(_column(t))
        wide = AtLeastMOnes(5, 1)  # min_time 5
        grid = scalar_answer_grid(synth.release, [wide], [3, 4, 5, 6])
        assert np.isnan(grid[0, :2]).all() and not np.isnan(grid[0, 2:]).any()

    def test_release_answer_grid_matches_batch_and_scalar(self):
        release = _driven_cumulative().release
        queries = [HammingAtLeast(1), HammingExactly(2)]
        times = list(range(1, HORIZON + 1))
        via_dispatch = release_answer_grid(release, queries, times)
        via_batch = release.answer_batch(queries, times)
        via_scalar = scalar_answer_grid(release, queries, times)
        assert np.array_equal(via_dispatch, via_batch, equal_nan=True)
        assert np.array_equal(via_dispatch, via_scalar, equal_nan=True)

    def test_release_answer_grid_falls_back_without_answer_batch(self):
        class Flat:
            def answer(self, query, t):
                return float(t)

        grid = release_answer_grid(Flat(), [HammingAtLeast(1)], [1, 2])
        assert grid.tolist() == [[1.0, 2.0]]


# ----------------------------------------------------------------------
# Cache invalidation under state changes
# ----------------------------------------------------------------------


class TestCacheInvalidation:
    QUERIES = [HammingAtLeast(1), HammingExactly(0)]

    def _grid(self, synth, times):
        return synth.release.answer_batch(self.QUERIES, times)

    def test_observe_invalidates_cached_answers(self):
        synth = CumulativeSynthesizer(HORIZON, math.inf, seed=0)
        synth.observe(np.ones(N, dtype=np.int64))
        before = self._grid(synth, [1])
        assert np.array_equal(self._grid(synth, [1]), before)  # warm hit
        version = synth.release.version
        synth.observe(np.zeros(N, dtype=np.int64))
        assert synth.release.version != version
        after = self._grid(synth, [2])
        reference = scalar_answer_grid(synth.release, self.QUERIES, [2])
        assert np.array_equal(after, reference, equal_nan=True)

    def test_load_state_invalidates_cached_answers(self):
        donor = CumulativeSynthesizer(HORIZON, math.inf, seed=0)
        for t in range(1, 4):
            donor.observe(_column(t))
        snapshot = donor.state_dict()

        clone = CumulativeSynthesizer(HORIZON, math.inf, seed=0)
        version = clone.release.version
        clone.load_state(snapshot)
        assert clone.release.version != version
        restored = self._grid(clone, [1, 2, 3])
        reference = scalar_answer_grid(clone.release, self.QUERIES, [1, 2, 3])
        assert np.array_equal(restored, reference, equal_nan=True)
        # Post-restore rounds invalidate post-restore cached grids too.
        cached = self._grid(clone, [1, 2, 3])
        assert np.array_equal(cached, restored)
        clone.observe(_column(4))
        after = self._grid(clone, [1, 2, 3, 4])
        fresh = scalar_answer_grid(clone.release, self.QUERIES, [1, 2, 3, 4])
        assert np.array_equal(after, fresh, equal_nan=True)

    def test_extend_horizon_invalidates_cached_answers(self):
        synth = _driven_cumulative(rho=0.4)
        beyond = [HammingAtLeast(HORIZON + 1)]
        times = list(range(1, HORIZON + 1))
        before = synth.release.answer_batch(beyond, times)
        assert np.all(before == 0.0)  # structurally zero past the horizon
        version = synth.release.version
        synth.extend_horizon(2, 0.2)
        assert synth.release.version != version
        for t in (HORIZON + 1, HORIZON + 2):
            synth.observe(_column(t))
        after = synth.release.answer_batch(beyond, times + [HORIZON + 1])
        reference = scalar_answer_grid(
            synth.release, beyond, times + [HORIZON + 1]
        )
        assert np.array_equal(after, reference, equal_nan=True)
