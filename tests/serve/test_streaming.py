"""Streaming equivalence: online observe == offline run()."""

import math

import numpy as np
import pytest

from repro import (
    AtLeastMOnes,
    CumulativeSynthesizer,
    FixedWindowSynthesizer,
    HammingAtLeast,
    HammingExactly,
)
from repro.data import iid_bernoulli
from repro.exceptions import ConfigurationError, DataValidationError
from repro.serve import StreamingSynthesizer

HORIZON = 10
N = 300


@pytest.fixture(scope="module")
def panel():
    return iid_bernoulli(N, HORIZON, p=0.3, seed=11)


@pytest.mark.parametrize("engine", ["vectorized", "scalar"])
def test_cumulative_online_matches_offline_noiseless(panel, engine):
    online = StreamingSynthesizer.cumulative(
        horizon=HORIZON, rho=math.inf, seed=4, engine=engine
    )
    for column in panel.columns():
        release = online.observe(column)
        assert release.t == online.t
    offline = CumulativeSynthesizer(HORIZON, math.inf, seed=4, engine=engine)
    offline.run(panel)

    assert np.array_equal(
        online.release.threshold_table(), offline.release.threshold_table()
    )
    assert np.array_equal(
        online.release.synthetic_data().matrix,
        offline.release.synthetic_data().matrix,
    )
    for t in (1, HORIZON // 2, HORIZON):
        for query in (HammingAtLeast(2), HammingExactly(1)):
            assert online.release.answer(query, t) == offline.release.answer(query, t)


def test_fixed_window_online_matches_offline_noiseless(panel):
    online = StreamingSynthesizer.fixed_window(
        horizon=HORIZON, window=3, rho=math.inf, seed=4
    )
    for column in panel.columns():
        online.observe(column)
    offline = FixedWindowSynthesizer(HORIZON, 3, math.inf, seed=4)
    offline.run(panel)

    assert online.release.released_times() == offline.release.released_times()
    for t in online.release.released_times():
        assert np.array_equal(online.release.histogram(t), offline.release.histogram(t))
    assert np.array_equal(
        online.release.synthetic_data().matrix,
        offline.release.synthetic_data().matrix,
    )
    query = AtLeastMOnes(3, 2)
    assert online.release.answer(query, HORIZON) == offline.release.answer(query, HORIZON)


@pytest.mark.parametrize("engine", ["vectorized", "scalar"])
def test_cumulative_online_matches_offline_under_noise(panel, engine):
    """Same seed, same columns => identical noisy releases (run() is the loop)."""
    online = StreamingSynthesizer.cumulative(
        horizon=HORIZON, rho=0.02, seed=4, engine=engine
    )
    for column in panel.columns():
        online.observe(column)
    offline = CumulativeSynthesizer(HORIZON, 0.02, seed=4, engine=engine)
    offline.run(panel)
    assert np.array_equal(
        online.release.threshold_table(), offline.release.threshold_table()
    )
    assert online.synthesizer.accountant.charges == offline.accountant.charges


def test_round_bookkeeping(panel):
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=math.inf, seed=0)
    assert service.t == 0
    assert service.rounds_remaining == HORIZON
    assert service.algorithm == "cumulative"
    columns = list(panel.columns())
    service.observe(columns[0])
    assert service.t == 1
    assert service.rounds_remaining == HORIZON - 1
    assert "cumulative" in repr(service)


def test_exhausted_horizon_rejected(panel):
    service = StreamingSynthesizer.cumulative(horizon=2, rho=math.inf, seed=0)
    columns = list(panel.columns())
    service.observe(columns[0])
    service.observe(columns[1])
    with pytest.raises(DataValidationError):
        service.observe(columns[2])


def test_wrapper_rejects_foreign_objects():
    with pytest.raises(ConfigurationError):
        StreamingSynthesizer(object())


def test_fixed_window_algorithm_tag():
    service = StreamingSynthesizer.fixed_window(horizon=6, window=2, rho=math.inf, seed=0)
    assert service.algorithm == "fixed_window"
    assert isinstance(service.synthesizer, FixedWindowSynthesizer)
