"""Multi-attribute serving parity: executors, churn, checkpoint/restore.

Mirrors ``tests/serve/test_executors.py`` for
``algorithm="multi_attribute"``: the three shard-stepping strategies
must be byte-identical on frame streams — merged answers, ledgers,
loads, and checkpoint bundles — including under churn and across a
mid-stream checkpoint/restore, and a bundle written under one strategy
must restore under any other.
"""

import io
import multiprocessing as mp

import numpy as np
import pytest

from repro.data.generators import churn_two_state_markov
from repro.queries.categorical import CategoryAtLeastM
from repro.serve import ShardedService
from repro.types import AttributeFrame

HORIZON = 8
K = 3

HAS_FORK = "fork" in mp.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="process executor needs the fork start method"
)

PARALLEL = [
    pytest.param("thread"),
    pytest.param("process", marks=needs_fork),
]

KWARGS = dict(
    algorithm="multi_attribute",
    horizon=HORIZON,
    window=3,
    rho=0.3,
    attributes=[
        {"name": "employment", "alphabet": 3},
        {"name": "income", "alphabet": 4},
    ],
)
QUERY = CategoryAtLeastM(3, 3, category=1, m=1)
START = 3


def _frame(column: np.ndarray) -> AttributeFrame:
    """Derive a two-attribute frame from one churn report column."""
    rows = np.arange(column.shape[0])
    return AttributeFrame.from_columns(
        {
            "employment": (column + rows) % 3,
            "income": (column * 2 + rows) % 4,
        }
    )


@pytest.fixture(scope="module")
def frame_events():
    panel = churn_two_state_markov(
        60, HORIZON, 0.85, 0.2, entry_rate=0.25, exit_hazard=0.08, seed=4
    )
    return [
        (_frame(column), entrants, exits) for column, entrants, exits in panel.rounds()
    ]


def _drive(service, events):
    for frame, entrants, exits in events:
        service.observe(frame, entrants=entrants, exits=exits)
    return service


def _observables(service):
    answers = [
        service.answer(QUERY, t, attribute="employment")
        for t in range(START, HORIZON + 1)
    ]
    buffer = io.BytesIO()
    service.checkpoint(buffer)
    return {
        "answers": answers,
        "ledgers": service.shard_ledgers(),
        "spent": service.zcdp_spent(),
        "loads": service.shard_loads().tolist(),
        "bundle": buffer.getvalue(),
    }


@pytest.mark.parametrize("executor", PARALLEL)
def test_parallel_executors_are_byte_identical_to_serial(executor, frame_events):
    serial = _drive(
        ShardedService(K, seed=9, executor="serial", **KWARGS), frame_events
    )
    parallel = _drive(
        ShardedService(K, seed=9, executor=executor, **KWARGS), frame_events
    )
    reference = _observables(serial)
    observed = _observables(parallel)
    parallel.close()
    serial.close()
    assert observed["answers"] == reference["answers"]
    assert observed["ledgers"] == reference["ledgers"]
    assert observed["spent"] == reference["spent"]
    assert observed["loads"] == reference["loads"]
    assert observed["bundle"] == reference["bundle"], (
        "checkpoint bundles differ between serial and " + executor
    )


@pytest.mark.parametrize("executor", PARALLEL)
def test_mid_churn_restore_crosses_executors(executor, frame_events):
    """A frame-stream checkpoint restores under any strategy, mid-churn."""
    serial = _drive(
        ShardedService(K, seed=5, executor="serial", **KWARGS), frame_events
    )

    partial = ShardedService(K, seed=5, executor=executor, **KWARGS)
    _drive(partial, frame_events[:4])  # checkpoint lands mid-churn
    buffer = io.BytesIO()
    partial.checkpoint(buffer)
    partial.close()
    buffer.seek(0)
    resumed = ShardedService.restore(buffer, executor=executor)
    assert resumed.executor == executor
    assert resumed.t == 4
    assert resumed.algorithm == "multi_attribute"
    _drive(resumed, frame_events[4:])

    reference = _observables(serial)
    observed = _observables(resumed)
    resumed.close()
    serial.close()
    assert observed == reference

    # And the parallel-written bundle restores under serial too.
    buffer.seek(0)
    again = ShardedService.restore(buffer, executor="serial")
    assert again.executor == "serial"
    _drive(again, frame_events[4:])
    assert _observables(again) == reference
    again.close()


@needs_fork
def test_async_pipelining_matches_synchronous_ingestion(frame_events):
    sync = _drive(
        ShardedService(K, seed=2, executor="serial", **KWARGS), frame_events
    )
    pipelined = ShardedService(K, seed=2, executor="process", **KWARGS)
    tickets = [
        pipelined.observe_async(frame, entrants=entrants, exits=exits)
        for frame, entrants, exits in frame_events
    ]
    for ticket in tickets:
        ticket.wait()
        assert ticket.done and ticket.completed == K
    reference = _observables(sync)
    observed = _observables(pipelined)
    pipelined.close()
    sync.close()
    assert observed == reference


def test_mapping_and_matrix_inputs_round_like_frames(frame_events):
    """observe() accepts a plain dict of columns and produces the same bytes."""
    by_frame = ShardedService(K, seed=7, executor="serial", **KWARGS)
    by_dict = ShardedService(K, seed=7, executor="serial", **KWARGS)
    for frame, entrants, exits in frame_events:
        by_frame.observe(frame, entrants=entrants, exits=exits)
        by_dict.observe(
            {name: frame.column(name) for name in frame.names},
            entrants=entrants,
            exits=exits,
        )
    assert _observables(by_frame) == _observables(by_dict)
    by_frame.close()
    by_dict.close()


def test_cross_marginals_merge_is_exposed_per_shard(frame_events):
    """Per-shard releases expose cross marginals after frame ingestion."""
    service = _drive(
        ShardedService(K, seed=3, executor="serial", **KWARGS), frame_events
    )
    for shard in service.shards:
        marginal = shard.release.cross_marginal("employment", "income", HORIZON)
        assert marginal.shape == (12,)
        assert marginal.min() >= 0.0
        np.testing.assert_allclose(marginal.sum(), 1.0, rtol=1e-12)
    service.close()
