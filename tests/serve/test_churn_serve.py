"""Churn through the serving layer: streaming passthrough and sharded routing."""

import io
import math

import numpy as np
import pytest

from repro.core.cumulative import CumulativeSynthesizer
from repro.data.generators import churn_two_state_markov
from repro.exceptions import DataValidationError
from repro.queries import HammingAtLeast
from repro.serve import ShardedService, StreamingSynthesizer


@pytest.fixture(scope="module")
def churned_panel():
    return churn_two_state_markov(
        60, 10, 0.85, 0.2, entry_rate=0.25, exit_hazard=0.08, seed=4
    )


class TestStreamingChurn:
    def test_observe_accepts_churn_and_serializes_lifespans(self, churned_panel):
        service = StreamingSynthesizer.cumulative(horizon=10, rho=0.4, seed=11)
        twin = StreamingSynthesizer.cumulative(horizon=10, rho=0.4, seed=11)
        buffer = io.BytesIO()
        for index, (column, entrants, exits) in enumerate(churned_panel.rounds()):
            service.observe(column, entrants=entrants, exits=exits)
            twin.observe(column, entrants=entrants, exits=exits)
            if index == 4:
                service.checkpoint(buffer)
                buffer.seek(0)
                service = StreamingSynthesizer.restore(buffer)
        assert (
            service.release.threshold_table() == twin.release.threshold_table()
        ).all()
        assert service.release.synthetic_data() == twin.release.synthetic_data()
        assert (service.lifespans() == twin.lifespans()).all()
        assert (service.lifespans()[:, 0] == churned_panel.entry_round).all()

    def test_fixed_window_streaming_churn(self, churned_panel):
        service = StreamingSynthesizer.fixed_window(horizon=10, window=3, rho=0.4, seed=2)
        for column, entrants, exits in churned_panel.rounds():
            service.observe(column, entrants=entrants, exits=exits)
        assert service.release.n_original == churned_panel.n_ever


class TestShardedChurn:
    def test_merged_answers_equal_unsharded_noiseless(self, churned_panel):
        single = CumulativeSynthesizer(10, math.inf, seed=0)
        release = single.run(churned_panel)
        service = ShardedService(
            3, algorithm="cumulative", horizon=10, rho=math.inf, seed=5
        )
        for column, entrants, exits in churned_panel.rounds():
            service.observe(column, entrants=entrants, exits=exits)
        query = HammingAtLeast(2)
        for t in range(1, 11):
            assert service.answer(query, t) == pytest.approx(
                release.answer(query, t), abs=1e-12
            )

    def test_entrants_route_to_least_loaded_shard(self):
        service = ShardedService(
            3, algorithm="cumulative", horizon=6, rho=math.inf, seed=0
        )
        # Unbalanced initial split: 4 / 3 / 3.
        service.observe(np.ones(10, dtype=np.int64))
        assert service.shard_loads().tolist() == [4, 3, 3]
        # Two entrants fill the two lightest shards (ties to lowest index).
        service.observe(
            np.ones(12, dtype=np.int64), entrants=2
        )
        assert service.shard_loads().tolist() == [4, 4, 4]
        members = service.shard_members()
        assert sorted(np.concatenate(members).tolist()) == list(range(12))
        # Exits free capacity and the next entrant lands there.
        service.observe(np.ones(10, dtype=np.int64), exits=[0, 1])
        assert service.shard_loads().tolist() == [2, 4, 4]
        service.observe(np.ones(11, dtype=np.int64), entrants=1)
        assert service.shard_loads().tolist() == [3, 4, 4]
        assert service.n == 11 and service.n_ever == 13

    def test_sharded_churn_checkpoint_restore_continues_identically(
        self, churned_panel
    ):
        service = ShardedService(3, algorithm="cumulative", horizon=10, rho=0.3, seed=6)
        events = list(churned_panel.rounds())
        for column, entrants, exits in events[:6]:
            service.observe(column, entrants=entrants, exits=exits)
        buffer = io.BytesIO()
        service.checkpoint(buffer)
        buffer.seek(0)
        restored = ShardedService.restore(buffer)
        assert restored.n == service.n and restored.n_ever == service.n_ever
        assert restored.shard_loads().tolist() == service.shard_loads().tolist()
        query = HammingAtLeast(2)
        for column, entrants, exits in events[6:]:
            service.observe(column, entrants=entrants, exits=exits)
            restored.observe(column, entrants=entrants, exits=exits)
        for t in range(1, 11):
            assert restored.answer(query, t) == service.answer(query, t)

    def test_round_one_entrants_validated(self):
        service = ShardedService(2, algorithm="cumulative", horizon=4, rho=math.inf, seed=0)
        with pytest.raises(DataValidationError, match="round 1 declares"):
            service.observe(np.ones(6, dtype=np.int64), entrants=7)

    def test_sharded_exit_validation(self):
        service = ShardedService(2, algorithm="cumulative", horizon=4, rho=math.inf, seed=0)
        service.observe(np.ones(6, dtype=np.int64))
        with pytest.raises(DataValidationError, match="nobody can exit"):
            ShardedService(
                2, algorithm="cumulative", horizon=4, rho=math.inf, seed=0
            ).observe(np.ones(6, dtype=np.int64), exits=[0])
        service.observe(np.ones(5, dtype=np.int64), exits=[2])
        with pytest.raises(DataValidationError, match="already departed"):
            service.observe(np.ones(4, dtype=np.int64), exits=[2])
        with pytest.raises(DataValidationError, match="must lie in"):
            service.observe(np.ones(4, dtype=np.int64), exits=[99])
        with pytest.raises(DataValidationError, match="expected"):
            service.observe(np.ones(9, dtype=np.int64), entrants=1)
        # All rejections left the clocks untouched.
        assert service.t == 2
