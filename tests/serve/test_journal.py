"""The release journal: durability format for the one-release-per-round rule.

The journal is the DP-critical half of crash recovery: a round is
acknowledged only after its :class:`~repro.serve.journal.JournalRecord`
is on stable storage, and recovery replays the journal instead of
re-noising.  These tests pin the format contract directly:

* append/scan round-trips every field byte-exactly (columns by dtype and
  bytes, non-finite probe answers included);
* a **torn tail** — the expected crash artifact — is dropped *and
  healed on disk*, so later appends cannot bury garbage mid-file;
* corruption anywhere before the tail fails closed with
  :class:`~repro.exceptions.SerializationError` (acknowledged rounds
  would be lost);
* compaction preserves round numbering via the persisted ``base_round``,
  across reopen.
"""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.serve.journal import (
    JOURNAL_MAGIC,
    JournalRecord,
    ReleaseJournal,
)


def _record(round_number, n=7, seed=0, **overrides):
    rng = np.random.default_rng(seed + round_number)
    fields = dict(
        round=round_number,
        column=rng.integers(0, 2, size=n).astype(np.int64),
        entrants=round_number % 3,
        exits=(round_number * 10,) if round_number % 2 else (),
        fingerprints=(f"fp-{round_number}-a", f"fp-{round_number}-b"),
        zcdp_spent=0.01 * round_number,
        answers={"probe": 0.25 * round_number},
    )
    fields.update(overrides)
    return JournalRecord(**fields)


def _fill(journal, n_rounds, **overrides):
    records = [_record(r, **overrides) for r in range(1, n_rounds + 1)]
    for record in records:
        journal.append(record)
    return records


def _assert_records_equal(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.round == want.round
        assert got.column.dtype == want.column.dtype
        assert np.array_equal(got.column, want.column)
        assert got.entrants == want.entrants
        assert got.exits == want.exits
        assert got.fingerprints == want.fingerprints
        assert got.zcdp_spent == want.zcdp_spent
        assert set(got.answers) == set(want.answers)
        for key in want.answers:
            a, b = got.answers[key], want.answers[key]
            assert a == b or (np.isnan(a) and np.isnan(b))


# ---------------------------------------------------------------------------
# Round-trip
# ---------------------------------------------------------------------------


def test_append_scan_roundtrip(tmp_path):
    path = tmp_path / "journal.log"
    with ReleaseJournal(path) as journal:
        written = _fill(journal, 5)
        assert journal.last_round == 5
    with ReleaseJournal(path) as journal:
        _assert_records_equal(journal.records(), written)
        assert journal.last_round == 5
        assert journal.base_round == 0
        assert not journal.torn_tail


def test_nonfinite_answers_roundtrip(tmp_path):
    record = _record(
        1, answers={"nan": float("nan"), "inf": float("inf"), "ninf": float("-inf")}
    )
    with ReleaseJournal(tmp_path / "j.log") as journal:
        journal.append(record)
        _assert_records_equal(journal.records(), [record])


def test_column_dtype_preserved(tmp_path):
    record = _record(1, column=np.array([0, 1, 2], dtype=np.uint8))
    with ReleaseJournal(tmp_path / "j.log") as journal:
        journal.append(record)
        (got,) = journal.records()
    assert got.column.dtype == np.uint8
    assert np.array_equal(got.column, [0, 1, 2])


@pytest.mark.parametrize(
    ("column", "encoding"),
    [
        # binary columns bit-pack: 1/64th of the int64 image on disk
        (np.arange(640, dtype=np.int64) % 2, "bits"),
        (np.zeros(640, dtype=bool), "bits"),
        # small category codes travel one byte per entry
        (np.arange(640, dtype=np.int64) % 5, "u1"),
        # anything wider stays raw
        (np.arange(640, dtype=np.int64) * 7 - 3, "raw"),
        (np.linspace(0.0, 1.0, 640), "raw"),
    ],
)
def test_compact_column_encodings_roundtrip_exactly(tmp_path, column, encoding):
    record = _record(1, column=column)
    payload = record.payload()
    if encoding == "bits":
        assert len(payload) < column.size  # far below one byte per entry
    elif encoding == "u1":
        assert len(payload) < 2 * column.size
    else:
        assert len(payload) >= column.nbytes
    with ReleaseJournal(tmp_path / "j.log") as journal:
        journal.append(record)
        (got,) = journal.records()
    assert got.column.dtype == column.dtype
    assert np.array_equal(got.column, column)


def test_appends_must_be_contiguous(tmp_path):
    with ReleaseJournal(tmp_path / "j.log") as journal:
        journal.append(_record(1))
        with pytest.raises(SerializationError, match="contiguous"):
            journal.append(_record(3))
        with pytest.raises(SerializationError, match="contiguous"):
            journal.append(_record(1))


def test_2d_column_rejected(tmp_path):
    with ReleaseJournal(tmp_path / "j.log") as journal:
        with pytest.raises(SerializationError, match="1-D"):
            journal.append(_record(1, column=np.zeros((2, 2), dtype=np.int64)))


# ---------------------------------------------------------------------------
# Torn tails (the expected crash artifact)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cut", [1, 17, 40])
def test_torn_tail_dropped_and_healed(tmp_path, cut):
    path = tmp_path / "journal.log"
    with ReleaseJournal(path) as journal:
        written = _fill(journal, 4)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(size - cut)

    with ReleaseJournal(path) as journal:
        # The torn final frame is round 4's; it was never acknowledged.
        _assert_records_equal(journal.records(), written[:3])
        assert journal.last_round == 3
        # Healed on disk: the torn bytes are gone, appends continue cleanly.
        journal.append(_record(4))
    with ReleaseJournal(path) as journal:
        assert not journal.torn_tail
        assert journal.last_round == 4


def test_mid_journal_corruption_fails_closed(tmp_path):
    path = tmp_path / "journal.log"
    with ReleaseJournal(path) as journal:
        _fill(journal, 4)
    data = bytearray(path.read_bytes())
    # Damage a payload byte well before the final frame.
    data[len(data) // 3] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(SerializationError, match="refusing to recover"):
        ReleaseJournal(path)


def test_bad_magic_with_valid_frames_after_fails_closed(tmp_path):
    path = tmp_path / "journal.log"
    with ReleaseJournal(path) as journal:
        _fill(journal, 3)
    data = bytearray(path.read_bytes())
    second_frame = data.find(JOURNAL_MAGIC, 1)
    data[second_frame] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(SerializationError, match="refusing to recover"):
        ReleaseJournal(path)


def test_not_a_journal_rejected(tmp_path):
    path = tmp_path / "junk.log"
    path.write_bytes(b"this is not a journal at all")
    with pytest.raises(SerializationError, match="not a repro release journal"):
        ReleaseJournal(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.log"
    path.write_bytes(b"")
    with pytest.raises(SerializationError, match="missing header"):
        ReleaseJournal(path)


# ---------------------------------------------------------------------------
# Compaction and round numbering
# ---------------------------------------------------------------------------


def test_compaction_preserves_round_numbering(tmp_path):
    path = tmp_path / "journal.log"
    with ReleaseJournal(path) as journal:
        written = _fill(journal, 6)
        journal.compact(4)
        assert journal.base_round == 4
        assert journal.last_round == 6
        _assert_records_equal(journal.records(), written[4:])
        # Appends stay contiguous with the pre-compaction numbering.
        journal.append(_record(7))
    # base_round survives reopen (it is persisted in the header frame).
    with ReleaseJournal(path) as journal:
        assert journal.base_round == 4
        assert journal.last_round == 7
        with pytest.raises(SerializationError, match="contiguous"):
            journal.append(_record(5))


def test_compact_everything_then_continue(tmp_path):
    path = tmp_path / "journal.log"
    with ReleaseJournal(path) as journal:
        _fill(journal, 3)
        journal.compact(3)
        assert journal.records() == []
        assert journal.last_round == 3
        journal.append(_record(4))
    with ReleaseJournal(path) as journal:
        assert [record.round for record in journal.records()] == [4]


def test_compact_past_last_round_fast_forwards(tmp_path):
    # A checkpoint can outlive a truncated journal; compacting *past* the
    # tail re-bases the journal at the checkpoint round.
    path = tmp_path / "journal.log"
    with ReleaseJournal(path) as journal:
        _fill(journal, 2)
        journal.compact(9)
        assert journal.base_round == 9
        assert journal.last_round == 9
        journal.append(_record(10))
        assert journal.last_round == 10


def test_compaction_is_idempotent(tmp_path):
    with ReleaseJournal(tmp_path / "j.log") as journal:
        _fill(journal, 5)
        journal.compact(2)
        journal.compact(2)
        journal.compact(1)  # never un-compacts
        assert journal.base_round == 2
        assert [record.round for record in journal.records()] == [3, 4, 5]
