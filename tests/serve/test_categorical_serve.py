"""Categorical serving: streaming, checkpointing, and sharding at q > 2.

The categorical synthesizer is a first-class citizen of the serving
stack: :class:`StreamingSynthesizer.categorical` streams one
``{0, ..., q-1}`` column per round, checkpoints round-trip
byte-identically under noise (tampering fails closed), and
:class:`ShardedService` composes per-shard budgets in parallel over
disjoint sub-populations.
"""

import io
import math
import zipfile

import numpy as np
import pytest

from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.data.categorical import employment_status_panel
from repro.exceptions import DataValidationError, SerializationError
from repro.queries.categorical import CategoryAtLeastM
from repro.serve import ShardedService, StreamingSynthesizer

HORIZON, WINDOW, ALPHABET, RHO = 8, 2, 3, 0.1


@pytest.fixture(scope="module")
def panel():
    return employment_status_panel(300, HORIZON, alphabet=ALPHABET, seed=6)


def _service(seed=0, rho=RHO, **kwargs):
    return StreamingSynthesizer.categorical_window(
        HORIZON, WINDOW, ALPHABET, rho, seed=seed, **kwargs
    )


def _compare(a, b):
    assert a.released_times() == b.released_times()
    for t in a.released_times():
        assert (a.histogram(t) == b.histogram(t)).all()
    assert a.synthetic_data() == b.synthetic_data()


@pytest.mark.parametrize("engine", ["vectorized", "scalar"])
def test_online_matches_offline(panel, engine):
    service = _service(seed=1, engine=engine)
    for column in panel.columns():
        service.observe(column)
    offline = CategoricalWindowSynthesizer(
        HORIZON, WINDOW, ALPHABET, RHO, seed=1, engine=engine
    )
    _compare(service.release, offline.run(panel))
    assert service.algorithm == "categorical_window"


@pytest.mark.parametrize("cut", [1, 3, HORIZON - 1])
@pytest.mark.parametrize("engine", ["vectorized", "scalar"])
def test_checkpoint_byte_identity_under_noise(panel, cut, engine):
    columns = list(panel.columns())
    uninterrupted = _service(seed=2, engine=engine)
    for column in columns:
        uninterrupted.observe(column)

    resumed = _service(seed=2, engine=engine)
    for column in columns[:cut]:
        resumed.observe(column)
    buffer = io.BytesIO()
    resumed.checkpoint(buffer)
    buffer.seek(0)
    restored = StreamingSynthesizer.restore(buffer)
    assert restored.t == cut
    assert restored.synthesizer.alphabet == ALPHABET
    assert restored.synthesizer.engine == engine
    for column in columns[cut:]:
        restored.observe(column)
    _compare(uninterrupted.release, restored.release)
    assert (
        uninterrupted.synthesizer.accountant.charges
        == restored.synthesizer.accountant.charges
    )


def test_mid_churn_checkpoint_byte_identity(panel):
    matrix = panel.matrix
    n = matrix.shape[0] - 2  # rows n, n+1 enter at round 2; ids 3, 7 exit at 3
    keep = np.setdiff1d(np.arange(matrix.shape[0]), [3, 7])

    def drive(service, start, stop):
        for t in range(start, stop):
            if t == 0:
                service.observe(matrix[:n, 0])
            elif t == 1:
                service.observe(matrix[:, 1], entrants=2)
            elif t == 2:
                service.observe(matrix[keep, 2], exits=[3, 7])
            else:
                service.observe(matrix[keep, t])

    uninterrupted = _service(seed=3)
    drive(uninterrupted, 0, HORIZON)

    resumed = _service(seed=3)
    drive(resumed, 0, 4)  # checkpoint lands mid-churn
    buffer = io.BytesIO()
    resumed.checkpoint(buffer)
    buffer.seek(0)
    restored = StreamingSynthesizer.restore(buffer)
    drive(restored, 4, HORIZON)
    _compare(uninterrupted.release, restored.release)
    assert (restored.lifespans() == uninterrupted.lifespans()).all()


def test_tampered_categorical_bundle_rejected(panel):
    service = _service(seed=4)
    for column in list(panel.columns())[:3]:
        service.observe(column)
    buffer = io.BytesIO()
    service.checkpoint(buffer)
    raw = bytearray(buffer.getvalue())

    with zipfile.ZipFile(io.BytesIO(bytes(raw))) as bundle:
        names = bundle.namelist()
        members = {name: bundle.read(name) for name in names}
    victim = next(name for name in names if name.startswith("arrays/"))
    corrupted = bytearray(members[victim])
    corrupted[len(corrupted) // 2] ^= 0xFF
    members[victim] = bytes(corrupted)
    tampered = io.BytesIO()
    with zipfile.ZipFile(tampered, "w") as bundle:
        for name in names:
            bundle.writestr(name, members[name])
    tampered.seek(0)
    with pytest.raises(SerializationError):
        StreamingSynthesizer.restore(tampered)


class TestShardedCategorical:
    def test_noiseless_merge_equals_truth(self, panel):
        service = ShardedService(
            3,
            algorithm="categorical_window",
            seed=5,
            horizon=HORIZON,
            window=WINDOW,
            alphabet=ALPHABET,
            rho=math.inf,
        )
        for column in panel.columns():
            service.observe(column)
        query = CategoryAtLeastM(WINDOW, ALPHABET, category=1, m=1)
        for t in (WINDOW, HORIZON):
            assert service.answer(query, t) == pytest.approx(
                query.evaluate(panel, t)
            )

    def test_budget_composes_in_parallel(self, panel):
        service = ShardedService(
            4,
            algorithm="categorical_window",
            seed=6,
            horizon=HORIZON,
            window=WINDOW,
            alphabet=ALPHABET,
            rho=RHO,
        )
        for column in panel.columns():
            service.observe(column)
        # Every shard spends its full per-shard budget; parallel
        # composition makes the service-wide spend the max, not the sum.
        assert service.zcdp_spent() == pytest.approx(RHO)
        for spent, remaining in service.shard_ledgers():
            assert spent == pytest.approx(RHO)
            assert remaining == pytest.approx(0.0, abs=1e-12)

    def test_checkpoint_roundtrip(self, panel):
        columns = list(panel.columns())
        service = ShardedService(
            2,
            algorithm="categorical_window",
            seed=7,
            horizon=HORIZON,
            window=WINDOW,
            alphabet=ALPHABET,
            rho=RHO,
        )
        for column in columns[:4]:
            service.observe(column)
        buffer = io.BytesIO()
        service.checkpoint(buffer)
        buffer.seek(0)
        restored = ShardedService.restore(buffer)
        assert restored.algorithm == "categorical_window"
        for column in columns[4:]:
            service.observe(column)
            restored.observe(column)
        query = CategoryAtLeastM(WINDOW, ALPHABET, category=0, m=WINDOW)
        assert service.answer(query, HORIZON) == restored.answer(query, HORIZON)

    def test_out_of_alphabet_column_rejected_before_any_shard_advances(self, panel):
        service = ShardedService(
            2,
            algorithm="categorical_window",
            seed=8,
            horizon=HORIZON,
            window=WINDOW,
            alphabet=ALPHABET,
            rho=RHO,
        )
        service.observe(panel.column(1))
        bad = panel.column(2).copy()
        bad[0] = ALPHABET
        with pytest.raises(DataValidationError):
            service.observe(bad)
        # All-or-nothing: the rejected round left every shard's clock alone.
        assert service.t == 1
        service.observe(panel.column(2))
        assert service.t == 2

    def test_binary_sharded_validation_message_unchanged(self):
        service = ShardedService(
            2, algorithm="fixed_window", seed=9, horizon=4, window=2, rho=0.5
        )
        with pytest.raises(DataValidationError, match="must be 0 or 1"):
            service.observe(np.array([0, 1, 2, 0]))
