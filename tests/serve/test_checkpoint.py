"""Checkpoint round-trips: mid-stream byte-identity and bundle integrity."""

import io
import json
import math
import zipfile

import numpy as np
import pytest

from repro.data import iid_bernoulli
from repro.exceptions import SerializationError
from repro.rng import as_generator, generator_state, restore_generator_state
from repro.serve import StreamingSynthesizer
from repro.serve.checkpoint import (
    join_arrays,
    read_bundle,
    split_arrays,
    write_bundle,
)
from repro.streams.bank import BinaryTreeBank, SimpleBank
from repro.streams.registry import make_counter

HORIZON = 10
N = 250


@pytest.fixture(scope="module")
def columns():
    return list(iid_bernoulli(N, HORIZON, p=0.35, seed=13).columns())


def _resume_matches_uninterrupted(service_factory, columns, cut, compare):
    """Checkpoint at ``cut``, restore, and compare final artifacts."""
    uninterrupted = service_factory()
    for column in columns[:cut]:
        uninterrupted.observe(column)
    buffer = io.BytesIO()
    uninterrupted.checkpoint(buffer)
    for column in columns[cut:]:
        uninterrupted.observe(column)

    buffer.seek(0)
    resumed = StreamingSynthesizer.restore(buffer)
    assert resumed.t == cut
    for column in columns[cut:]:
        resumed.observe(column)
    compare(uninterrupted, resumed)


def _compare_cumulative(a, b):
    assert np.array_equal(a.release.threshold_table(), b.release.threshold_table())
    assert np.array_equal(
        a.release.synthetic_data().matrix, b.release.synthetic_data().matrix
    )
    if a.synthesizer.accountant is not None:
        assert a.synthesizer.accountant.charges == b.synthesizer.accountant.charges


def _compare_window(a, b):
    assert a.release.released_times() == b.release.released_times()
    for t in a.release.released_times():
        assert np.array_equal(a.release.histogram(t), b.release.histogram(t))
    assert np.array_equal(
        a.release.synthetic_data().matrix, b.release.synthetic_data().matrix
    )
    if a.synthesizer.accountant is not None:
        assert a.synthesizer.accountant.charges == b.synthesizer.accountant.charges


@pytest.mark.parametrize("engine", ["vectorized", "scalar"])
@pytest.mark.parametrize(
    "counter", ["binary_tree", "simple", "sqrt_factorization", "laplace_tree", "honaker"]
)
def test_cumulative_checkpoint_byte_identity_under_noise(columns, engine, counter):
    _resume_matches_uninterrupted(
        lambda: StreamingSynthesizer.cumulative(
            horizon=HORIZON, rho=0.02, seed=3, engine=engine, counter=counter
        ),
        columns,
        cut=HORIZON // 2,
        compare=_compare_cumulative,
    )


@pytest.mark.parametrize("cut", [1, 2, 3, 7, HORIZON])
def test_fixed_window_checkpoint_byte_identity_under_noise(columns, cut):
    """Cuts before, at, and after the first full window — and at the end."""
    _resume_matches_uninterrupted(
        lambda: StreamingSynthesizer.fixed_window(
            horizon=HORIZON, window=3, rho=0.02, seed=5
        ),
        columns,
        cut=cut,
        compare=_compare_window,
    )


def test_checkpoint_at_round_zero(columns):
    _resume_matches_uninterrupted(
        lambda: StreamingSynthesizer.cumulative(horizon=HORIZON, rho=0.02, seed=8),
        columns,
        cut=0,
        compare=_compare_cumulative,
    )


def test_lazy_materialization_survives_checkpoint(columns):
    """Deferred record draws replay identically on the restored side."""
    service = StreamingSynthesizer.cumulative(
        horizon=HORIZON, rho=0.02, seed=3, materialize="lazy"
    )
    for column in columns[:6]:
        service.observe(column)
    buffer = io.BytesIO()
    service.checkpoint(buffer)
    buffer.seek(0)
    resumed = StreamingSynthesizer.restore(buffer)
    # Neither side has materialized yet; both now draw the pending records.
    assert np.array_equal(
        service.release.synthetic_data().matrix,
        resumed.release.synthetic_data().matrix,
    )


def test_restored_noise_stream_is_identical(columns):
    """The *future* noise draws match, not just the released tables."""
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=0.02, seed=21)
    for column in columns[:4]:
        service.observe(column)
    buffer = io.BytesIO()
    service.checkpoint(buffer)
    buffer.seek(0)
    resumed = StreamingSynthesizer.restore(buffer)
    for column in columns[4:]:
        a = service.observe(column).threshold_table()
        b = resumed.observe(column).threshold_table()
        assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Bundle integrity
# ----------------------------------------------------------------------


def _checkpoint_bytes(columns) -> bytes:
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=0.02, seed=3)
    for column in columns[:4]:
        service.observe(column)
    buffer = io.BytesIO()
    service.checkpoint(buffer)
    return buffer.getvalue()


def _unpack(blob: bytes) -> dict[str, bytes]:
    with zipfile.ZipFile(io.BytesIO(blob)) as bundle:
        return {name: bundle.read(name) for name in bundle.namelist()}


def _repack(members: dict[str, bytes]) -> io.BytesIO:
    tampered = io.BytesIO()
    with zipfile.ZipFile(tampered, "w") as bundle:
        for name, data in members.items():
            bundle.writestr(name, data)
    tampered.seek(0)
    return tampered


def test_tampered_arrays_rejected(columns):
    members = _unpack(_checkpoint_bytes(columns))
    victim = next(name for name in members if name.startswith("arrays/"))
    blob = bytearray(members[victim])
    blob[len(blob) // 2] ^= 0xFF
    members[victim] = bytes(blob)
    with pytest.raises(SerializationError, match="array checksum"):
        StreamingSynthesizer.restore(_repack(members))


def test_tampered_manifest_rejected(columns):
    members = _unpack(_checkpoint_bytes(columns))
    manifest = json.loads(members["manifest.json"])
    manifest["state"]["t"] = 2  # rewind the clock without re-signing
    members["manifest.json"] = json.dumps(manifest)
    with pytest.raises(SerializationError, match="state checksum"):
        StreamingSynthesizer.restore(_repack(members))


def test_version_mismatch_rejected(columns):
    members = _unpack(_checkpoint_bytes(columns))
    manifest = json.loads(members["manifest.json"])
    manifest["format_version"] = 99
    members["manifest.json"] = json.dumps(manifest)
    with pytest.raises(SerializationError, match="format version"):
        StreamingSynthesizer.restore(_repack(members))


def test_not_a_zip_rejected(tmp_path):
    path = tmp_path / "junk.ckpt"
    path.write_bytes(b"this is not a checkpoint")
    with pytest.raises(SerializationError, match="cannot read"):
        StreamingSynthesizer.restore(path)


def test_torn_final_bytes_diagnosed_as_truncated(tmp_path, columns):
    """A bundle whose last 64 bytes are damaged lost its zip central
    directory — the torn-write signature — and must be refused with the
    specific truncation diagnosis, not a generic zip error."""
    blob = bytearray(_checkpoint_bytes(columns))
    rng = np.random.default_rng(0)
    for offset in range(len(blob) - 64, len(blob)):
        blob[offset] ^= int(rng.integers(1, 256))
    path = tmp_path / "torn.ckpt"
    path.write_bytes(bytes(blob))
    with pytest.raises(SerializationError, match="truncated"):
        StreamingSynthesizer.restore(path)


def test_truncated_tail_diagnosed_as_truncated(tmp_path, columns):
    blob = _checkpoint_bytes(columns)
    path = tmp_path / "cut.ckpt"
    path.write_bytes(blob[:-64])
    with pytest.raises(SerializationError, match="truncated"):
        StreamingSynthesizer.restore(path)


def test_foreign_zip_rejected(tmp_path):
    path = tmp_path / "foreign.zip"
    with zipfile.ZipFile(path, "w") as bundle:
        bundle.writestr("something.txt", "hello")
    with pytest.raises(SerializationError, match="member missing"):
        StreamingSynthesizer.restore(path)


def test_wrong_kind_rejected(tmp_path, columns):
    path = tmp_path / "stream.ckpt"
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=math.inf, seed=0)
    service.observe(columns[0])
    service.checkpoint(path)
    with pytest.raises(SerializationError, match="expected a 'sharded'"):
        read_bundle(path, kind="sharded")
    config, _ = read_bundle(path, kind="streaming")  # the right kind still loads
    assert config["algorithm"] == "cumulative"


def test_checkpoint_to_disk_roundtrip(tmp_path, columns):
    path = tmp_path / "service.ckpt"
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=0.02, seed=3)
    for column in columns[:3]:
        service.observe(column)
    service.checkpoint(path)
    resumed = StreamingSynthesizer.restore(path)
    for column in columns[3:]:
        service.observe(column)
        resumed.observe(column)
    _compare_cumulative(service, resumed)


# ----------------------------------------------------------------------
# split/join and component-level state validation
# ----------------------------------------------------------------------


def test_split_join_roundtrip():
    state = {
        "a": np.arange(6).reshape(2, 3),
        "b": {"c": np.zeros(2, dtype=np.uint8), "d": [1, 2.5, None, "x", True]},
        "e": 7,
    }
    json_part, arrays = split_arrays(state)
    assert set(arrays) == {"a", "b/c"}
    rebuilt = join_arrays(json_part, arrays)
    assert np.array_equal(rebuilt["a"], state["a"])
    assert np.array_equal(rebuilt["b"]["c"], state["b"]["c"])
    assert rebuilt["b"]["d"] == state["b"]["d"]
    assert rebuilt["e"] == 7


def test_split_rejects_array_in_list():
    with pytest.raises(SerializationError, match="nested inside lists"):
        split_arrays({"bad": [np.zeros(2)]})


def test_split_rejects_non_json_values():
    with pytest.raises(SerializationError, match="not JSON-serializable"):
        split_arrays({"bad": object()})


def test_split_rejects_slash_keys():
    with pytest.raises(SerializationError, match="without '/'"):
        split_arrays({"a/b": 1})


def test_join_rejects_missing_array():
    json_part, _ = split_arrays({"a": np.zeros(2)})
    with pytest.raises(SerializationError, match="missing entry"):
        join_arrays(json_part, {})


def test_noiseless_manifest_is_strict_rfc_json(tmp_path, columns):
    """rho=inf must not leak the non-JSON 'Infinity' literal into manifests."""

    def reject_constant(value):
        raise AssertionError(f"manifest contains non-RFC JSON constant {value!r}")

    path = tmp_path / "noiseless.ckpt"
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=math.inf, seed=0)
    service.observe(columns[0])
    service.checkpoint(path)
    with zipfile.ZipFile(path) as bundle:
        manifest = json.loads(
            bundle.read("manifest.json"), parse_constant=reject_constant
        )
    assert manifest["config"]["rho"] == {"__nonfinite__": "inf"}
    # And the round-trip restores the actual float('inf') configuration.
    resumed = StreamingSynthesizer.restore(path)
    assert math.isinf(resumed.synthesizer.rho)
    for column in columns[1:]:
        service.observe(column)
        resumed.observe(column)
    assert np.array_equal(
        service.release.threshold_table(), resumed.release.threshold_table()
    )


def test_array_member_compression_follows_compress_arrays(tmp_path, columns):
    path = tmp_path / "deflated.ckpt"
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=0.02, seed=3)
    service.observe(columns[0])
    service.checkpoint(path)
    with zipfile.ZipFile(path) as bundle:
        info = {i.filename: i.compress_type for i in bundle.infolist()}
    assert info["manifest.json"] == zipfile.ZIP_DEFLATED
    array_members = [name for name in info if name.startswith("arrays/")]
    assert array_members
    assert all(info[name] == zipfile.ZIP_DEFLATED for name in array_members)

    # Pre-compressed payloads (the sharded service's nested shard blobs)
    # opt out of the useless second DEFLATE pass.
    stored = tmp_path / "stored.ckpt"
    write_bundle(
        stored,
        kind="streaming",
        config={},
        state={"blob": np.frombuffer(b"\x1f\x8b already deflated", dtype=np.uint8)},
        compress_arrays=False,
    )
    with zipfile.ZipFile(stored) as bundle:
        info = {i.filename: i.compress_type for i in bundle.infolist()}
    assert info["arrays/blob.npy"] == zipfile.ZIP_STORED


def test_bundles_are_byte_deterministic(tmp_path, columns):
    """Equal states must produce byte-identical bundles (pinned timestamps)."""

    def bundle_bytes(seed):
        service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=0.02, seed=seed)
        for column in columns[:3]:
            service.observe(column)
        buffer = io.BytesIO()
        service.checkpoint(buffer)
        return buffer.getvalue()

    assert bundle_bytes(7) == bundle_bytes(7)


def test_format_version_2_roundtrip(tmp_path, columns):
    """The legacy monolithic-npz layout stays writable and readable."""
    path = tmp_path / "legacy.ckpt"
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=0.02, seed=3)
    for column in columns[:4]:
        service.observe(column)
    synth = service.synthesizer
    write_bundle(
        path,
        kind="streaming",
        config=synth.config_dict(),
        state=synth.state_dict(),
        format_version=2,
    )
    with zipfile.ZipFile(path) as bundle:
        names = set(bundle.namelist())
        manifest = json.loads(bundle.read("manifest.json"))
    assert names == {"manifest.json", "arrays.npz"}
    assert manifest["format_version"] == 2
    assert "arrays_checksum" in manifest

    resumed = StreamingSynthesizer.restore(path)
    for column in columns[4:]:
        a = service.observe(column).threshold_table()
        b = resumed.observe(column).threshold_table()
        assert np.array_equal(a, b)


def test_unwritable_format_version_rejected(tmp_path):
    with pytest.raises(SerializationError, match="writable versions"):
        write_bundle(
            tmp_path / "bad.ckpt",
            kind="streaming",
            config={},
            state={},
            format_version=1,
        )


def test_write_bundle_accepts_empty_arrays(tmp_path):
    path = tmp_path / "empty.ckpt"
    write_bundle(path, kind="streaming", config={"x": 1}, state={"y": 2})
    config, state = read_bundle(path)
    assert config == {"x": 1} and state == {"y": 2}


def test_write_bundle_handles_reserved_array_keys(tmp_path):
    """A state key named 'file' must not collide with savez's parameter."""
    path = tmp_path / "reserved.ckpt"
    state = {"file": np.arange(3), "args": np.ones(2)}
    write_bundle(path, kind="streaming", config={}, state=state)
    _, rebuilt = read_bundle(path)
    assert np.array_equal(rebuilt["file"], state["file"])
    assert np.array_equal(rebuilt["args"], state["args"])


def test_counter_state_class_mismatch_rejected():
    tree = make_counter("binary_tree", horizon=8, rho=0.1, seed=0)
    simple = make_counter("simple", horizon=8, rho=0.1, seed=0)
    with pytest.raises(SerializationError, match="cannot be loaded"):
        simple.load_state(tree.state_dict())


def test_bank_state_class_mismatch_rejected():
    rho = np.full(4, 0.1)
    tree = BinaryTreeBank(4, rho, seeds=0)
    simple = SimpleBank(4, rho, seeds=0)
    with pytest.raises(SerializationError, match="cannot be loaded"):
        simple.load_state(tree.state_dict())


def test_bank_state_shape_mismatch_rejected():
    rho = np.full(4, 0.1)
    small = BinaryTreeBank(4, rho, seeds=0)
    big = BinaryTreeBank(8, np.full(8, 0.1), seeds=0)
    with pytest.raises(SerializationError):
        big.load_state(small.state_dict())


def test_generator_state_family_mismatch_rejected():
    generator = as_generator(0)
    state = generator_state(generator)
    state["bit_generator"] = "Philox"
    with pytest.raises(SerializationError, match="bit generator"):
        restore_generator_state(generator, state)


def test_fixed_window_inconsistent_snapshot_rejected(columns):
    """Structural invariants are checked at load, not discovered as crashes."""
    from repro import FixedWindowSynthesizer

    source = StreamingSynthesizer.fixed_window(horizon=HORIZON, window=3, rho=0.02, seed=5)
    for column in columns[:4]:
        source.observe(column)
    snapshot = source.synthesizer.state_dict()

    # Clock claims mid-stream but population says never-started.
    broken = dict(snapshot)
    broken["n"] = None
    fresh = FixedWindowSynthesizer.from_config(source.synthesizer.config_dict())
    with pytest.raises(SerializationError, match="inconsistent with clock"):
        fresh.load_state(broken)

    # Window codes missing although the first window has completed.
    broken = {k: v for k, v in snapshot.items() if k != "window_codes"}
    fresh = FixedWindowSynthesizer.from_config(source.synthesizer.config_dict())
    with pytest.raises(SerializationError, match="missing window codes"):
        fresh.load_state(broken)

    # Pre-window column buffer count disagrees with the clock.
    broken = dict(snapshot)
    broken["recent_count"] = 2
    fresh = FixedWindowSynthesizer.from_config(source.synthesizer.config_dict())
    with pytest.raises(SerializationError, match="pre-window columns"):
        fresh.load_state(broken)


def test_load_state_requires_fresh_synthesizer(columns):
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=math.inf, seed=0)
    service.observe(columns[0])
    snapshot = service.synthesizer.state_dict()
    with pytest.raises(SerializationError, match="fresh synthesizer"):
        service.synthesizer.load_state(snapshot)


def test_monotone_counter_state_roundtrip():
    """The wrapper serializes its running max and the wrapped counter."""
    from repro.streams.binary_tree import BinaryTreeCounter
    from repro.streams.monotone import MonotoneCounter

    original = MonotoneCounter(BinaryTreeCounter(8, 0.1, seed=1))
    for z in (3, 0, 2, 1):
        original.feed(z)
    snapshot = original.state_dict()

    restored = MonotoneCounter(BinaryTreeCounter(8, 0.1, seed=99))
    restored.load_state(snapshot)
    for z in (2, 0, 1, 4):
        assert original.feed(z) == restored.feed(z)


def test_sharded_restore_rejects_structurally_invalid_bundles(columns):
    """n_shards < 1 and fitted-but-boundaryless bundles must fail closed."""
    from repro.serve import ShardedService

    buffer = io.BytesIO()
    write_bundle(
        buffer,
        kind="sharded",
        config={"algorithm": "cumulative", "n_shards": 0},
        state={"shards": {}},
    )
    buffer.seek(0)
    with pytest.raises(SerializationError, match="must be >= 1"):
        ShardedService.restore(buffer)

    shard = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=math.inf, seed=0)
    shard.observe(columns[0])
    blob = io.BytesIO()
    shard.checkpoint(blob)
    buffer = io.BytesIO()
    write_bundle(
        buffer,
        kind="sharded",
        config={"algorithm": "cumulative", "n_shards": 1},
        state={
            "shards": {
                "0": {"bundle": np.frombuffer(blob.getvalue(), dtype=np.uint8)}
            }
        },  # fitted shard, but no boundaries entry
    )
    buffer.seek(0)
    with pytest.raises(SerializationError, match="no shard .*boundaries"):
        ShardedService.restore(buffer)


def test_load_state_copies_snapshot_arrays():
    """Advancing a restored bank must never mutate the snapshot in place."""
    rho = np.full(6, 0.1)
    source = BinaryTreeBank(6, rho, seeds=0)
    for t in range(1, 4):
        source.feed(np.ones(t, dtype=np.int64))
    snapshot = source.state_dict()
    reference_sums = snapshot["true_sums"].copy()

    first = BinaryTreeBank(6, rho, seeds=0)
    first.load_state(snapshot)
    first.feed(np.ones(4, dtype=np.int64))  # mutates first's state in place

    second = BinaryTreeBank(6, rho, seeds=0)
    second.load_state(snapshot)  # must still see the original snapshot
    assert np.array_equal(snapshot["true_sums"], reference_sums)
    assert np.array_equal(second.true_sums, reference_sums)


def test_fallback_bank_standalone_restore_is_byte_identical(columns):
    """Future (not-yet-activated) rows restore their seed streams too."""
    from repro.streams.registry import make_bank

    rho = np.full(HORIZON, 0.05)
    source = make_bank("honaker", horizon=HORIZON, rho_per_threshold=rho, seeds=0)
    reference = make_bank("honaker", horizon=HORIZON, rho_per_threshold=rho, seeds=0)
    for t in range(1, 4):
        z = np.arange(t, dtype=np.int64)
        source.feed(z)
        reference.feed(z)
    snapshot = source.state_dict()

    # Restore into a host bank built from a *different* seed: every future
    # round — including rows that activate after the checkpoint — must
    # still match the uninterrupted reference exactly.
    restored = make_bank("honaker", horizon=HORIZON, rho_per_threshold=rho, seeds=42)
    restored.load_state(snapshot)
    for t in range(4, HORIZON + 1):
        z = np.arange(t, dtype=np.int64)
        assert np.array_equal(reference.feed(z), restored.feed(z)), t


def test_checkpoint_write_is_atomic(tmp_path, columns):
    """A failed re-checkpoint must not destroy the previous good bundle."""
    path = tmp_path / "rolling.ckpt"
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=0.02, seed=3)
    service.observe(columns[0])
    service.checkpoint(path)
    good = path.read_bytes()
    with pytest.raises(SerializationError):
        write_bundle(path, kind="streaming", config={}, state={"bad": object()})
    assert path.read_bytes() == good  # old checkpoint survives the failed write
    assert list(tmp_path.iterdir()) == [path]  # no temp-file litter


def test_counter_load_state_rejects_out_of_range_clock():
    counter = make_counter("binary_tree", horizon=4, rho=0.1, seed=0)
    counter.feed(1)
    snapshot = counter.state_dict()
    snapshot["t"] = 9
    fresh = make_counter("binary_tree", horizon=4, rho=0.1, seed=0)
    with pytest.raises(SerializationError, match="outside"):
        fresh.load_state(snapshot)
    # The rejected load left the counter untouched and usable.
    assert fresh.t == 0
    fresh.feed(1)


def test_corrupt_npy_member_raises_serialization_error(columns):
    """Undecodable array members surface as SerializationError, never raw."""
    import hashlib

    members = _unpack(_checkpoint_bytes(columns))
    manifest = json.loads(members["manifest.json"])
    victim = next(name for name in members if name.startswith("arrays/"))
    key = victim[len("arrays/"):-len(".npy")]
    # Corrupt the .npy magic, then re-sign the member's checksum so the
    # hash passes and decoding is what fails.
    blob = bytearray(members[victim])
    blob[0] ^= 0xFF
    members[victim] = bytes(blob)
    manifest["array_checksums"][key] = hashlib.sha256(bytes(blob)).hexdigest()
    members["manifest.json"] = json.dumps(manifest)
    with pytest.raises(SerializationError, match="cannot decode"):
        StreamingSynthesizer.restore(_repack(members))


def test_extra_array_member_rejected(columns):
    """Array members absent from the manifest are refused, not ignored."""
    members = _unpack(_checkpoint_bytes(columns))
    members["arrays/smuggled.npy"] = members[
        next(name for name in members if name.startswith("arrays/"))
    ]
    with pytest.raises(SerializationError, match="unexpected"):
        StreamingSynthesizer.restore(_repack(members))


def test_split_rejects_empty_keys_and_marker_shapes():
    with pytest.raises(SerializationError, match="non-empty"):
        split_arrays({"": {"x": np.zeros(2)}})
    with pytest.raises(SerializationError, match="reserved marker"):
        split_arrays({"leaf": {"__array__": "y"}})
    with pytest.raises(SerializationError, match="reserved marker"):
        split_arrays({"leaf": {"__nonfinite__": "inf"}})


def test_checkpoint_file_mode_respects_umask(tmp_path, columns):
    import os

    path = tmp_path / "mode.ckpt"
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=math.inf, seed=0)
    service.observe(columns[0])
    service.checkpoint(path)
    umask = os.umask(0)
    os.umask(umask)
    assert (path.stat().st_mode & 0o777) == (0o666 & ~umask)
