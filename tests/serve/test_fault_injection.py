"""Chaos suite: every injected fault ends in recovery, degradation, or
a clean refusal — never a silently wrong answer, never a leaked segment.

Each scenario drives a real service through the seeded
:class:`repro.testing.FaultInjector` and asserts the full fault-
tolerance contract:

* killed and hung workers are detected (liveness probe, RPC timeout),
  torn down with kill-escalation, and recovered byte-identically;
* corrupted checkpoints and truncated journals fall back to older
  durable state and replay to the same bytes;
* shared-memory starvation fails the round cleanly and the service
  resumes — byte-identically — once the resource returns;
* a persistently failing shard either fails closed (default) or, with
  ``degraded_ok=True``, is disabled and flagged while survivors serve;
* an autouse audit fails any test that leaves an orphaned
  ``/dev/shm`` segment behind.
"""

import multiprocessing as mp
import os
import warnings

import numpy as np
import pytest

from repro.data.generators import churn_two_state_markov
from repro.exceptions import DegradedServiceWarning, RecoveryError
from repro.queries import HammingAtLeast
from repro.serve import RetryPolicy, ShardedService, SupervisedService
from repro.testing import FaultInjector, starve_shared_memory

HORIZON = 8
K = 3
SEED = 11
QUERY = HammingAtLeast(2)
KWARGS = dict(algorithm="cumulative", horizon=HORIZON, rho=0.3)

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker faults need the fork start method"
)

_SHM_DIR = "/dev/shm"


def _shm_segments() -> set:
    """Names of live multiprocessing shared-memory segments."""
    if not os.path.isdir(_SHM_DIR):
        return set()
    return {name for name in os.listdir(_SHM_DIR) if name.startswith("psm_")}


@pytest.fixture(autouse=True)
def shm_leak_audit():
    """Fail any chaos scenario that orphans a shared-memory segment."""
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, f"chaos scenario leaked shared-memory segments: {leaked}"


@pytest.fixture(scope="module")
def events():
    panel = churn_two_state_markov(
        60, HORIZON, 0.85, 0.2, entry_rate=0.25, exit_hazard=0.08, seed=4
    )
    return list(panel.rounds())


@pytest.fixture(scope="module")
def reference(events):
    """The undisturbed run every chaos scenario must reproduce."""
    service = ShardedService(K, seed=SEED, **KWARGS)
    for column, entrants, exits in events:
        service.observe(column, entrants=entrants, exits=exits)
    expected = {
        "fingerprints": service.state_fingerprints(),
        "spent": service.zcdp_spent(),
        "answers": [service.answer(QUERY, t) for t in range(1, HORIZON + 1)],
    }
    service.close()
    return expected


def _policy(**overrides):
    defaults = dict(
        max_retries=2, backoff_base=0.0, checkpoint_every=3, checkpoint_retain=2
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def _drive(service, events):
    for column, entrants, exits in events:
        service.observe(column, entrants=entrants, exits=exits)


def _assert_matches_reference(service, reference):
    assert service.service.state_fingerprints() == reference["fingerprints"]
    assert service.zcdp_spent() == reference["spent"]
    assert [
        service.answer(QUERY, t) for t in range(1, HORIZON + 1)
    ] == reference["answers"]


# ---------------------------------------------------------------------------
# Worker faults
# ---------------------------------------------------------------------------


@needs_fork
def test_killed_worker_is_recovered_byte_identically(events, reference, tmp_path):
    injector = FaultInjector(seed=1)
    with SupervisedService(
        str(tmp_path / "svc"), n_shards=K, seed=SEED, executor="process",
        policy=_policy(), **KWARGS,
    ) as service:
        _drive(service, events[:3])
        injector.kill_worker(service, injector.pick_shard(K))
        _drive(service, events[3:])
        _assert_matches_reference(service, reference)
        assert any("recovered" in event for event in service.events), service.events


@needs_fork
def test_hung_worker_detected_by_rpc_timeout(events, reference, tmp_path):
    injector = FaultInjector(seed=2)
    with SupervisedService(
        str(tmp_path / "svc"), n_shards=K, seed=SEED, executor="process",
        policy=_policy(rpc_timeout=1.0), **KWARGS,
    ) as service:
        _drive(service, events[:4])
        injector.hang_worker(service, injector.pick_shard(K))
        # The stopped worker is alive (the liveness probe passes) but
        # silent; only the RPC timeout can catch it.  Recovery's
        # kill-escalated teardown disposes of it (SIGKILL fires even on
        # a SIGSTOPped process; SIGTERM would stay pending forever).
        _drive(service, events[4:])
        _assert_matches_reference(service, reference)
        assert any("did not respond" in event for event in service.events), (
            service.events
        )


@needs_fork
def test_teardown_escalates_to_kill_for_hung_workers(events):
    injector = FaultInjector(seed=3)
    service = ShardedService(K, seed=SEED, executor="process", **KWARGS)
    _drive(service, events[:2])
    victim = injector.pick_shard(K)
    injector.hang_worker(service, victim)
    process = service._executor._processes[victim]
    service.close()  # must not hang on the stopped worker
    process.join(timeout=5.0)
    assert not process.is_alive()


# ---------------------------------------------------------------------------
# Storage faults
# ---------------------------------------------------------------------------


@needs_fork
@pytest.mark.parametrize("region", ["tail", "any"])
def test_corrupted_checkpoint_falls_back_to_older_state(
    events, reference, tmp_path, region
):
    injector = FaultInjector(seed=4)
    directory = str(tmp_path / "svc")
    with SupervisedService(
        directory, n_shards=K, seed=SEED, executor="process",
        policy=_policy(), **KWARGS,
    ) as service:
        _drive(service, events)
    checkpoints = sorted(os.listdir(os.path.join(directory, "checkpoints")))
    assert len(checkpoints) >= 2  # rounds 3 and 6 at checkpoint_every=3
    injector.corrupt_bytes(
        os.path.join(directory, "checkpoints", checkpoints[-1]), 64, region=region
    )
    with SupervisedService.attach(
        directory, executor="process", policy=_policy()
    ) as resumed:
        assert resumed.t == HORIZON
        _assert_matches_reference(resumed, reference)
        assert any("unreadable" in event for event in resumed.events), resumed.events


@needs_fork
def test_truncated_journal_drops_only_unacknowledged_rounds(
    events, reference, tmp_path
):
    injector = FaultInjector(seed=5)
    directory = str(tmp_path / "svc")
    with SupervisedService(
        directory, n_shards=K, seed=SEED, executor="process",
        policy=_policy(), **KWARGS,
    ) as service:
        _drive(service, events)
    # Tear the last frame: round 8's ack record is cut short, exactly a
    # crash between the write and the fsync reaching the platter.
    injector.truncate_tail(os.path.join(directory, "journal.log"), 30)
    with SupervisedService.attach(
        directory, executor="process", policy=_policy()
    ) as resumed:
        assert resumed.t == HORIZON - 1  # the torn round was never acked
        # Resubmitting it draws the identical noise a crash-free run
        # would have — the final state matches the reference exactly.
        _drive(resumed, events[HORIZON - 1:])
        _assert_matches_reference(resumed, reference)


def test_all_checkpoints_corrupt_fails_closed(events, tmp_path):
    injector = FaultInjector(seed=6)
    directory = str(tmp_path / "svc")
    with SupervisedService(
        directory, n_shards=K, seed=SEED, executor="serial",
        policy=_policy(), **KWARGS,
    ) as service:
        _drive(service, events)
    checkpoint_dir = os.path.join(directory, "checkpoints")
    for name in os.listdir(checkpoint_dir):
        injector.corrupt_bytes(os.path.join(checkpoint_dir, name), 64)
    # The journal was compacted past round 1, so no full replay exists:
    # the service must refuse rather than re-noise published rounds.
    with pytest.raises(RecoveryError, match="fail closed"):
        SupervisedService.attach(directory, executor="serial", policy=_policy())


# ---------------------------------------------------------------------------
# Resource faults
# ---------------------------------------------------------------------------


@needs_fork
def test_shm_starvation_fails_cleanly_then_resumes(events, reference, tmp_path):
    injector = FaultInjector(seed=7)
    with SupervisedService(
        str(tmp_path / "svc"), n_shards=K, seed=SEED, executor="process",
        policy=_policy(max_retries=1), **KWARGS,
    ) as service:
        column, entrants, exits = events[0]
        with injector.starve_shared_memory():
            with pytest.raises((RecoveryError, OSError)):
                service.observe(column, entrants=entrants, exits=exits)
        assert service.t == 0  # nothing was published during the outage
        _drive(service, events)  # the identical rounds, resubmitted
        _assert_matches_reference(service, reference)


def test_starve_shared_memory_restores_the_real_class():
    from multiprocessing import shared_memory

    original = shared_memory.SharedMemory
    with starve_shared_memory():
        with pytest.raises(OSError):
            shared_memory.SharedMemory(create=True, size=64)
    assert shared_memory.SharedMemory is original


# ---------------------------------------------------------------------------
# Persistent shard failure: fail closed vs graceful degradation
# ---------------------------------------------------------------------------


def _fail_shard_heartbeats(monkeypatch, victim):
    """Report ``victim`` dead on every liveness probe until it is disabled."""
    real = ShardedService.health_report

    def rigged(self):
        report = real(self)
        for entry in report:
            if entry["shard"] == victim and entry["status"] == "ok":
                entry["status"] = "dead"
                entry["reason"] = "injected persistent failure"
        return report

    monkeypatch.setattr(ShardedService, "health_report", rigged)


def test_persistent_shard_failure_fails_closed_by_default(
    events, tmp_path, monkeypatch
):
    with SupervisedService(
        str(tmp_path / "svc"), n_shards=K, seed=SEED, executor="serial",
        policy=_policy(), **KWARGS,
    ) as service:
        _drive(service, events[:2])
        _fail_shard_heartbeats(monkeypatch, victim=1)
        column, entrants, exits = events[2]
        with pytest.raises(RecoveryError, match="degraded_ok"):
            service.observe(column, entrants=entrants, exits=exits)
        assert service.t == 2  # the failed round was never published


def test_persistent_shard_failure_degrades_when_opted_in(
    events, tmp_path, monkeypatch
):
    with SupervisedService(
        str(tmp_path / "svc"), n_shards=K, seed=SEED, executor="serial",
        policy=_policy(), degraded_ok=True, **KWARGS,
    ) as service:
        _drive(service, events[:2])
        spent_before = service.zcdp_spent()
        _fail_shard_heartbeats(monkeypatch, victim=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedServiceWarning)
            _drive(service, events[2:])
        assert service.t == HORIZON  # survivors kept publishing
        assert service.degraded
        statuses = {e["shard"]: e["status"] for e in service.health_report()}
        assert statuses[1] == "disabled"
        assert statuses[0] == statuses[2] == "ok"
        with pytest.warns(DegradedServiceWarning):
            answer = service.answer(QUERY, HORIZON)
        assert np.isfinite(answer)
        assert service.zcdp_spent() >= spent_before  # monotone, never re-charged
        with pytest.raises(RecoveryError):
            service.checkpoint()


def test_worker_faults_require_the_process_executor(events):
    from repro.exceptions import ConfigurationError

    injector = FaultInjector(seed=8)
    service = ShardedService(K, seed=SEED, executor="serial", **KWARGS)
    try:
        with pytest.raises(ConfigurationError, match="process"):
            injector.kill_worker(service, 0)
    finally:
        service.close()


def test_injector_log_records_every_fault(tmp_path):
    injector = FaultInjector(seed=9)
    victim = injector.pick_shard(4)
    path = tmp_path / "blob.bin"
    path.write_bytes(bytes(range(200)))
    injector.corrupt_bytes(path, 16)
    injector.truncate_tail(path, 8)
    with injector.starve_shared_memory():
        pass
    assert len(injector.log) == 4
    assert f"-> {victim}" in injector.log[0]
