"""Supervised crash recovery: kill -9 mid-stream, byte-identical resume.

The fault-tolerance acceptance contract, enforced end to end:

* a supervised service killed without warning mid-stream (``os._exit``
  in a forked child — no ``close``, no flush beyond the journal's own
  fsync) resumes from its state directory and the *complete* run —
  answers, ledgers, spend, checkpoint bundle bytes — is byte-identical
  to an uninterrupted service, under noise and churn, for every
  algorithm and every executor strategy;
* journaled rounds are **replayed, never re-noised**: replay that would
  draw different noise (a tampered seed) is refused with
  :class:`~repro.exceptions.RecoveryError`, and recovered answers equal
  the journaled ones exactly;
* zCDP spend is monotone across crash/recover cycles — no double-spend;
* a poisoned or degraded service behaves identically across the
  serial/thread/process executors.
"""

import io
import json
import multiprocessing as mp
import os
import warnings

import numpy as np
import pytest

from repro.data.generators import churn_two_state_markov
from repro.exceptions import (
    ConsistencyError,
    DegradedServiceWarning,
    NegativeCountError,
    RecoveryError,
)
from repro.queries import AtLeastMOnes, HammingAtLeast
from repro.queries.categorical import CategoryAtLeastM
from repro.serve import RetryPolicy, ShardedService, SupervisedService

HORIZON = 8
K = 3
SEED = 11

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="crash simulation needs the fork start method"
)

#: algorithm -> (service kwargs, probe query, first answerable round)
CONFIGS = {
    "cumulative": (
        dict(algorithm="cumulative", horizon=HORIZON, rho=0.3),
        HammingAtLeast(2),
        1,
    ),
    "fixed_window": (
        dict(algorithm="fixed_window", horizon=HORIZON, window=3, rho=0.3),
        AtLeastMOnes(3, 1),
        3,
    ),
    "categorical_window": (
        dict(
            algorithm="categorical_window",
            horizon=HORIZON,
            window=2,
            alphabet=3,
            rho=0.3,
        ),
        CategoryAtLeastM(2, 3, category=1, m=1),
        2,
    ),
}


@pytest.fixture(scope="module")
def churn_events():
    panel = churn_two_state_markov(
        60, HORIZON, 0.85, 0.2, entry_rate=0.25, exit_hazard=0.08, seed=4
    )
    return list(panel.rounds())


def _events_for(algorithm, churn_events):
    if algorithm != "categorical_window":
        return churn_events
    return [
        ((column + np.arange(column.shape[0])) % 3, entrants, exits)
        for column, entrants, exits in churn_events
    ]


def _policy(**overrides):
    defaults = dict(
        max_retries=1, backoff_base=0.0, checkpoint_every=3, checkpoint_retain=2
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def _observables(service, query, start):
    """Everything a client can see from a (plain) sharded service."""
    answers = [service.answer(query, t) for t in range(start, HORIZON + 1)]
    buffer = io.BytesIO()
    service.checkpoint(buffer)
    return {
        "answers": answers,
        "ledgers": service.shard_ledgers(),
        "spent": service.zcdp_spent(),
        "bundle": buffer.getvalue(),
    }


def _reference(algorithm, events):
    kwargs, query, start = CONFIGS[algorithm]
    service = ShardedService(K, seed=SEED, **kwargs)
    for column, entrants, exits in events:
        service.observe(column, entrants=entrants, exits=exits)
    observed = _observables(service, query, start)
    observed["fingerprints"] = service.state_fingerprints()
    service.close()
    return observed


def _crash_midstream(directory, algorithm, events, cut, policy):
    """Drive ``cut`` rounds in a forked child, then die without cleanup.

    ``os._exit`` skips every finalizer — close, atexit, buffered flushes
    — so the parent sees exactly what a ``kill -9`` leaves behind: the
    fsync'd journal and any completed checkpoints.
    """
    kwargs, query, _ = CONFIGS[algorithm]

    def _child():
        service = SupervisedService(
            directory,
            n_shards=K,
            seed=SEED,
            executor="serial",
            policy=policy,
            probe_queries={"probe": query},
            **kwargs,
        )
        for column, entrants, exits in events[:cut]:
            service.observe(column, entrants=entrants, exits=exits)
        os._exit(0)

    process = mp.get_context("fork").Process(target=_child)
    process.start()
    process.join(timeout=120)
    assert process.exitcode == 0


# ---------------------------------------------------------------------------
# Kill -9 mid-stream -> byte-identical resume
# ---------------------------------------------------------------------------


@needs_fork
@pytest.mark.parametrize("algorithm", sorted(CONFIGS))
def test_crash_midstream_recovery_is_byte_identical(
    algorithm, churn_events, tmp_path
):
    events = _events_for(algorithm, churn_events)
    kwargs, query, start = CONFIGS[algorithm]
    expected = _reference(algorithm, events)

    directory = str(tmp_path / "service")
    policy = _policy()
    cut = HORIZON // 2
    _crash_midstream(directory, algorithm, events, cut, policy)

    with SupervisedService.attach(
        directory, executor="serial", policy=policy, probe_queries={"probe": query}
    ) as resumed:
        assert resumed.t == cut
        for column, entrants, exits in events[cut:]:
            resumed.observe(column, entrants=entrants, exits=exits)
        assert resumed.t == HORIZON
        observed = _observables(resumed.service, query, start)
        observed["fingerprints"] = resumed.service.state_fingerprints()
    assert observed["fingerprints"] == expected["fingerprints"]
    assert observed["answers"] == expected["answers"]
    assert observed["ledgers"] == expected["ledgers"]
    assert observed["spent"] == expected["spent"]
    assert observed["bundle"] == expected["bundle"]


@needs_fork
@pytest.mark.parametrize(
    "executor",
    ["serial", "thread", pytest.param("process", marks=needs_fork)],
)
def test_recovery_is_executor_agnostic(executor, churn_events, tmp_path):
    """Attach with any strategy: the recovered state is the same bytes."""
    events = _events_for("cumulative", churn_events)
    kwargs, query, start = CONFIGS["cumulative"]
    expected = _reference("cumulative", events)

    directory = str(tmp_path / "service")
    policy = _policy()
    _crash_midstream(directory, "cumulative", events, HORIZON - 2, policy)

    with SupervisedService.attach(
        directory, executor=executor, policy=policy
    ) as resumed:
        for column, entrants, exits in events[HORIZON - 2:]:
            resumed.observe(column, entrants=entrants, exits=exits)
        assert resumed.service.state_fingerprints() == expected["fingerprints"]
        observed = _observables(resumed.service, query, start)
    for key in observed:
        assert observed[key] == expected[key], key


# ---------------------------------------------------------------------------
# Replay, never re-noise
# ---------------------------------------------------------------------------


def test_recovered_answers_equal_journaled_answers(churn_events, tmp_path):
    """Replay reproduces the *published* releases — nothing is re-noised."""
    events = _events_for("cumulative", churn_events)
    kwargs, query, _ = CONFIGS["cumulative"]
    directory = str(tmp_path / "service")
    policy = _policy(checkpoint_every=100)  # journal holds every round
    service = SupervisedService(
        directory,
        n_shards=K,
        seed=SEED,
        executor="serial",
        policy=policy,
        probe_queries={"probe": query},
        **kwargs,
    )
    journaled = [
        service.observe(column, entrants=entrants, exits=exits)
        for column, entrants, exits in events
    ]
    service.close()

    with SupervisedService.attach(
        directory, executor="serial", policy=policy, probe_queries={"probe": query}
    ) as resumed:
        for record in journaled:
            assert resumed.answer(query, record.round) == record.answers["probe"]
        assert resumed.zcdp_spent() == journaled[-1].zcdp_spent
        final = resumed.service.state_fingerprints()
        assert tuple(final) == journaled[-1].fingerprints
    # Idempotent: attaching again replays to the identical state.
    with SupervisedService.attach(directory, executor="serial", policy=policy) as again:
        assert again.service.state_fingerprints() == final


def test_replay_with_wrong_noise_fails_closed(churn_events, tmp_path):
    """A replay that would re-noise published rounds must be refused.

    Tampering the persisted seed makes the rebuilt service draw
    different noise during replay; the per-round fingerprint
    verification catches the divergence on the very first round instead
    of silently republishing different releases.
    """
    events = _events_for("cumulative", churn_events)
    kwargs, query, _ = CONFIGS["cumulative"]
    directory = str(tmp_path / "service")
    policy = _policy(checkpoint_every=100)  # force a full from-scratch replay
    service = SupervisedService(
        directory, n_shards=K, seed=SEED, executor="serial", policy=policy, **kwargs
    )
    for column, entrants, exits in events[:4]:
        service.observe(column, entrants=entrants, exits=exits)
    service.close()

    config_path = os.path.join(directory, "service.json")
    with open(config_path) as handle:
        config = json.load(handle)
    config["seed"] = SEED + 1
    with open(config_path, "w") as handle:
        json.dump(config, handle)
    with pytest.raises(RecoveryError):
        SupervisedService.attach(directory, executor="serial", policy=policy)


def test_zcdp_spend_is_monotone_across_recoveries(churn_events, tmp_path):
    events = _events_for("fixed_window", churn_events)
    kwargs, query, _ = CONFIGS["fixed_window"]
    directory = str(tmp_path / "service")
    policy = _policy(checkpoint_every=2)
    spends = []
    service = SupervisedService(
        directory, n_shards=K, seed=SEED, executor="serial", policy=policy, **kwargs
    )
    for column, entrants, exits in events[:4]:
        spends.append(service.observe(column, entrants=entrants, exits=exits).zcdp_spent)
    service.close()
    with SupervisedService.attach(directory, executor="serial", policy=policy) as resumed:
        assert resumed.zcdp_spent() == spends[-1]  # recovery never re-charges
        for column, entrants, exits in events[4:]:
            spends.append(
                resumed.observe(column, entrants=entrants, exits=exits).zcdp_spent
            )
    assert spends == sorted(spends)
    reference = ShardedService(K, seed=SEED, **kwargs)
    for column, entrants, exits in events:
        reference.observe(column, entrants=entrants, exits=exits)
    assert spends[-1] == reference.zcdp_spent()
    reference.close()


# ---------------------------------------------------------------------------
# Fail-closed / degraded parity across executors
# ---------------------------------------------------------------------------

EXECUTORS = ["serial", "thread", pytest.param("process", marks=needs_fork)]


def _poison_observables(executor, panel_columns):
    """Run the deterministic mid-round failure; collect what clients see."""
    service = ShardedService(
        4,
        algorithm="fixed_window",
        horizon=HORIZON,
        window=3,
        rho=1e-6,
        n_pad=0,
        on_negative="raise",
        seed=2,
        executor=executor,
    )
    try:
        with pytest.raises((NegativeCountError, ConsistencyError)):
            for column in panel_columns:
                service.observe(column)
        observed = {"spent": service.zcdp_spent()}
        for name, call in [
            ("observe", lambda: service.observe(panel_columns[0])),
            ("answer", lambda: service.answer(AtLeastMOnes(3, 1), 3)),
            ("checkpoint", lambda: service.checkpoint(io.BytesIO())),
            ("fingerprints", service.state_fingerprints),
        ]:
            with pytest.raises(ConsistencyError, match="desynchronized"):
                call()
            observed[name] = "ConsistencyError"
        return observed
    finally:
        service.close()


@pytest.mark.parametrize("executor", EXECUTORS)
def test_poisoned_service_parity_across_executors(executor):
    rng = np.random.default_rng(0)
    columns = [rng.integers(0, 2, size=40) for _ in range(HORIZON)]
    observed = _poison_observables(executor, columns)
    baseline = _poison_observables("serial", columns)
    assert observed == baseline


def _degraded_observables(executor, events):
    kwargs, query, start = CONFIGS["cumulative"]
    service = ShardedService(K, seed=SEED, executor=executor, **kwargs)
    try:
        for column, entrants, exits in events[:4]:
            service.observe(column, entrants=entrants, exits=exits)
        service.disable_shard(1, reason="chaos test")
        assert service.degraded
        with pytest.warns(DegradedServiceWarning):
            first = service.answer(query, 4)
        for column, entrants, exits in events[4:]:
            service.observe(column, entrants=entrants, exits=exits)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedServiceWarning)
            answers = [service.answer(query, t) for t in range(start, HORIZON + 1)]
        with pytest.raises(RecoveryError):
            service.checkpoint(io.BytesIO())
        return {
            "first": first,
            "answers": answers,
            "spent": service.zcdp_spent(),
            "ledgers": service.shard_ledgers(),
            "health": service.health_report(),
            "fingerprints": service.state_fingerprints(),
        }
    finally:
        service.close()


@pytest.mark.parametrize("executor", EXECUTORS)
def test_degraded_service_parity_across_executors(executor, churn_events):
    events = _events_for("cumulative", churn_events)
    observed = _degraded_observables(executor, events)
    baseline = _degraded_observables("serial", events)
    assert observed == baseline
    statuses = {entry["shard"]: entry["status"] for entry in observed["health"]}
    assert statuses[1] == "disabled"
    assert all(status == "ok" for shard, status in statuses.items() if shard != 1)
