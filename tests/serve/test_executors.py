"""Executor equivalence: serial, thread, and process shard stepping.

The contract the scale-out layer rests on: the three
:mod:`repro.serve.executor` strategies are *indistinguishable* from the
outside — byte-identical merged answers, zCDP ledgers, and checkpoint
bundles, under noise, churn, and mid-stream restore, for every
algorithm.  Noise draws come from per-shard spawned RNG streams, so no
stepping order can legally change any output byte; these tests make
that an enforced invariant rather than an argument.
"""

import io
import math
import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.data.generators import churn_two_state_markov
from repro.exceptions import ConfigurationError, ConsistencyError
from repro.queries import AtLeastMOnes, HammingAtLeast
from repro.queries.categorical import CategoryAtLeastM
from repro.serve import EXECUTOR_STRATEGIES, ShardedService
from repro.serve.executor import EXECUTOR_ENV, resolve_strategy

HORIZON = 8
K = 3

HAS_FORK = "fork" in mp.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="process executor needs the fork start method"
)

#: algorithm -> (service kwargs, probe query, first answerable round)
CONFIGS = {
    "cumulative": (
        dict(algorithm="cumulative", horizon=HORIZON, rho=0.3),
        HammingAtLeast(2),
        1,
    ),
    "fixed_window": (
        dict(algorithm="fixed_window", horizon=HORIZON, window=3, rho=0.3),
        AtLeastMOnes(3, 1),
        3,
    ),
    "categorical_window": (
        dict(
            algorithm="categorical_window",
            horizon=HORIZON,
            window=2,
            alphabet=3,
            rho=0.3,
        ),
        CategoryAtLeastM(2, 3, category=1, m=1),
        2,
    ),
}

PARALLEL = [
    pytest.param("thread"),
    pytest.param("process", marks=needs_fork),
]


@pytest.fixture(scope="module")
def churn_events():
    panel = churn_two_state_markov(
        60, HORIZON, 0.85, 0.2, entry_rate=0.25, exit_hazard=0.08, seed=4
    )
    return list(panel.rounds())


def _events_for(algorithm, churn_events):
    """Per-algorithm round events (categorical folds reports into [0, 3))."""
    if algorithm != "categorical_window":
        return churn_events
    return [
        ((column + np.arange(column.shape[0])) % 3, entrants, exits)
        for column, entrants, exits in churn_events
    ]


def _drive(service, events):
    for column, entrants, exits in events:
        service.observe(column, entrants=entrants, exits=exits)
    return service


def _observables(service, query, start):
    """Everything a client can see: answers, ledgers, loads, checkpoint."""
    answers = [service.answer(query, t) for t in range(start, HORIZON + 1)]
    buffer = io.BytesIO()
    service.checkpoint(buffer)
    return {
        "answers": answers,
        "ledgers": service.shard_ledgers(),
        "spent": service.zcdp_spent(),
        "loads": service.shard_loads().tolist(),
        "bundle": buffer.getvalue(),
    }


@pytest.mark.parametrize("executor", PARALLEL)
@pytest.mark.parametrize("algorithm", sorted(CONFIGS))
def test_parallel_executors_are_byte_identical_to_serial(
    algorithm, executor, churn_events
):
    kwargs, query, start = CONFIGS[algorithm]
    events = _events_for(algorithm, churn_events)
    serial = _drive(ShardedService(K, seed=9, executor="serial", **kwargs), events)
    parallel = _drive(ShardedService(K, seed=9, executor=executor, **kwargs), events)
    reference = _observables(serial, query, start)
    observed = _observables(parallel, query, start)
    parallel.close()
    serial.close()
    assert observed["answers"] == reference["answers"]
    assert observed["ledgers"] == reference["ledgers"]
    assert observed["spent"] == reference["spent"]
    assert observed["loads"] == reference["loads"]
    assert observed["bundle"] == reference["bundle"], (
        "checkpoint bundles differ between serial and " + executor
    )


@pytest.mark.parametrize("executor", PARALLEL)
def test_mid_churn_restore_crosses_executors(executor, churn_events):
    """A checkpoint written under one strategy restores under any other."""
    kwargs, query, start = CONFIGS["cumulative"]
    serial = _drive(ShardedService(K, seed=5, executor="serial", **kwargs), churn_events)

    partial = ShardedService(K, seed=5, executor=executor, **kwargs)
    _drive(partial, churn_events[:4])  # checkpoint lands mid-churn
    buffer = io.BytesIO()
    partial.checkpoint(buffer)
    partial.close()
    buffer.seek(0)
    resumed = ShardedService.restore(buffer, executor=executor)
    assert resumed.executor == executor
    assert resumed.t == 4
    _drive(resumed, churn_events[4:])

    reference = _observables(serial, query, start)
    observed = _observables(resumed, query, start)
    resumed.close()
    serial.close()
    assert observed == reference

    # And the parallel-written bundle restores under serial too.
    buffer.seek(0)
    again = ShardedService.restore(buffer, executor="serial")
    assert again.executor == "serial"
    _drive(again, churn_events[4:])
    assert _observables(again, query, start) == reference
    again.close()


@needs_fork
def test_async_pipelining_matches_synchronous_ingestion(churn_events):
    kwargs, query, start = CONFIGS["fixed_window"]
    sync = _drive(ShardedService(K, seed=2, executor="serial", **kwargs), churn_events)
    pipelined = ShardedService(K, seed=2, executor="process", **kwargs)
    tickets = [
        pipelined.observe_async(column, entrants=entrants, exits=exits)
        for column, entrants, exits in churn_events
    ]
    for ticket in tickets:
        ticket.wait()
        assert ticket.done and ticket.completed == K
    reference = _observables(sync, query, start)
    observed = _observables(pipelined, query, start)
    pipelined.close()
    sync.close()
    assert observed == reference


@needs_fork
def test_process_executor_hides_shard_objects(churn_events):
    service = ShardedService(
        K, algorithm="cumulative", horizon=HORIZON, rho=math.inf, executor="process"
    )
    with pytest.raises(ConfigurationError, match="worker processes"):
        service.shards
    service.close()


@needs_fork
def test_rejected_round_does_not_poison_process_service():
    """Pre-dispatch validation rejects bad rounds without touching workers."""
    service = ShardedService(
        2,
        algorithm="cumulative",
        horizon=2,
        rho=math.inf,
        executor="process",
    )
    service.observe(np.ones(10, dtype=np.int64))
    with pytest.raises(Exception, match="entries"):
        service.observe(np.ones(11, dtype=np.int64))
    # The rejection happened before dispatch, so ingestion continues cleanly.
    service.observe(np.zeros(10, dtype=np.int64))
    assert service.t == 2
    service.close()


@needs_fork
def test_worker_exceptions_propagate_to_parent():
    """An exception raised inside a forked worker crosses the pipe intact."""
    from repro.exceptions import DataValidationError

    service = ShardedService(
        2, algorithm="cumulative", horizon=4, rho=math.inf, executor="process"
    )
    service.observe(np.ones(8, dtype=np.int64))
    # Bypass service validation: hand shard 1 a column of the wrong length.
    ticket = service._executor.dispatch_round(
        [
            (np.ones(4, dtype=np.int64), 0, None),
            (np.ones(99, dtype=np.int64), 0, None),
        ]
    )
    with pytest.raises(DataValidationError):
        ticket.wait()
    service.close()


@needs_fork
def test_process_worker_death_raises_consistency_error():
    service = ShardedService(
        2, algorithm="cumulative", horizon=4, rho=math.inf, executor="process"
    )
    service.observe(np.ones(8, dtype=np.int64))
    for process in service._executor._processes:
        process.terminate()
        process.join()
    with pytest.raises(ConsistencyError, match="died"):
        service.shard_ledgers()
    service.close()


def test_environment_selects_default_strategy(monkeypatch):
    monkeypatch.delenv(EXECUTOR_ENV, raising=False)
    assert resolve_strategy(None) == "serial"
    monkeypatch.setenv(EXECUTOR_ENV, "thread")
    assert resolve_strategy(None) == "thread"
    service = ShardedService(2, algorithm="cumulative", horizon=4, rho=math.inf)
    assert service.executor == "thread"
    service.close()
    # Explicit argument beats the environment.
    assert resolve_strategy("serial") == "serial"
    monkeypatch.setenv(EXECUTOR_ENV, "bogus")
    with pytest.raises(ConfigurationError, match="executor must be one of"):
        resolve_strategy(None)


def test_strategy_names_are_the_documented_set():
    assert EXECUTOR_STRATEGIES == ("serial", "thread", "process")
    assert os.environ.get(EXECUTOR_ENV, "") in ("", *EXECUTOR_STRATEGIES)


@needs_fork
def test_large_round_grows_staging_buffers():
    """Column staging survives capacity growth (new segment mid-stream)."""
    service = ShardedService(
        2, algorithm="cumulative", horizon=3, rho=math.inf, executor="process"
    )
    service.observe(np.ones(64, dtype=np.int64), entrants=0)
    # Entrants enlarge the column past the round-1 segment capacity.
    service.observe(np.ones(5000, dtype=np.int64), entrants=4936)
    service.observe(np.ones(5000, dtype=np.int64))
    assert service.n == 5000
    # Only the 64 round-1 members have three ones; noiseless => exact.
    assert service.answer(HammingAtLeast(3), t=3) == pytest.approx(64 / 5000)
    service.close()
