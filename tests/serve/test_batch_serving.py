"""Batched serving: one fan-out per workload, bit-identical with the loop.

``ShardedService.answer_batch`` ships the compiled workload to every
shard in a single executor round-trip and merges the per-shard answer
matrices with the same shard-order weighted accumulation as the scalar
:meth:`answer` loop — so the merged grid must be *bit-identical* to
calling ``answer(query, t)`` per cell, for every executor strategy,
under noise and churn, warm or cold cache.  The answer cache is keyed
by the service release version, so committed rounds and shard
disablement must invalidate it; the supervised façade passes batches
through unchanged (recovering first when a round failed).
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.data.generators import churn_two_state_markov
from repro.exceptions import DegradedServiceWarning
from repro.queries import AtLeastMOnes, HammingAtLeast, HammingExactly
from repro.serve import ShardedService
from repro.serve.policy import RetryPolicy
from repro.serve.supervisor import SupervisedService

HORIZON = 8
K = 3

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="process executor needs the fork start method",
)

EXECUTORS = ["serial", "thread", pytest.param("process", marks=needs_fork)]

#: algorithm -> (service kwargs, mixed workload, first answerable round)
CONFIGS = {
    "cumulative": (
        dict(algorithm="cumulative", horizon=HORIZON, rho=0.3),
        [HammingAtLeast(2), HammingExactly(1), HammingAtLeast(HORIZON + 9)],
        1,
    ),
    "fixed_window": (
        dict(algorithm="fixed_window", horizon=HORIZON, window=3, rho=0.3),
        [AtLeastMOnes(3, 1), AtLeastMOnes(2, 2), AtLeastMOnes(4, 1)],
        3,
    ),
}


@pytest.fixture(scope="module")
def churn_events():
    panel = churn_two_state_markov(
        60, HORIZON, 0.85, 0.2, entry_rate=0.25, exit_hazard=0.08, seed=4
    )
    return list(panel.rounds())


def _drive(service, events):
    for column, entrants, exits in events:
        service.observe(column, entrants=entrants, exits=exits)
    return service


def _scalar_grid(service, queries, times):
    grid = np.full((len(queries), len(times)), np.nan, dtype=np.float64)
    for qi, query in enumerate(queries):
        for ti, t in enumerate(times):
            if t >= query.min_time():
                grid[qi, ti] = service.answer(query, t)
    return grid


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("algorithm", sorted(CONFIGS))
def test_batched_merge_is_bit_identical_to_scalar_loop(
    algorithm, executor, churn_events
):
    kwargs, queries, start = CONFIGS[algorithm]
    service = _drive(
        ShardedService(K, seed=9, executor=executor, **kwargs), churn_events
    )
    try:
        times = list(range(start, HORIZON + 1))
        cold = service.answer_batch(queries, times)
        warm = service.answer_batch(queries, times)
        reference = _scalar_grid(service, queries, times)
        assert np.array_equal(cold, reference, equal_nan=True)
        assert np.array_equal(warm, reference, equal_nan=True)
    finally:
        service.close()


@pytest.mark.parametrize("executor", EXECUTORS)
def test_committed_rounds_invalidate_the_answer_cache(executor, churn_events):
    kwargs, queries, start = CONFIGS["cumulative"]
    service = ShardedService(K, seed=9, executor=executor, **kwargs)
    try:
        column, entrants, exits = churn_events[0]
        service.observe(column, entrants=entrants, exits=exits)
        first = service.answer_batch(queries, [1])
        assert np.array_equal(service.answer_batch(queries, [1]), first)
        for column, entrants, exits in churn_events[1:]:
            service.observe(column, entrants=entrants, exits=exits)
        times = list(range(start, HORIZON + 1))
        refreshed = service.answer_batch(queries, times)
        assert np.array_equal(
            refreshed, _scalar_grid(service, queries, times), equal_nan=True
        )
    finally:
        service.close()


def test_disable_shard_invalidates_the_answer_cache(churn_events):
    kwargs, queries, _ = CONFIGS["cumulative"]
    service = _drive(ShardedService(K, seed=9, **kwargs), churn_events)
    try:
        times = [HORIZON // 2, HORIZON]
        healthy = service.answer_batch(queries, times)
        service.disable_shard(1, "injected")
        with pytest.warns(DegradedServiceWarning):
            degraded = service.answer_batch(queries, times)
        assert not np.array_equal(healthy, degraded, equal_nan=True)
        with pytest.warns(DegradedServiceWarning):
            reference = _scalar_grid(service, queries, times)
        assert np.array_equal(degraded, reference, equal_nan=True)
    finally:
        service.close()


def test_supervised_service_passes_batches_through(tmp_path, churn_events):
    kwargs, queries, start = CONFIGS["cumulative"]
    policy = RetryPolicy(max_retries=1, backoff_base=0.01, checkpoint_every=100)
    service = SupervisedService(
        str(tmp_path / "svc"), n_shards=K, seed=9, policy=policy, **kwargs
    )
    try:
        for column, entrants, exits in churn_events:
            service.observe(column, entrants=entrants, exits=exits)
        times = list(range(start, HORIZON + 1))
        batched = service.answer_batch(queries, times)
        assert np.array_equal(
            batched, _scalar_grid(service, queries, times), equal_nan=True
        )
    finally:
        service.close()


def test_supervised_batch_answers_survive_reattach(tmp_path, churn_events):
    """A resumed service serves the same batched grid it journaled."""
    kwargs, queries, start = CONFIGS["cumulative"]
    policy = RetryPolicy(max_retries=1, backoff_base=0.01, checkpoint_every=2)
    directory = str(tmp_path / "svc")
    service = SupervisedService(
        directory, n_shards=K, seed=9, policy=policy, **kwargs
    )
    for column, entrants, exits in churn_events:
        service.observe(column, entrants=entrants, exits=exits)
    times = list(range(start, HORIZON + 1))
    published = service.answer_batch(queries, times)
    service.close()

    with SupervisedService.attach(directory, policy=policy) as resumed:
        assert np.array_equal(
            resumed.answer_batch(queries, times), published, equal_nan=True
        )


def test_unfamiliar_queries_fall_back_per_shard(churn_events):
    """An uncompilable query rides the scalar fallback inside the batch."""

    class Halves(AtLeastMOnes):
        pass

    kwargs, _, _ = CONFIGS["fixed_window"]
    service = _drive(ShardedService(K, seed=9, **kwargs), churn_events)
    try:
        queries = [Halves(3, 1), AtLeastMOnes(3, 1)]
        grid = service.answer_batch(queries, [4, HORIZON])
        reference = _scalar_grid(service, queries, [4, HORIZON])
        assert np.array_equal(grid, reference, equal_nan=True)
        # Halves compiles like its base class; both rows agree.
        assert np.array_equal(grid[0], grid[1])
    finally:
        service.close()
