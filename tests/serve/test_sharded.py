"""Sharded service: assignment, merged answers, budgets, durability."""

import io
import math

import numpy as np
import pytest

from repro import AtLeastMOnes, CumulativeSynthesizer, HammingAtLeast, HammingExactly
from repro.data import iid_bernoulli
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
    SerializationError,
)
from repro.serve import ShardedService

HORIZON = 8
N = 200


@pytest.fixture(scope="module")
def panel():
    return iid_bernoulli(N, HORIZON, p=0.3, seed=17)


def test_shard_assignment_is_contiguous_and_total(panel):
    service = ShardedService(3, algorithm="cumulative", horizon=HORIZON, rho=math.inf)
    service.observe(next(iter(panel.columns())))
    slices = service.shard_slices()
    assert len(slices) == 3
    assert slices[0].start == 0 and slices[-1].stop == N
    covered = sum(s.stop - s.start for s in slices)
    assert covered == N == service.n


def test_merged_noiseless_answers_match_unsharded(panel):
    """Noiseless shards release exact counts, so the merge is exact too."""
    service = ShardedService(
        4, algorithm="cumulative", horizon=HORIZON, rho=math.inf, seed=2
    )
    for column in panel.columns():
        service.observe(column)
    single = CumulativeSynthesizer(HORIZON, math.inf, seed=2)
    single.run(panel)
    for t in (1, HORIZON // 2, HORIZON):
        for query in (HammingAtLeast(2), HammingExactly(1)):
            assert service.answer(query, t) == pytest.approx(
                single.release.answer(query, t)
            )


def test_merged_answer_is_population_weighted_average(panel):
    service = ShardedService(
        3, algorithm="cumulative", horizon=HORIZON, rho=0.05, seed=5
    )
    for column in panel.columns():
        service.observe(column)
    query = HammingAtLeast(2)
    expected = sum(
        shard.release.m * shard.release.answer(query, HORIZON)
        for shard in service.shards
    ) / sum(shard.release.m for shard in service.shards)
    assert service.answer(query, HORIZON) == pytest.approx(expected)


def test_fixed_window_sharding(panel):
    service = ShardedService(
        2, algorithm="fixed_window", horizon=HORIZON, window=3, rho=math.inf, seed=1
    )
    for column in panel.columns():
        service.observe(column)
    query = AtLeastMOnes(3, 2)
    answer = service.answer(query, HORIZON)
    true = query.evaluate(panel, HORIZON)
    assert answer == pytest.approx(true)  # noiseless + debiased => exact


def test_per_shard_budget_accounting(panel):
    rho = 0.04
    service = ShardedService(
        3, algorithm="cumulative", horizon=HORIZON, rho=rho, seed=5
    )
    for column in panel.columns():
        service.observe(column)
    ledgers = service.shard_ledgers()
    assert len(ledgers) == 3
    for spent, remaining in ledgers:
        assert spent == pytest.approx(rho)
        assert remaining == pytest.approx(0.0, abs=1e-12)
    # Parallel composition: service-wide spend is the max, not the sum.
    assert service.zcdp_spent() == pytest.approx(rho)
    for shard in service.shards:
        charges = shard.synthesizer.accountant.charges
        assert len(charges) == HORIZON  # one charge per threshold counter


def test_noiseless_shards_report_zero_spend(panel):
    service = ShardedService(2, algorithm="cumulative", horizon=HORIZON, rho=math.inf)
    service.observe(next(iter(panel.columns())))
    assert service.zcdp_spent() == 0.0
    assert service.shard_ledgers() == [(0.0, math.inf)] * 2


def test_checkpoint_restore_byte_identity(panel):
    columns = list(panel.columns())
    service = ShardedService(
        3, algorithm="cumulative", horizon=HORIZON, rho=0.05, seed=9
    )
    for column in columns[:3]:
        service.observe(column)
    buffer = io.BytesIO()
    service.checkpoint(buffer)
    for column in columns[3:]:
        service.observe(column)

    buffer.seek(0)
    resumed = ShardedService.restore(buffer)
    assert resumed.t == 3
    assert resumed.n_shards == 3
    assert resumed.shard_slices() == service.shard_slices()
    for column in columns[3:]:
        resumed.observe(column)
    for original, restored in zip(service.shards, resumed.shards):
        assert np.array_equal(
            original.release.threshold_table(), restored.release.threshold_table()
        )
    query = HammingAtLeast(3)
    assert service.answer(query, HORIZON) == resumed.answer(query, HORIZON)


def test_checkpoint_before_first_round(tmp_path):
    path = tmp_path / "fresh.ckpt"
    service = ShardedService(2, algorithm="cumulative", horizon=HORIZON, rho=0.05, seed=1)
    service.checkpoint(path)
    resumed = ShardedService.restore(path)
    assert resumed.t == 0
    with pytest.raises(NotFittedError):
        resumed.shard_slices()


def test_tampered_shard_blob_rejected(panel, tmp_path):
    import json
    import zipfile

    path = tmp_path / "svc.ckpt"
    service = ShardedService(2, algorithm="cumulative", horizon=HORIZON, rho=0.05, seed=1)
    service.observe(next(iter(panel.columns())))
    service.checkpoint(path)
    # Rewriting the outer manifest without re-signing must be detected.
    with zipfile.ZipFile(path) as bundle:
        members = {name: bundle.read(name) for name in bundle.namelist()}
    manifest = json.loads(members["manifest.json"])
    manifest["config"]["n_shards"] = 1
    members["manifest.json"] = json.dumps(manifest)
    with zipfile.ZipFile(path, "w") as bundle:
        for name, data in members.items():
            bundle.writestr(name, data)
    with pytest.raises(SerializationError, match="checksum"):
        ShardedService.restore(path)


def test_restore_rejects_inconsistent_shard_combinations(panel):
    """Shards that never belonged together must not restore."""
    import math as _math

    from repro.serve import StreamingSynthesizer, write_bundle

    def shard_blob(service_shard):
        buffer = io.BytesIO()
        service_shard.checkpoint(buffer)
        return np.frombuffer(buffer.getvalue(), dtype=np.uint8)

    columns = list(panel.columns())
    cumulative = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=_math.inf, seed=0)
    window = StreamingSynthesizer.fixed_window(
        horizon=HORIZON, window=3, rho=_math.inf, seed=0
    )
    ahead = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=_math.inf, seed=1)
    for column in columns[:2]:
        cumulative.observe(column[:50])
        window.observe(column[:50])
        ahead.observe(column[:50])
    ahead.observe(columns[2][:50])

    # Algorithm mismatch between manifest and a nested shard bundle.
    buffer = io.BytesIO()
    write_bundle(
        buffer,
        kind="sharded",
        config={"algorithm": "cumulative", "n_shards": 2},
        state={
            "shards": {
                "0": {"bundle": shard_blob(cumulative)},
                "1": {"bundle": shard_blob(window)},
            }
        },
    )
    buffer.seek(0)
    with pytest.raises(SerializationError, match="algorithm"):
        ShardedService.restore(buffer)

    # Desynchronized shard clocks.
    buffer = io.BytesIO()
    write_bundle(
        buffer,
        kind="sharded",
        config={"algorithm": "cumulative", "n_shards": 2},
        state={
            "shards": {
                "0": {"bundle": shard_blob(cumulative)},
                "1": {"bundle": shard_blob(ahead)},
            }
        },
    )
    buffer.seek(0)
    with pytest.raises(SerializationError, match="desynchronized"):
        ShardedService.restore(buffer)


def test_validation_errors(panel):
    with pytest.raises(ConfigurationError):
        ShardedService(0, algorithm="cumulative", horizon=HORIZON, rho=1.0)
    with pytest.raises(ConfigurationError):
        ShardedService(2, algorithm="nope", horizon=HORIZON, rho=1.0)
    service = ShardedService(2, algorithm="cumulative", horizon=HORIZON, rho=math.inf)
    with pytest.raises(DataValidationError):
        service.observe(np.zeros((3, 3)))
    with pytest.raises(DataValidationError):
        service.observe(np.zeros(1))  # fewer individuals than shards
    service.observe(np.zeros(10))
    with pytest.raises(DataValidationError):
        service.observe(np.zeros(11))  # population changed


def test_rejected_column_leaves_every_shard_clock_unchanged(panel):
    """Validation runs before any shard advances: a bad round is atomic."""
    service = ShardedService(2, algorithm="cumulative", horizon=HORIZON, rho=math.inf)
    columns = list(panel.columns())
    service.observe(columns[0])
    bad = columns[1].copy()
    bad[-1] = 2  # invalid entry only in the *last* shard's slice
    with pytest.raises(DataValidationError):
        service.observe(bad)
    assert [shard.t for shard in service.shards] == [1, 1]
    # Resubmitting the corrected column continues cleanly — no double count.
    service.observe(columns[1])
    assert [shard.t for shard in service.shards] == [2, 2]
    assert service.t == 2


def test_mid_round_shard_failure_poisons_the_service(panel):
    """A noise-dependent per-shard failure must not serve desynced merges."""
    from repro.exceptions import ConsistencyError, NegativeCountError

    service = ShardedService(
        4,
        algorithm="fixed_window",
        horizon=HORIZON,
        window=3,
        rho=1e-6,
        n_pad=0,
        on_negative="raise",
        seed=2,
    )
    columns = list(panel.columns())
    with pytest.raises(NegativeCountError):
        for column in columns:
            service.observe(column)
    # The service fails closed: every subsequent operation that could
    # serve or persist desynchronized state is refused.
    with pytest.raises(ConsistencyError, match="desynchronized"):
        service.observe(columns[0])
    with pytest.raises(ConsistencyError, match="desynchronized"):
        service.answer(AtLeastMOnes(3, 1), 3)
    with pytest.raises(ConsistencyError, match="desynchronized"):
        service.checkpoint(io.BytesIO())


def test_spawned_shard_seeds_are_reproducible(panel):
    a = ShardedService(2, algorithm="cumulative", horizon=HORIZON, rho=0.05, seed=7)
    b = ShardedService(2, algorithm="cumulative", horizon=HORIZON, rho=0.05, seed=7)
    for column in panel.columns():
        a.observe(column)
        b.observe(column)
    for shard_a, shard_b in zip(a.shards, b.shards):
        assert np.array_equal(
            shard_a.release.threshold_table(), shard_b.release.threshold_table()
        )


def test_restore_rejects_mismatched_shard_horizons(panel):
    import math as _math

    from repro.serve import StreamingSynthesizer, write_bundle

    def blob(shard):
        buffer = io.BytesIO()
        shard.checkpoint(buffer)
        return np.frombuffer(buffer.getvalue(), dtype=np.uint8)

    short = StreamingSynthesizer.cumulative(horizon=4, rho=_math.inf, seed=0)
    long = StreamingSynthesizer.cumulative(horizon=6, rho=_math.inf, seed=0)
    buffer = io.BytesIO()
    write_bundle(
        buffer,
        kind="sharded",
        config={"algorithm": "cumulative", "n_shards": 2},
        state={"shards": {"0": {"bundle": blob(short)}, "1": {"bundle": blob(long)}}},
    )
    buffer.seek(0)
    with pytest.raises(SerializationError, match="horizons disagree"):
        ShardedService.restore(buffer)
