"""Tests for the private density-estimation baseline."""

import math

import numpy as np
import pytest

from repro.baselines.density import DensityRelease, PrivateDensityBaseline
from repro.data.categorical import CategoricalDataset, employment_status_panel
from repro.data.generators import two_state_markov
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)
from repro.queries.categorical import CategoryAtLeastM
from repro.queries.window import AtLeastMOnes


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon": 0, "window": 1, "rho": 0.1},
            {"horizon": 4, "window": 0, "rho": 0.1},
            {"horizon": 4, "window": 5, "rho": 0.1},
            {"horizon": 4, "window": 2, "rho": 0.0},
            {"horizon": 4, "window": 2, "rho": -1.0},
            {"horizon": 4, "window": 2, "rho": 0.1, "alphabet": 1},
            {"horizon": 4, "window": 2, "rho": 0.1, "n_synthetic": 0},
        ],
    )
    def test_bad_constructor_args(self, kwargs):
        with pytest.raises(ConfigurationError):
            PrivateDensityBaseline(**kwargs)

    def test_column_validation(self):
        baseline = PrivateDensityBaseline(4, 2, 1.0, seed=0)
        with pytest.raises(DataValidationError, match="1-D"):
            baseline.observe(np.zeros((2, 2), dtype=int))
        with pytest.raises(DataValidationError, match="empty"):
            baseline.observe(np.array([], dtype=int))
        with pytest.raises(DataValidationError, match="integers"):
            baseline.observe(np.array([0.5, 0.5]))
        with pytest.raises(DataValidationError, match="lie in"):
            baseline.observe(np.array([0, 2]))

    def test_population_size_locked_after_first_column(self):
        baseline = PrivateDensityBaseline(4, 2, 1.0, seed=0)
        baseline.observe(np.array([0, 1, 0]))
        with pytest.raises(DataValidationError, match="entries"):
            baseline.observe(np.array([0, 1]))

    def test_horizon_exhausted(self):
        baseline = PrivateDensityBaseline(2, 1, 1.0, seed=0)
        column = np.array([0, 1])
        baseline.observe(column)
        baseline.observe(column)
        with pytest.raises(DataValidationError, match="exhausted"):
            baseline.observe(column)

    def test_run_requires_matching_panel(self):
        panel = two_state_markov(50, 6, 0.8, 0.1, seed=0)
        with pytest.raises(DataValidationError, match="horizon"):
            PrivateDensityBaseline(4, 2, 1.0, seed=0).run(panel)
        with pytest.raises(DataValidationError, match="alphabet"):
            PrivateDensityBaseline(6, 2, 1.0, alphabet=3, seed=0).run(panel)

    def test_run_requires_fresh_baseline(self):
        panel = two_state_markov(50, 4, 0.8, 0.1, seed=1)
        baseline = PrivateDensityBaseline(4, 2, 1.0, seed=0)
        baseline.observe(panel.matrix[:, 0])
        with pytest.raises(ConfigurationError, match="fresh"):
            baseline.run(panel)


class TestReleaseSurfaces:
    @pytest.fixture
    def panel(self):
        return two_state_markov(400, 6, 0.85, 0.1, seed=2)

    def test_no_release_before_window_fills(self, panel):
        baseline = PrivateDensityBaseline(6, 3, 1.0, seed=0)
        release = baseline.observe(panel.matrix[:, 0])
        assert isinstance(release, DensityRelease)
        with pytest.raises(NotFittedError):
            release.density(1)
        with pytest.raises(NotFittedError):
            release.synthetic_data()

    def test_densities_normalized(self, panel):
        release = PrivateDensityBaseline(6, 3, 0.5, seed=3).run(panel)
        for t in range(3, 7):
            density = release.density(t)
            assert density.shape == (8,)
            assert density.min() >= 0.0
            assert density.sum() == pytest.approx(1.0)

    def test_synthetic_panels_fresh_each_round(self, panel):
        release = PrivateDensityBaseline(6, 3, 0.5, seed=4).run(panel)
        latest = release.synthetic_data()
        assert latest is release.synthetic_data(6)
        assert latest.n_individuals == panel.n_individuals
        assert latest.horizon == 3
        # Rounds are independent samples, not views of one panel.
        assert release.synthetic_data(5) is not latest

    def test_n_synthetic_override(self, panel):
        release = PrivateDensityBaseline(
            6, 3, 0.5, n_synthetic=77, seed=5
        ).run(panel)
        assert release.synthetic_data(6).n_individuals == 77

    def test_infinite_rho_is_oracle(self, panel):
        baseline = PrivateDensityBaseline(6, 3, math.inf, seed=6)
        release = baseline.run(panel)
        truth = np.bincount(panel.window_codes(6, 3), minlength=8)
        expected = truth / truth.sum()
        assert np.allclose(release.density(6), expected)
        assert baseline.zcdp_spent() == 0.0

    def test_budget_accounting(self, panel):
        baseline = PrivateDensityBaseline(6, 3, 0.5, seed=7)
        baseline.run(panel)
        # 4 release rounds at rho/4 each exhaust the budget exactly.
        assert baseline.zcdp_spent() == pytest.approx(0.5)

    def test_deterministic_under_seed(self, panel):
        first = PrivateDensityBaseline(6, 3, 0.5, seed=8).run(panel)
        second = PrivateDensityBaseline(6, 3, 0.5, seed=8).run(panel)
        assert np.array_equal(first.density(6), second.density(6))
        assert np.array_equal(
            first.synthetic_data(6).matrix, second.synthetic_data(6).matrix
        )


class TestAnswers:
    @pytest.fixture
    def panel(self):
        return two_state_markov(500, 6, 0.85, 0.1, seed=9)

    def test_answer_matches_marginal_dot_weights(self, panel):
        release = PrivateDensityBaseline(6, 3, math.inf, seed=0).run(panel)
        query = AtLeastMOnes(3, 1)
        answer = release.answer(query, 6)
        truth = query.evaluate(panel, 6)
        assert answer == pytest.approx(truth)

    def test_narrower_query_marginalized(self, panel):
        release = PrivateDensityBaseline(6, 3, math.inf, seed=0).run(panel)
        query = AtLeastMOnes(2, 1)
        assert release.answer(query, 6) == pytest.approx(query.evaluate(panel, 6))

    def test_too_wide_query_rejected(self, panel):
        release = PrivateDensityBaseline(6, 3, 1.0, seed=0).run(panel)
        with pytest.raises(ConfigurationError, match="width"):
            release.answer(AtLeastMOnes(4, 1), 6)

    def test_non_window_query_rejected(self, panel):
        release = PrivateDensityBaseline(6, 3, 1.0, seed=0).run(panel)
        with pytest.raises(ConfigurationError, match="window query"):
            release.answer(object(), 6)

    def test_alphabet_mismatch_rejected(self, panel):
        release = PrivateDensityBaseline(6, 2, 1.0, seed=0).run(panel)
        with pytest.raises(ConfigurationError, match="alphabet"):
            release.answer(CategoryAtLeastM(2, 3, 1, 1), 6)


class TestCategorical:
    def test_categorical_alphabet(self):
        panel = employment_status_panel(300, 6, alphabet=3, seed=10)
        release = PrivateDensityBaseline(6, 2, math.inf, alphabet=3, seed=0).run(
            panel
        )
        assert release.density(6).shape == (9,)
        sample = release.synthetic_data(6)
        assert isinstance(sample, CategoricalDataset)
        assert sample.alphabet == 3
        query = CategoryAtLeastM(2, 3, 1, 1)
        assert release.answer(query, 6) == pytest.approx(
            query.evaluate(panel, 6), abs=0.05
        )
