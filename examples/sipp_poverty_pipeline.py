"""The full SIPP poverty pipeline — the paper's Section 5 walkthrough.

Steps, mirroring the paper exactly:

1. obtain raw SIPP-like person-month records (here: simulated, since the
   census download is unavailable offline — see DESIGN.md §4);
2. preprocess: one series per household, binarize THINCPOVT2 < 1, drop
   households with missing months;
3. synthesize with Algorithm 1 (k=3 quarterly windows, rho=0.005);
4. answer the four Figure-1 statistics per quarter, biased and debiased,
   against the ground truth.

Run:  python examples/sipp_poverty_pipeline.py
"""

from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.sipp import preprocess_sipp, simulate_sipp_raw
from repro.queries.workloads import quarter_ends, quarterly_poverty_workload

RHO = 0.005
WINDOW = 3


def main() -> None:
    # Step 1: raw person-month records (multiple persons per household,
    # continuous income-to-poverty ratios, missing interviews).
    raw = simulate_sipp_raw(n_households=26000, seed=2021)
    print(f"raw SIPP-like records: {raw.n_rows} person-months")

    # Step 2: the paper's preprocessing.
    panel = preprocess_sipp(raw)
    print(
        f"after preprocessing: {panel.n_individuals} complete households "
        f"x {panel.horizon} months "
        f"(monthly poverty rate {panel.matrix.mean():.3f})"
    )

    # Step 3: continual synthesis.
    synthesizer = FixedWindowSynthesizer(
        horizon=panel.horizon,
        window=WINDOW,
        rho=RHO,
        seed=94,
        noise_method="vectorized",
    )
    release = synthesizer.run(panel)
    print(
        f"release: {release.n_synthetic} synthetic households, "
        f"n_pad={release.padding.n_pad} per bin, "
        f"negative-count events={release.negative_count_events}"
    )

    # Step 4: the Figure-1 statistics.
    workload = quarterly_poverty_workload(WINDOW)
    quarters = quarter_ends(panel.horizon, WINDOW)
    header = f"{'query':<30s} {'quarter':>7s} {'truth':>8s} {'biased':>8s} {'debiased':>9s}"
    print("\n" + header)
    print("-" * len(header))
    for query in workload:
        for quarter_index, t in enumerate(quarters, start=1):
            truth = query.evaluate(panel, t)
            biased = release.answer(query, t, debias=False)
            debiased = release.answer(query, t, debias=True)
            print(
                f"{query.name:<30s} {quarter_index:>7d} {truth:>8.4f} "
                f"{biased:>8.4f} {debiased:>9.4f}"
            )

    print(
        "\nNote how the biased answers overshoot the truth by the public "
        "padding mass while the debiased answers track it — the contrast "
        "between the left and right panels of Figures 5-7."
    )


if __name__ == "__main__":
    main()
