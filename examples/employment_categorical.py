"""Categorical extension: continual synthetic employment-status data.

The paper notes its fixed-window solution "naturally extend[s] to handle
categorical data with more than 2 categories" (§1).  This example tracks a
3-state SIPP-style employment variable — employed (0), unemployed (1), out
of the labor force (2) — releases continual synthetic data preserving all
two-month transition patterns, attaches noise-aware confidence intervals,
and exports the synthetic microdata + public metadata to CSV for analysts.

Run:  python examples/employment_categorical.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.data.categorical import categorical_markov
from repro.data.io import load_panel_csv, save_release_csv
from repro.queries.categorical import CategoricalPatternQuery, CategoryAtLeastM

N = 15000
HORIZON = 12
WINDOW = 2  # month-to-month transition patterns
ALPHABET = 3
RHO = 0.01

STATE_NAMES = {0: "employed", 1: "unemployed", 2: "out of labor force"}

# Monthly transition dynamics: employment is sticky, unemployment churns.
TRANSITIONS = np.array(
    [
        [0.955, 0.025, 0.020],  # employed ->
        [0.280, 0.600, 0.120],  # unemployed ->
        [0.040, 0.060, 0.900],  # out of labor force ->
    ]
)


def main() -> None:
    panel = categorical_markov(
        N, HORIZON, TRANSITIONS, initial=[0.78, 0.05, 0.17], seed=30
    )
    print(f"panel: {panel.n_individuals} workers x {panel.horizon} months, "
          f"{panel.alphabet} labor-force states")

    synthesizer = CategoricalWindowSynthesizer(
        horizon=HORIZON,
        window=WINDOW,
        alphabet=ALPHABET,
        rho=RHO,
        seed=31,
        noise_method="vectorized",
    )
    release = synthesizer.run(panel)
    print(
        f"release: {release.n_synthetic} synthetic workers, "
        f"n_pad={release.n_pad} per bin ({ALPHABET**WINDOW} bins), "
        f"rho spent={synthesizer.accountant.spent:.4f}"
    )

    # Transition-pattern queries: e.g. "unemployed -> employed" this month.
    print("\nmonth-to-month transition fractions at t=6 (debiased vs truth):")
    for from_state in range(ALPHABET):
        for to_state in range(ALPHABET):
            query = CategoricalPatternQuery(2, (from_state, to_state), ALPHABET)
            estimate = release.answer(query, 6)
            truth = query.evaluate(panel, 6)
            print(
                f"  {STATE_NAMES[from_state]:<19s} -> {STATE_NAMES[to_state]:<19s} "
                f"estimate={estimate:.4f}  truth={truth:.4f}"
            )

    # A workload-style query: unemployed in at least 1 of the last 2 months.
    # answer_series batch-evaluates the whole release table in one matmul.
    query = CategoryAtLeastM(WINDOW, ALPHABET, category=1, m=1)
    times = list(range(WINDOW, HORIZON + 1, 2))
    estimates = release.answer_series(query, times)
    print(f"\n'{query.name}' over time:")
    for t, estimate in zip(times, estimates):
        truth = query.evaluate(panel, t)
        print(f"  t={t:2d}  estimate={estimate:.4f}  truth={truth:.4f}")

    # Export for analysts: microdata CSV + public metadata JSON.
    with tempfile.TemporaryDirectory() as tmp:
        csv_path, json_path = save_release_csv(release, Path(tmp), stem="employment")
        reloaded = load_panel_csv(csv_path, alphabet=ALPHABET)
        print(
            f"\nexported {csv_path.name} ({reloaded.n_individuals} rows) "
            f"+ {json_path.name} (public debiasing metadata)"
        )

    print(
        "\nAnalysts can reproduce every debiased answer offline from the "
        "CSV + metadata alone — padding and window width are public."
    )


if __name__ == "__main__":
    main()
