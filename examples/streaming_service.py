"""Online serving walkthrough: ingest, checkpoint, crash, resume, shard.

Simulates the deployment story the paper implies but the offline drivers
skip: a curator process receives one report column per month, publishes
after every round, survives a mid-stream restart via checkpoint/restore,
and scales out across shards.

Run with:  PYTHONPATH=src python examples/streaming_service.py
"""

import io

import numpy as np

from repro import HammingAtLeast
from repro.data import two_state_markov
from repro.serve import ShardedService, StreamingSynthesizer

HORIZON = 12
N = 5_000
RHO = 0.01


def main() -> None:
    panel = two_state_markov(N, HORIZON, p_stay=0.87, p_enter=0.017, seed=42)
    columns = list(panel.columns())
    query = HammingAtLeast(3)

    # -- a long-lived service, one column per round --------------------
    print(f"== streaming {HORIZON} rounds, n={N}, rho={RHO} ==")
    service = StreamingSynthesizer.cumulative(horizon=HORIZON, rho=RHO, seed=7)
    checkpoint = io.BytesIO()
    for month, column in enumerate(columns, start=1):
        release = service.observe(column)
        print(
            f"  month {month:2d}: published release t={release.t}, "
            f"P[>=3 poverty months] = {release.answer(query, month):.4f}"
        )
        if month == 6:
            service.checkpoint(checkpoint)
            print("  month  6: checkpoint written "
                  f"({len(checkpoint.getvalue())} bytes) — simulating a crash")

    # -- resume from the bundle and verify byte-identity ----------------
    checkpoint.seek(0)
    resumed = StreamingSynthesizer.restore(checkpoint)
    print(f"== restored at t={resumed.t}; replaying months 7..{HORIZON} ==")
    for column in columns[6:]:
        resumed.observe(column)
    identical = np.array_equal(
        service.release.threshold_table(), resumed.release.threshold_table()
    )
    print(f"  resumed stream byte-identical to uninterrupted: {identical}")
    assert identical

    # -- the same stream, sharded across 4 independent sub-populations --
    sharded = ShardedService(4, algorithm="cumulative", horizon=HORIZON, rho=RHO, seed=7)
    for column in columns:
        sharded.observe(column)
    print("== sharded service: K=4, per-shard budgets (parallel composition) ==")
    for index, (spent, remaining) in enumerate(sharded.shard_ledgers()):
        print(f"  shard {index}: spent {spent:.4f} zCDP, remaining {remaining:.4f}")
    print(f"  service-wide guarantee: {sharded.zcdp_spent():.4f}-zCDP (max, not sum)")
    print(f"  merged answer: {sharded.answer(query, HORIZON):.4f} "
          f"(unsharded: {service.release.answer(query, HORIZON):.4f}, "
          f"truth: {(np.cumsum(panel.matrix, axis=1)[:, -1] >= 3).mean():.4f})")


if __name__ == "__main__":
    main()
