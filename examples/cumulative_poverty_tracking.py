"""Streaming cumulative tracking — Algorithm 2 month by month.

Demonstrates the *continual* nature of the release: reports arrive one
month at a time, and after every month the synthesizer emits an updated
synthetic panel whose Hamming-weight census matches the monotonized private
counters exactly.  All thresholds b = 1..T are maintained simultaneously at
no extra privacy cost (the release of Figures 2/8 picks out b = 3).

Run:  python examples/cumulative_poverty_tracking.py
"""

from repro.core.cumulative import CumulativeSynthesizer
from repro.data.generators import two_state_markov
from repro.queries.cumulative import HammingAtLeast

N = 10000
HORIZON = 12
RHO = 0.01
THRESHOLDS = (1, 3, 6)


def main() -> None:
    # Poverty-like panel: persistent spells, ~11% monthly rate.
    panel = two_state_markov(
        N, HORIZON, p_stay=0.87, p_enter=0.017, seed=5
    )
    synthesizer = CumulativeSynthesizer(
        horizon=HORIZON, rho=RHO, seed=6, noise_method="vectorized"
    )

    print(f"streaming {HORIZON} monthly reports for {N} households (rho={RHO})")
    header = "month  " + "  ".join(
        f"b>={b}: est/truth" for b in THRESHOLDS
    )
    print(header)
    print("-" * len(header))

    # The synthesizer consumes one report vector per month; the release is
    # usable after every single month — that is the continual guarantee.
    for t, column in enumerate(panel.columns(), start=1):
        release = synthesizer.observe(column)
        cells = []
        for b in THRESHOLDS:
            estimate = release.answer(HammingAtLeast(b), t)
            truth = HammingAtLeast(b).evaluate(panel, t)
            cells.append(f"{estimate:.4f}/{truth:.4f}")
        print(f"{t:>5d}  " + "  ".join(f"{cell:>15s}" for cell in cells))

    # The synthetic panel itself is consistent: individual histories only
    # ever grow, so every cumulative statistic is monotone by construction.
    release = synthesizer.release
    assert synthesizer.check_invariants(), "release invariants violated"
    table = release.threshold_table()
    print("\nmonotonized threshold table S^_b^t (rows t=0..12, cols b=0..6):")
    for t in range(table.shape[0]):
        print("  " + " ".join(f"{table[t, b]:>6d}" for b in range(7)))

    print(
        f"\nprivacy: rho={synthesizer.accountant.spent:.4f} zCDP across "
        f"{len(synthesizer.accountant.charges)} per-threshold stream counters"
    )


if __name__ == "__main__":
    main()
