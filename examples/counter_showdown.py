"""Stream-counter showdown — plugging different counters into Algorithm 2.

The paper (§1.1) notes Algorithm 2 works with *any* DP stream counter and
that counters with better constants "may yield improved practical results".
This example compares all five built-in counters twice:

1. standalone, on a single long stream (predicted vs empirical error);
2. inside Algorithm 2 on a longitudinal panel (end-to-end max error).

Run:  python examples/counter_showdown.py
"""

import numpy as np

from repro.core.cumulative import CumulativeSynthesizer
from repro.data.generators import two_state_markov
from repro.queries.cumulative import HammingAtLeast
from repro.rng import spawn
from repro.streams.registry import available_counters, make_counter

HORIZON = 64
RHO = 0.2
REPS = 30


def standalone_comparison() -> None:
    print(f"standalone counters: stream length {HORIZON}, rho={RHO}, {REPS} reps")
    rng = np.random.default_rng(0)
    stream = rng.integers(0, 50, size=HORIZON)
    truth = np.cumsum(stream)
    header = (
        f"{'counter':<20s} {'predicted sd(T)':>16s} {'empirical sd':>13s} {'max |err|':>10s}"
    )
    print(header)
    print("-" * len(header))
    for name in available_counters():
        finals, worst = [], 0.0
        for seed in range(REPS):
            counter = make_counter(
                name, horizon=HORIZON, rho=RHO, seed=seed, noise_method="vectorized"
            )
            outputs = counter.run(stream)
            finals.append(outputs[-1] - truth[-1])
            worst = max(worst, float(np.abs(outputs - truth).max()))
        predicted = make_counter(name, horizon=HORIZON, rho=RHO).error_stddev(HORIZON)
        print(
            f"{name:<20s} {predicted:>16.2f} {np.std(finals):>13.2f} {worst:>10.1f}"
        )


def end_to_end_comparison() -> None:
    n, horizon = 5000, 12
    panel = two_state_markov(n, horizon, p_stay=0.85, p_enter=0.02, seed=1)
    print(
        f"\ninside Algorithm 2: n={n}, T={horizon}, rho=0.02, "
        f"max error over all (b, t), median of 10 runs"
    )
    header = f"{'counter':<20s} {'max error':>10s}"
    print(header)
    print("-" * len(header))
    for name in available_counters():
        errors = []
        for generator in spawn(2, 10):
            synthesizer = CumulativeSynthesizer(
                horizon=horizon,
                rho=0.02,
                counter=name,
                seed=generator,
                noise_method="vectorized",
            )
            release = synthesizer.run(panel)
            worst = max(
                abs(
                    release.answer(HammingAtLeast(b), t)
                    - HammingAtLeast(b).evaluate(panel, t)
                )
                for b in range(1, horizon + 1)
                for t in range(1, horizon + 1)
            )
            errors.append(worst)
        print(f"{name:<20s} {float(np.median(errors)):>10.4f}")


def main() -> None:
    standalone_comparison()
    end_to_end_comparison()
    print(
        "\nTakeaway: the binary tree (the paper's choice) already beats the "
        "naive counter by a wide margin; the Honaker refinement and the "
        "square-root factorization shave off further constants, exactly as "
        "the paper's related-work discussion anticipates."
    )


if __name__ == "__main__":
    main()
