"""Why consistency matters — Algorithm 1 vs recompute-from-scratch.

The paper's introduction motivates the whole model with one pathology:
without consistency, "it may be possible for the number of synthetic
individuals who have ever experienced a 6-month unemployment spell to
decrease from time step t to t+1".  This example makes that concrete:

* the recompute baseline regenerates an unrelated synthetic population
  every round, so its "ever had a long spell" series jumps up AND down;
* Algorithm 1 extends one persistent population, so the same series is
  monotone by construction — and its per-round error is smaller too
  (no sqrt(T) composition penalty).

Run:  python examples/consistency_vs_recompute.py
"""

from repro.baselines.recompute import RecomputeBaseline, ever_spell_fraction
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.generators import two_state_markov
from repro.queries.window import AtLeastMOnes

N = 2000
HORIZON = 12
WINDOW = 3
RHO = 0.05
SPELL = 5  # months of uninterrupted poverty


def main() -> None:
    panel = two_state_markov(N, HORIZON, p_stay=0.85, p_enter=0.02, seed=11)
    truth_series = [
        ever_spell_fraction(panel, SPELL, t) for t in range(WINDOW, HORIZON + 1)
    ]

    algorithm = FixedWindowSynthesizer(
        horizon=HORIZON, window=WINDOW, rho=RHO, seed=12, noise_method="vectorized"
    )
    algo_release = algorithm.run(panel)
    algo_series = [
        ever_spell_fraction(algo_release.synthetic_data(t), SPELL, t)
        for t in range(WINDOW, HORIZON + 1)
    ]

    baseline = RecomputeBaseline(
        horizon=HORIZON, window=WINDOW, rho=RHO, seed=2, noise_method="vectorized"
    )
    base_release = baseline.run(panel)
    base_series = base_release.ever_spell_series(SPELL)

    print(f"fraction ever in a >= {SPELL}-month poverty spell, by month:")
    header = f"{'month':>5s} {'truth':>8s} {'algorithm 1':>12s} {'recompute':>10s}"
    print(header)
    print("-" * len(header))
    for i, t in enumerate(range(WINDOW, HORIZON + 1)):
        marker = ""
        if i > 0 and base_series[i] < base_series[i - 1] - 1e-12:
            marker = "  <- DECREASED (consistency violation)"
        print(
            f"{t:>5d} {truth_series[i]:>8.4f} {algo_series[i]:>12.4f} "
            f"{base_series[i]:>10.4f}{marker}"
        )

    decreases = sum(
        1 for a, b in zip(base_series, base_series[1:]) if b < a - 1e-12
    )
    algo_decreases = sum(
        1 for a, b in zip(algo_series, algo_series[1:]) if b < a - 1e-12
    )
    print(
        f"\nconsistency violations: algorithm 1 = {algo_decreases} "
        f"(guaranteed 0), recompute baseline = {decreases}"
    )

    # Accuracy on an ordinary supported query, same total budget.
    query = AtLeastMOnes(WINDOW, 1)
    algo_error = max(
        abs(algo_release.answer(query, t) - query.evaluate(panel, t))
        for t in range(WINDOW, HORIZON + 1)
    )
    base_error = max(
        abs(base_release.answer(query, t) - query.evaluate(panel, t))
        for t in range(WINDOW, HORIZON + 1)
    )
    print(
        f"max error on '{query.name}': algorithm 1 = {algo_error:.4f}, "
        f"recompute = {base_error:.4f} "
        f"(the sqrt(T-k+1) composition penalty at work)"
    )


if __name__ == "__main__":
    main()
