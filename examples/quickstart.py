"""Quickstart: continual DP synthetic data in ~40 lines.

Loads the (simulated) SIPP 2021 poverty panel, runs both of the paper's
synthesizers at the paper's privacy budget, and answers a few queries.

Run:  python examples/quickstart.py
"""

from repro import (
    AtLeastMOnes,
    CumulativeSynthesizer,
    FixedWindowSynthesizer,
    HammingAtLeast,
    load_sipp_2021,
)

RHO = 0.005  # total zCDP budget, as in the paper's experiments


def main() -> None:
    # N=23374 households x T=12 months; 1 = household in poverty that month.
    panel = load_sipp_2021(seed=0)
    print(f"panel: {panel.n_individuals} households x {panel.horizon} months")

    # --- Algorithm 1: preserve every quarterly (k=3) window histogram.
    window_synth = FixedWindowSynthesizer(
        horizon=panel.horizon, window=3, rho=RHO, seed=1, noise_method="vectorized"
    )
    window_release = window_synth.run(panel)
    query = AtLeastMOnes(3, 1)  # in poverty at least one month of the quarter
    print("\nquarterly 'at least one month in poverty' (debiased vs truth):")
    for t in (3, 6, 9, 12):
        estimate = window_release.answer(query, t)  # debiased by default
        truth = query.evaluate(panel, t)
        print(f"  t={t:2d}  estimate={estimate:.4f}  truth={truth:.4f}")

    # --- Algorithm 2: preserve every cumulative Hamming-weight threshold.
    cumulative_synth = CumulativeSynthesizer(
        horizon=panel.horizon, rho=RHO, seed=2, noise_method="vectorized"
    )
    cumulative_release = cumulative_synth.run(panel)
    query = HammingAtLeast(3)  # at least 3 months in poverty so far
    print("\ncumulative 'at least 3 months in poverty' (synthetic vs truth):")
    for t in (3, 6, 9, 12):
        estimate = cumulative_release.answer(query, t)
        truth = query.evaluate(panel, t)
        print(f"  t={t:2d}  estimate={estimate:.4f}  truth={truth:.4f}")

    # Both releases are actual record panels you can hand to any analyst.
    synthetic = window_release.synthetic_data()
    print(
        f"\nsynthetic panel: {synthetic.n_individuals} records "
        f"(original n={window_release.n_original}, "
        f"padding n_pad={window_release.padding.n_pad} per bin)"
    )
    print(f"privacy spent: rho={window_synth.accountant.spent:.4f} zCDP "
          f"= ({window_synth.accountant.epsilon(1e-6):.2f}, 1e-6)-DP")


if __name__ == "__main__":
    main()
