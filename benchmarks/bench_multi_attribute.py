"""Multi-attribute composition — overhead and pinned-seed accuracy.

Not a paper figure: pins the performance and accuracy contract of
:class:`~repro.core.multi_attribute.MultiAttributeSynthesizer`.  Two
gated metrics land in ``BENCH_*.json`` for ``check_regression.py``:

* ``composition_overhead_ratio`` — runtime of the d=2 composite
  (employment q=3 x income q=4, one cross pair) over the summed runtimes
  of the two standalone engines on the same panels.  Machine-independent
  (a ratio of runs on the same box); the cross-histogram mechanism and
  the frame plumbing are the only extra work, so the ratio must stay
  small (direction: lower).
* ``multiattr_mean_abs_error`` — mean absolute debiased error over a
  pinned seed/rep grid (byte-reproducible: every sampled bit is seeded),
  gating the accuracy of the budget split (direction: lower).
"""

import math
import time

import numpy as np
import pytest

from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.core.multi_attribute import MultiAttributeSynthesizer
from repro.data.categorical import (
    CategoricalDataset,
    categorical_markov,
    employment_status_panel,
    sticky_transitions,
)
from repro.queries.categorical import CategoryAtLeastM
from repro.rng import spawn

#: Acceptance ceiling for the composite-vs-standalone runtime ratio.
MAX_OVERHEAD_RATIO = 3.0

#: Pinned accuracy-grid parameters (deliberately not REPRO_BENCH_REPS:
#: the gated error metric must be byte-reproducible against the
#: committed baseline).
ACCURACY_REPS = 6
ACCURACY_SEED = 0


@pytest.mark.figure("multiattr-overhead")
def test_multi_attribute_composition_overhead(benchmark, figure_report):
    """d=2 composite vs the two standalone engines it wraps (ratio gate)."""
    n, horizon, window = 20000, 12, 3
    emp = employment_status_panel(n, horizon, seed=60)
    inc = categorical_markov(n, horizon, sticky_transitions(4), seed=61)
    specs = [
        {"name": "employment", "alphabet": 3},
        {"name": "income", "alphabet": 4},
    ]

    def run_composite(seed):
        synth = MultiAttributeSynthesizer(
            horizon, window, 0.02, attributes=specs, seed=seed,
            noise_method="vectorized",
        )
        start = time.perf_counter()
        synth.run({"employment": emp.matrix, "income": inc.matrix})
        return time.perf_counter() - start

    def run_standalone(panel, alphabet, seed):
        synth = CategoricalWindowSynthesizer(
            horizon, window, alphabet, 0.01, seed=seed,
            noise_method="vectorized",
        )
        start = time.perf_counter()
        synth.run(panel)
        return time.perf_counter() - start

    def experiment():
        rounds = 3
        composite = min(run_composite(70 + i) for i in range(rounds))
        standalone = min(
            run_standalone(emp, 3, 80 + i)
            + run_standalone(CategoricalDataset(inc.matrix, alphabet=4), 4, 90 + i)
            for i in range(rounds)
        )
        return composite, standalone

    composite, standalone = benchmark.pedantic(experiment, rounds=1, iterations=1)
    ratio = composite / standalone

    figure_report(
        "\n".join(
            [
                "### multiattr-overhead: composite vs standalone engines",
                f"params: n={n}, T={horizon}, k={window}, d=2 (q=3 x q=4)",
                f"standalone engines (sum): {standalone * 1000:8.1f} ms/run",
                f"d=2 composite           : {composite * 1000:8.1f} ms/run",
                f"overhead ratio          : {ratio:8.2f}x "
                f"(ceiling {MAX_OVERHEAD_RATIO}x)",
            ]
        ),
        metrics={"composition_overhead_ratio": ratio},
    )
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"d=2 composition costs {ratio:.2f}x the standalone engines "
        f"(ceiling {MAX_OVERHEAD_RATIO}x)"
    )


@pytest.mark.figure("multiattr-accuracy")
def test_multi_attribute_pinned_accuracy(benchmark, figure_report):
    """Pinned-seed debiased error of the d=2 budget split (exact gate)."""
    n, horizon, window, rho = 4000, 12, 3, 0.05
    emp = employment_status_panel(n, horizon, seed=62)
    inc = categorical_markov(n, horizon, sticky_transitions(4), seed=63)
    panels = {"employment": emp.matrix, "income": inc.matrix}
    specs = [
        {"name": "employment", "alphabet": 3},
        {"name": "income", "alphabet": 4},
    ]
    queries = {
        "employment": CategoryAtLeastM(window, 3, category=1, m=1),
        "income": CategoryAtLeastM(window, 4, category=1, m=1),
    }
    times = list(range(window, horizon + 1))

    oracle = MultiAttributeSynthesizer(
        horizon, window, math.inf, attributes=specs, seed=ACCURACY_SEED
    ).run(panels)
    truth = {
        name: np.array(
            [oracle.answer(queries[name], t, attribute=name) for t in times]
        )
        for name in panels
    }

    def experiment():
        errors = []
        for child in spawn(ACCURACY_SEED + 1, ACCURACY_REPS):
            release = MultiAttributeSynthesizer(
                horizon, window, rho, attributes=specs, seed=child,
                noise_method="vectorized",
            ).run(panels)
            for name in panels:
                answers = np.array(
                    [release.answer(queries[name], t, attribute=name) for t in times]
                )
                errors.append(np.abs(answers - truth[name]))
        return float(np.mean(errors))

    mean_abs_error = benchmark.pedantic(experiment, rounds=1, iterations=1)

    figure_report(
        "\n".join(
            [
                "### multiattr-accuracy: pinned-seed debiased error (d=2)",
                f"params: n={n}, T={horizon}, k={window}, rho={rho}, "
                f"reps={ACCURACY_REPS}, seed={ACCURACY_SEED}",
                f"mean |debiased error| : {mean_abs_error:.6f}",
            ]
        ),
        metrics={"multiattr_mean_abs_error": mean_abs_error},
    )
    assert 0.0 < mean_abs_error < 0.2