"""Shared fixtures for the benchmark harness.

Every ``bench_figure*.py`` module regenerates one paper figure: it runs the
corresponding experiment (repetition count controlled by
``REPRO_BENCH_REPS``, default 25; the paper uses 1000), times it with
pytest-benchmark, and asserts the figure's shape checks.

Measured-vs-paper series tables are collected during the run and printed in
the terminal summary (after pytest's output capture ends), and additionally
written as **structured JSON** to ``benchmarks/reports/BENCH_<test>.json``
— the same machine-readable family as ``BENCH_replication.json``, so CI can
archive every report and ``benchmarks/check_regression.py`` can gate the
numeric metrics against the committed baselines in ``benchmarks/baselines/``.

Report schema::

    {
      "benchmark": "<test name>",
      "schema": 1,
      "text": "<human-readable figure report>",
      "metrics": {"<name>": <number>, ...}   # optional, gate-able values
    }
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

_REPORTS: list[tuple[str, str]] = []
_REPORT_DIR = Path(__file__).parent / "reports"


def peak_rss_mb() -> float:
    """The process's peak resident set size so far, in MiB.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalise to
    MiB so reports are comparable.  Returns 0.0 where ``resource`` is
    unavailable (non-POSIX platforms).
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024**2 if sys.platform == "darwin" else 1024
    return rss / divisor


@pytest.fixture
def rss_probe():
    """Callable returning the process's peak RSS so far, in MiB."""
    return peak_rss_mb


@pytest.fixture
def figure_report(request):
    """Collect an experiment report for the terminal summary + a JSON file.

    Call as ``figure_report(text)`` for a plain figure table, or
    ``figure_report(text, metrics={...})`` to attach numeric metrics that
    the ``bench-regression`` CI gate compares against committed baselines.
    """

    def write(text: str, metrics: dict | None = None) -> None:
        name = request.node.name
        _REPORTS.append((name, text))
        _REPORT_DIR.mkdir(exist_ok=True)
        payload = {
            "benchmark": name,
            "schema": 1,
            "text": text,
            "peak_rss_mb": round(peak_rss_mb(), 2),
        }
        if metrics:
            payload["metrics"] = {
                key: float(value) for key, value in metrics.items()
            }
        path = _REPORT_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")

    return write


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("figure reports (paper vs measured)")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _REPORTS.clear()


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(id): benchmark regenerating one paper figure"
    )
