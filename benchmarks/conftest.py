"""Shared fixtures for the benchmark harness.

Every ``bench_figure*.py`` module regenerates one paper figure: it runs the
corresponding experiment (repetition count controlled by
``REPRO_BENCH_REPS``, default 25; the paper uses 1000), times it with
pytest-benchmark, and asserts the figure's shape checks.

Measured-vs-paper series tables are collected during the run and printed in
the terminal summary (after pytest's output capture ends), and additionally
written to ``benchmarks/reports/<test-name>.txt`` so a benchmark run leaves
a reviewable artifact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_REPORTS: list[tuple[str, str]] = []
_REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture
def figure_report(request):
    """Collect an experiment report for the terminal summary + a file."""

    def write(text: str) -> None:
        name = request.node.name
        _REPORTS.append((name, text))
        _REPORT_DIR.mkdir(exist_ok=True)
        (_REPORT_DIR / f"{name}.txt").write_text(text + "\n")

    return write


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("figure reports (paper vs measured)")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _REPORTS.clear()


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(id): benchmark regenerating one paper figure"
    )
