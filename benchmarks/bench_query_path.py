"""Query-path benchmark: batched workload serving vs the scalar loop.

Measures the two amortizations the vectorized read path exists for and
asserts both as an enforced contract (gated by the committed baseline in
``benchmarks/baselines/BENCH_test_query_path.json``):

1. **Workload throughput** — ``release.answer_batch(queries, times)``
   against the per-cell ``answer(query, t)`` loop on one cumulative
   release: the planner compiles the workload once and answers it with
   a handful of NumPy gathers instead of ``Q x T`` Python calls.  Gated
   at >= 10x (``workload_speedup``).
2. **Shard fan-out amortization** — ``ShardedService.answer_batch``
   under the ``process`` executor ships the whole compiled workload to
   each worker in one RPC instead of ``Q x T`` round-trips.  Gated at
   >= 3x (``process_speedup``) when the machine can fork.

Both are ratio-of-timings measured in the same process, so they stay
meaningful across differently-sized CI runners.  Bit-identity of the
fast path is asserted *before* any timing: a speedup over wrong answers
is worthless.

Scale knobs: ``REPRO_BENCH_ROWS`` (default ``20_000``) and
``REPRO_BENCH_REPS`` (default 5 timing repetitions, best-of).
"""

import math
import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.core import CumulativeSynthesizer
from repro.queries import HammingAtLeast, HammingExactly
from repro.queries.plan import AnswerCache
from repro.serve import ShardedService

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "20000"))
REPS = int(os.environ.get("REPRO_BENCH_REPS", "5"))
HORIZON = 64
SERVICE_HORIZON = 12
K = 4

HAS_FORK = "fork" in mp.get_all_start_methods()


def _workload(horizon):
    queries = [HammingAtLeast(b) for b in range(1, horizon // 2 + 1)]
    queries += [HammingExactly(b) for b in range(0, horizon // 4 + 1)]
    return queries, list(range(1, horizon + 1))


def _columns(horizon, seed):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 2, size=ROWS, dtype=np.int64) for _ in range(horizon)]


def _best_of(fn, reps=None):
    best = math.inf
    for _ in range(reps or REPS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _scalar_grid(answer, queries, times):
    grid = np.full((len(queries), len(times)), np.nan, dtype=np.float64)
    for qi, query in enumerate(queries):
        for ti, t in enumerate(times):
            if t >= query.min_time():
                grid[qi, ti] = answer(query, t)
    return grid


def test_query_path(figure_report):
    # --- leg 1: single-release workload throughput ---------------------
    synth = CumulativeSynthesizer(HORIZON, 0.5, seed=7)
    for column in _columns(HORIZON, seed=3):
        synth.observe(column)
    release = synth.release
    queries, times = _workload(HORIZON)

    batched = release.answer_batch(queries, times)
    reference = _scalar_grid(release.answer, queries, times)
    assert np.array_equal(batched, reference, equal_nan=True), (
        "batched answers must be bit-identical before timing means anything"
    )

    def batch_cold():
        synth._answer_cache = AnswerCache()  # defeat the memo: time the plan
        release.answer_batch(queries, times)

    scalar_s = _best_of(lambda: _scalar_grid(release.answer, queries, times))
    batch_s = _best_of(batch_cold)
    workload_speedup = scalar_s / batch_s

    # --- leg 2: process-executor fan-out amortization ------------------
    process_speedup = float("nan")
    if HAS_FORK:
        service = ShardedService(
            K,
            algorithm="cumulative",
            horizon=SERVICE_HORIZON,
            rho=0.5,
            seed=11,
            executor="process",
        )
        try:
            for column in _columns(SERVICE_HORIZON, seed=5):
                service.observe(column)
            svc_queries, svc_times = _workload(SERVICE_HORIZON)
            merged = service.answer_batch(svc_queries, svc_times)
            svc_reference = _scalar_grid(service.answer, svc_queries, svc_times)
            assert np.array_equal(merged, svc_reference, equal_nan=True)

            def service_batch_cold():
                service._answer_cache = AnswerCache()
                service.answer_batch(svc_queries, svc_times)

            svc_scalar_s = _best_of(
                lambda: _scalar_grid(service.answer, svc_queries, svc_times)
            )
            svc_batch_s = _best_of(service_batch_cold)
            process_speedup = svc_scalar_s / svc_batch_s
        finally:
            service.close()

    cells = len(queries) * len(times)
    lines = [
        f"query path: {len(queries)} queries x {len(times)} rounds = {cells} cells",
        f"  scalar loop        {scalar_s * 1e3:8.2f} ms",
        f"  batched (cold)     {batch_s * 1e3:8.2f} ms   {workload_speedup:6.1f}x",
    ]
    metrics = {"workload_speedup": workload_speedup}
    if HAS_FORK:
        lines.append(
            f"  process fan-out: one RPC per worker vs per-cell round-trips "
            f"= {process_speedup:.1f}x"
        )
        metrics["process_speedup"] = process_speedup
    else:  # pragma: no cover - exercised only on fork-less platforms
        lines.append("  process fan-out: skipped (no fork start method)")
    figure_report("\n".join(lines), metrics=metrics)

    assert workload_speedup >= 10.0, (
        f"batched workload serving is only {workload_speedup:.1f}x the scalar "
        "loop; the planner contract is >= 10x"
    )
    if HAS_FORK:
        assert process_speedup >= 3.0, (
            f"amortized process fan-out is only {process_speedup:.1f}x; the "
            "contract is >= 3x"
        )


@pytest.mark.skipif(not HAS_FORK, reason="process executor needs fork")
def test_batched_answers_match_across_executors():
    """Same workload, same grid, byte-for-byte, on every executor."""
    grids = {}
    queries, times = _workload(SERVICE_HORIZON)
    columns = _columns(SERVICE_HORIZON, seed=5)
    for executor in ("serial", "thread", "process"):
        service = ShardedService(
            K,
            algorithm="cumulative",
            horizon=SERVICE_HORIZON,
            rho=0.5,
            seed=11,
            executor=executor,
        )
        try:
            for column in columns:
                service.observe(column)
            grids[executor] = service.answer_batch(queries, times)
        finally:
            service.close()
    assert np.array_equal(grids["serial"], grids["thread"], equal_nan=True)
    assert np.array_equal(grids["serial"], grids["process"], equal_nan=True)
