"""Figure 1 — SIPP quarterly poverty proportions (biased synthetic answers).

Paper setup: SIPP 2021 panel (N=23374, T=12), window k=3, rho=0.005, four
quarterly statistics, 1000 repetitions.  The density clouds of Figure 1 sit
visibly *above* the X ground-truth marks (padding bias); the debiased right
panels recover the truth.  Run with ``REPRO_BENCH_REPS=1000`` for the
paper-scale sweep.
"""

import pytest

from repro.experiments.config import bench_reps
from repro.experiments.sipp_window import run_sipp_window_experiment


@pytest.mark.figure("fig1")
def test_fig1_sipp_quarterly_poverty(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_sipp_window_experiment(
            rho=0.005,
            n_reps=bench_reps(),
            seed=1,
            experiment_id="fig1",
            debias=False,
        ),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
