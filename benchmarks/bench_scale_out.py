"""Scale-out benchmark: process-parallel shard stepping + streaming checkpoints.

Exercises the :mod:`repro.serve.executor` strategies at row scale and
asserts the two properties the scale-out layer exists for:

1. **Bit-exactness under parallelism** — the ``process`` strategy's
   merged answers, ledgers, and checkpoint bundle are byte-identical to
   ``serial``'s at benchmark scale, not just at unit-test scale.
2. **Sublinear checkpoint memory** — the streaming (v3) bundle writer
   spools arrays chunk-by-chunk, so its transient allocation peak stays
   far below the monolithic in-RAM ``arrays.npz`` (v2) writer's and
   barely grows with the state size.

Scale is controlled by environment variables so the same module serves
the CI smoke leg and full runs:

* ``REPRO_SCALE_ROWS`` — population size (default ``200_000``; the
  10M-user target of the scale-out work is ``REPRO_SCALE_ROWS=10000000``
  on a machine with the RAM and cores for it).
* ``REPRO_SCALE_ROUNDS`` — rounds to ingest (default ``6``).

Emitted metrics: ``rounds_per_sec`` (process strategy throughput),
``parallel_speedup_vs_serial`` (wall-clock ratio; only *asserted* when
the machine has >= 4 CPUs — a 1-core runner cannot show a speedup), and
``checkpoint_peak_ratio`` (streaming-vs-monolithic writer allocation
peak, a machine-portable ratio gated by the committed baseline).
"""

import io
import multiprocessing as mp
import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.queries import HammingAtLeast
from repro.serve import ShardedService, StreamingSynthesizer, write_bundle

ROWS = int(os.environ.get("REPRO_SCALE_ROWS", "200000"))
ROUNDS = int(os.environ.get("REPRO_SCALE_ROUNDS", "6"))
K = 4

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="process executor needs the fork start method",
)


def _columns(seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 2, size=ROWS, dtype=np.int64) for _ in range(ROUNDS)]


def _drive(executor: str, columns) -> tuple[ShardedService, float]:
    service = ShardedService(
        K,
        algorithm="cumulative",
        horizon=ROUNDS,
        rho=0.5,
        seed=11,
        executor=executor,
    )
    start = time.perf_counter()
    for column in columns:
        service.observe(column)
    return service, time.perf_counter() - start


def _observables(service) -> dict:
    buffer = io.BytesIO()
    service.checkpoint(buffer)
    return {
        "answers": [service.answer(HammingAtLeast(2), t) for t in (1, ROUNDS)],
        "ledgers": service.shard_ledgers(),
        "bundle": buffer.getvalue(),
    }


@needs_fork
@pytest.mark.figure("scale_out")
def test_process_executor_speedup_and_bit_exactness(figure_report, rss_probe):
    columns = _columns(seed=23)
    serial, serial_s = _drive("serial", columns)
    process, process_s = _drive("process", columns)

    reference = _observables(serial)
    observed = _observables(process)
    process.close()
    serial.close()
    assert observed["answers"] == reference["answers"]
    assert observed["ledgers"] == reference["ledgers"]
    assert observed["bundle"] == reference["bundle"]

    speedup = serial_s / process_s
    rounds_per_sec = ROUNDS / process_s
    cores = os.cpu_count() or 1
    if cores >= 4:
        # On capable hardware the four workers must actually run in
        # parallel; on small CI runners the bit-exactness is the contract.
        assert speedup >= 2.0, (
            f"process executor managed only {speedup:.2f}x over serial "
            f"with {cores} CPUs"
        )

    figure_report(
        "\n".join(
            [
                "scale-out: process-parallel shard stepping "
                f"(rows={ROWS}, rounds={ROUNDS}, K={K}, cpus={cores})",
                f"  serial   : {serial_s:8.3f} s",
                f"  process  : {process_s:8.3f} s "
                f"({rounds_per_sec:.2f} rounds/s)",
                f"  speedup  : {speedup:8.2f} x "
                "(asserted >= 2x only with >= 4 CPUs)",
                f"  peak rss : {rss_probe():8.1f} MiB",
                "  bit-exact: answers, ledgers, and checkpoint bundle "
                "match serial",
            ]
        ),
        metrics={
            "rounds_per_sec": rounds_per_sec,
            "parallel_speedup_vs_serial": speedup,
        },
    )


def _write_peak(path, state: dict, format_version: int) -> int:
    """Transient allocation peak (bytes) of one bundle write to disk.

    ``compress_arrays=False`` on both sides so the comparison isolates
    buffering behaviour (monolithic in-RAM npz vs per-array spooling)
    rather than DEFLATE ratios.
    """
    tracemalloc.start()
    try:
        write_bundle(
            path,
            kind="streaming",
            config={"bench": True},
            state=state,
            compress_arrays=False,
            format_version=format_version,
        )
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def _state_nbytes(node) -> int:
    if isinstance(node, np.ndarray):
        return node.nbytes
    if isinstance(node, dict):
        return sum(_state_nbytes(value) for value in node.values())
    return 0


@pytest.mark.figure("scale_out")
def test_streaming_checkpoint_memory_is_sublinear(figure_report, rss_probe, tmp_path):
    rng = np.random.default_rng(7)
    synth = StreamingSynthesizer.cumulative(horizon=ROUNDS, rho=0.5, seed=3)
    for _ in range(ROUNDS):
        synth.observe(rng.integers(0, 2, size=ROWS, dtype=np.int64))
    state = synth.synthesizer.state_dict()
    state_mb = _state_nbytes(state) / 1024**2

    streaming_peak = _write_peak(tmp_path / "v3.ckpt", state, format_version=3)
    monolithic_peak = _write_peak(tmp_path / "v2.ckpt", state, format_version=2)
    ratio = streaming_peak / monolithic_peak
    # The monolithic writer materializes the whole npz in RAM before the
    # zip sees a byte, so its peak tracks the total state size; the
    # streaming writer's peak tracks the largest single array (capped by
    # the 16 MiB spool chunk), which is what makes 10M-row checkpoints
    # possible without doubling resident memory.
    assert ratio < 1.0, (
        f"streaming writer peaked at {streaming_peak} bytes vs the "
        f"monolithic writer's {monolithic_peak}"
    )

    figure_report(
        "\n".join(
            [
                f"streaming checkpoint writer (rows={ROWS}, "
                f"state={state_mb:.1f} MiB)",
                f"  monolithic (v2) peak: {monolithic_peak / 1024**2:8.1f} MiB",
                f"  streaming  (v3) peak: {streaming_peak / 1024**2:8.1f} MiB",
                f"  peak ratio          : {ratio:8.3f} (lower is better)",
                f"  peak rss            : {rss_probe():8.1f} MiB",
            ]
        ),
        metrics={"checkpoint_peak_ratio": ratio},
    )
