"""Benchmark regression gate: compare ``reports/`` against ``baselines/``.

Turns the benchmark JSON reports (``benchmarks/reports/BENCH_*.json``)
into an **enforced performance contract**: every committed baseline in
``benchmarks/baselines/`` names the metrics it gates and the direction
that counts as "better"; a report metric that is worse than its baseline
by more than the tolerance factor (default 1.5x) fails the build.

Baselines deliberately gate machine-portable *ratios* (speedups of one
implementation over another measured in the same process), not absolute
wall-clock, so the gate is meaningful across differently-sized CI
runners.

Baseline schema (one file per report, same filename)::

    {
      "benchmark": "test_batched_speedup_at_sipp_scale",
      "metrics": {
        "batched_speedup_vs_serial": {"value": 6.0, "direction": "higher"}
      }
    }

Metric names resolve against the report's ``metrics`` mapping first and
then as a dotted path from the report root (so the richer
``BENCH_replication.json`` schema is gateable too, e.g.
``speedup_vs_serial.batched``).

Usage::

    python benchmarks/check_regression.py [--tolerance 1.5]
    python benchmarks/check_regression.py --self-test

``--self-test`` proves the gate has teeth: it degrades every gated
metric by the injection factor (default 2x — an injected 2x slowdown)
and asserts the degraded value *fails* while the committed report value
passes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
DEFAULT_REPORTS = BENCH_DIR / "reports"
DEFAULT_BASELINES = BENCH_DIR / "baselines"
DEFAULT_TOLERANCE = 1.5


def resolve_metric(report: dict, name: str):
    """Look up a gated metric in a report.

    Tries ``report["metrics"][name]`` first, then ``name`` as a dotted
    path from the report root.  Returns a float or ``None``.
    """
    metrics = report.get("metrics")
    if isinstance(metrics, dict) and name in metrics:
        return float(metrics[name])
    node = report
    for part in name.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, (int, float)) and not isinstance(node, bool):
        return float(node)
    return None


def is_regression(value: float, baseline: float, direction: str, tolerance: float) -> bool:
    """True when ``value`` is worse than ``baseline`` beyond ``tolerance``.

    ``direction`` is ``"higher"`` (throughput/speedup style metrics) or
    ``"lower"`` (latency style metrics).
    """
    if direction == "higher":
        return value < baseline / tolerance
    if direction == "lower":
        return value > baseline * tolerance
    raise ValueError(f"direction must be 'higher' or 'lower', got {direction!r}")


def check(
    reports_dir: Path, baselines_dir: Path, tolerance: float
) -> tuple[list[str], list[str]]:
    """Compare every baseline against its report.

    Returns ``(failures, lines)``: human-readable failure strings and a
    full per-metric log.
    """
    failures: list[str] = []
    lines: list[str] = []
    baseline_files = sorted(baselines_dir.glob("*.json"))
    if not baseline_files:
        failures.append(f"no baselines found in {baselines_dir}")
        return failures, lines
    for baseline_path in baseline_files:
        baseline = json.loads(baseline_path.read_text())
        report_path = reports_dir / baseline_path.name
        if not report_path.exists():
            failures.append(
                f"{baseline_path.name}: report missing (did the benchmark run?)"
            )
            continue
        report = json.loads(report_path.read_text())
        for name, spec in baseline.get("metrics", {}).items():
            reference = float(spec["value"])
            direction = str(spec.get("direction", "higher"))
            value = resolve_metric(report, name)
            if value is None:
                failures.append(f"{baseline_path.name}: metric {name!r} absent")
                continue
            bad = is_regression(value, reference, direction, tolerance)
            arrow = "REGRESSION" if bad else "ok"
            lines.append(
                f"{arrow:>10}  {baseline_path.name}::{name} = {value:.3f} "
                f"(baseline {reference:.3f}, {direction} is better, "
                f"tolerance {tolerance:g}x)"
            )
            if bad:
                failures.append(
                    f"{baseline_path.name}: {name} = {value:.3f} regressed past "
                    f"{tolerance:g}x of baseline {reference:.3f}"
                )
    return failures, lines


def degrade(value: float, direction: str, factor: float) -> float:
    """The metric value after an injected ``factor``-x slowdown."""
    return value / factor if direction == "higher" else value * factor


def self_test(reports_dir: Path, baselines_dir: Path, tolerance: float, factor: float) -> int:
    """Prove the gate catches an injected ``factor``-x slowdown.

    The slowdown is injected *at the contract level*: a machine whose
    metric sits exactly on the committed baseline regresses by
    ``factor``; the gate must flag it (which requires
    ``factor > tolerance``), while the actually-committed report value
    must pass untouched.
    """
    problems = 0
    checked = 0
    if factor <= tolerance:
        print(
            f"self-test: FAIL injection factor {factor:g} does not exceed the "
            f"tolerance {tolerance:g} — the gate cannot distinguish them"
        )
        problems += 1
    for baseline_path in sorted(baselines_dir.glob("*.json")):
        baseline = json.loads(baseline_path.read_text())
        report_path = reports_dir / baseline_path.name
        if not report_path.exists():
            print(f"self-test: SKIP {baseline_path.name} (no report)")
            continue
        report = json.loads(report_path.read_text())
        for name, spec in baseline.get("metrics", {}).items():
            reference = float(spec["value"])
            direction = str(spec.get("direction", "higher"))
            value = resolve_metric(report, name)
            if value is None:
                print(f"self-test: FAIL {name} missing from {report_path.name}")
                problems += 1
                continue
            checked += 1
            if is_regression(value, reference, direction, tolerance):
                print(
                    f"self-test: FAIL committed value of {name} already "
                    f"regresses ({value:.3f} vs {reference:.3f})"
                )
                problems += 1
            injected = degrade(reference, direction, factor)
            if not is_regression(injected, reference, direction, tolerance):
                print(
                    f"self-test: FAIL injected {factor:g}x slowdown of {name} "
                    f"({injected:.3f} vs baseline {reference:.3f}) slipped "
                    "past the gate"
                )
                problems += 1
            else:
                print(
                    f"self-test: ok  {name}: report value {value:.3f} passes, "
                    f"injected {factor:g}x slowdown at the contract level "
                    f"({injected:.3f}) is caught"
                )
    if checked == 0:
        print("self-test: FAIL no gated metrics found")
        problems += 1
    return problems


def main(argv=None) -> int:
    """CLI body; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reports", type=Path, default=DEFAULT_REPORTS)
    parser.add_argument("--baselines", type=Path, default=DEFAULT_BASELINES)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed worsening factor before a metric fails (default 1.5)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate catches an injected slowdown instead of gating",
    )
    parser.add_argument(
        "--injection-factor",
        type=float,
        default=2.0,
        help="slowdown factor injected by --self-test (default 2.0)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 1.0:
        parser.error("--tolerance must be >= 1.0")
    if args.self_test:
        problems = self_test(
            args.reports, args.baselines, args.tolerance, args.injection_factor
        )
        print(
            "self-test: PASS" if problems == 0 else f"self-test: {problems} problem(s)"
        )
        return 1 if problems else 0
    failures, lines = check(args.reports, args.baselines, args.tolerance)
    for line in lines:
        print(line)
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
