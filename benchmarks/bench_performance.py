"""Micro-benchmarks: sampler throughput, counter latency, synthesizer rounds.

These are conventional pytest-benchmark timings (multiple rounds) rather
than figure regenerations; they quantify the cost of each building block so
adopters can size their deployments.
"""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.analysis.replication import replicate_synthesizer
from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.generators import two_state_markov
from repro.dp.discrete_gaussian import DiscreteGaussianSampler
from repro.queries.cumulative import HammingAtLeast
from repro.streams.registry import make_counter


@pytest.fixture(scope="module")
def panel():
    return two_state_markov(23374, 12, p_stay=0.87, p_enter=0.017, seed=0)


class TestSamplerThroughput:
    def test_exact_discrete_gaussian_single_samples(self, benchmark):
        sampler = DiscreteGaussianSampler(Fraction(1000), seed=1, method="exact")
        benchmark(sampler.sample)

    def test_vectorized_discrete_gaussian_batch_100k(self, benchmark):
        sampler = DiscreteGaussianSampler(1000, seed=2, method="vectorized")
        benchmark(sampler.sample_array, 100_000)


class TestCounterLatency:
    @pytest.mark.parametrize(
        "name", ["binary_tree", "simple", "honaker", "sqrt_factorization", "block"]
    )
    def test_counter_full_stream(self, benchmark, name):
        stream = list(np.random.default_rng(3).integers(0, 100, size=64))

        def run_counter():
            counter = make_counter(
                name, horizon=64, rho=0.5, seed=4, noise_method="vectorized"
            )
            return counter.run(stream)

        benchmark(run_counter)


class TestSynthesizerRounds:
    def test_fixed_window_full_run_sipp_scale(self, benchmark, panel):
        def run():
            synth = FixedWindowSynthesizer(
                horizon=12, window=3, rho=0.005, seed=5, noise_method="vectorized"
            )
            return synth.run(panel)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_cumulative_full_run_sipp_scale(self, benchmark, panel):
        def run():
            synth = CumulativeSynthesizer(
                horizon=12, rho=0.005, seed=6, engine="scalar",
                noise_method="vectorized",
            )
            return synth.run(panel)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_cumulative_full_run_bank_engine(self, benchmark, panel):
        # Same workload as above on the vectorized CounterBank engine.
        def run():
            synth = CumulativeSynthesizer(
                horizon=12, rho=0.005, seed=6, engine="vectorized",
                noise_method="vectorized",
            )
            return synth.run(panel)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_fixed_window_scaling_in_window_width(self, benchmark, panel):
        # k=6 means 64 histogram bins: stresses the consistency projection.
        def run():
            synth = FixedWindowSynthesizer(
                horizon=12, window=6, rho=0.005, seed=7, noise_method="vectorized"
            )
            return synth.run(panel)

        benchmark.pedantic(run, rounds=2, iterations=1)

    def test_streaming_single_round_latency(self, benchmark, panel):
        synth = FixedWindowSynthesizer(
            horizon=12, window=3, rho=0.005, seed=8, noise_method="vectorized"
        )
        columns = iter(list(panel.columns()))

        def one_round():
            try:
                synth.observe(next(columns))
            except StopIteration:
                pass

        benchmark.pedantic(one_round, rounds=12, iterations=1)

    def test_noiseless_oracle_overhead(self, benchmark, panel):
        def run():
            synth = FixedWindowSynthesizer(
                horizon=12, window=3, rho=math.inf, seed=9
            )
            return synth.run(panel)

        benchmark.pedantic(run, rounds=3, iterations=1)


class TestReplicationStrategies:
    """The cross-repetition axis: 100-rep cumulative replication per strategy.

    One row per ``replicate_synthesizer`` strategy on the same SIPP-scale
    workload, so the perf trajectory captures the batched engine's win and
    the process pool's overhead alongside the per-run numbers above.
    """

    @pytest.mark.parametrize("strategy", ["serial", "process", "batched"])
    def test_cumulative_replication_100_reps(self, benchmark, panel, strategy):
        queries = [HammingAtLeast(3)]
        times = list(range(1, panel.horizon + 1))

        def factory(generator):
            return CumulativeSynthesizer(
                horizon=panel.horizon, rho=0.005, seed=generator,
                noise_method="vectorized",
            )

        def run():
            return replicate_synthesizer(
                factory, panel, queries, times, n_reps=100, seed=10,
                strategy=strategy,
            )

        benchmark.pedantic(run, rounds=2, iterations=1)
