"""Replication engine benchmarks: batched vs process vs serial.

The paper's figures repeat each synthesizer 1000 times on the same panel;
PR 1 vectorized stage 1 *within* a run, this module measures the
cross-repetition axis: ``replicate_synthesizer(strategy="batched")`` runs
all repetitions of Algorithm 2 as one ``(R, T)`` NumPy state machine.

Acceptance criteria asserted here:

* ≥10x batched-vs-serial wall-clock for 1000-rep cumulative replication at
  SIPP scale (horizon 12, n=23374); smoke runs (``REPRO_BENCH_REPS`` below
  100) assert a relaxed 3x so CI stays meaningful at small rep counts.
* Batched replication is bit-exact with serial in noiseless mode under a
  fixed seed, and charges a zCDP ledger identical to a serial run's.
* The vectorized ``_choose_within_groups`` (synthetic-store record
  selection) beats the per-group ``generator.choice`` loop it replaced.

Besides the human-readable figure report, the run emits a machine-readable
``benchmarks/reports/BENCH_replication.json`` with ops/sec and speedups —
CI parses it and archives it as the perf trajectory artifact.

Run explicitly (benchmarks are not collected by the tier-1 suite):

    PYTHONPATH=src python -m pytest benchmarks/bench_replication.py -v
"""

import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.replication import replicate_synthesizer
from repro.core.cumulative import CumulativeSynthesizer
from repro.core.replicated import replicate_cumulative
from repro.core.synthetic_store import _choose_within_groups
from repro.exceptions import ConsistencyError
from repro.experiments.config import bench_reps, default_n_jobs
from repro.experiments.sipp_window import sipp_panel
from repro.queries.cumulative import HammingAtLeast
from repro.rng import as_generator

RHO = 0.005  # the paper's Figure 2 budget
JSON_PATH = Path(__file__).parent / "reports" / "BENCH_replication.json"


@pytest.fixture(scope="module")
def panel():
    """The SIPP-scale panel (n=23374, T=12) every figure replicates over."""
    return sipp_panel()


def _factory(panel, rho=RHO):
    def factory(generator):
        return CumulativeSynthesizer(
            horizon=panel.horizon, rho=rho, seed=generator, noise_method="vectorized"
        )

    return factory


class TestReplicationSpeedup:
    def test_batched_speedup_at_sipp_scale(self, panel, figure_report):
        reps = bench_reps(fallback=1000)
        queries = [HammingAtLeast(3)]
        times = list(range(1, panel.horizon + 1))
        timings = {}
        for strategy in ("serial", "process", "batched"):
            start = time.perf_counter()
            replicate_synthesizer(
                _factory(panel), panel, queries, times,
                n_reps=reps, seed=0, strategy=strategy,
            )
            timings[strategy] = time.perf_counter() - start
        speedups = {s: timings["serial"] / timings[s] for s in timings}

        payload = {
            "benchmark": "replication",
            "workload": {
                "figure": "fig2 (cumulative, HammingAtLeast(3))",
                "n_reps": reps,
                "horizon": panel.horizon,
                "n_individuals": panel.n_individuals,
                "rho": RHO,
                # Worker pool width the process strategy ran with — the
                # process timing is meaningless without it.
                "process_n_jobs": default_n_jobs(),
            },
            "timings_s": {s: round(t, 6) for s, t in timings.items()},
            "ops_per_sec": {s: round(reps / t, 3) for s, t in timings.items()},
            "speedup_vs_serial": {s: round(v, 3) for s, v in speedups.items()},
        }
        JSON_PATH.parent.mkdir(exist_ok=True)
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

        figure_report(
            f"cumulative replication, R={reps}, T={panel.horizon}, "
            f"n={panel.n_individuals}\n"
            + "\n".join(
                f"  {s:8s}: {timings[s]:8.3f}s  ({reps / timings[s]:8.1f} reps/s, "
                f"{speedups[s]:6.1f}x vs serial)"
                for s in ("serial", "process", "batched")
            )
            + f"\n  JSON artifact: {JSON_PATH}",
            metrics={
                "batched_speedup_vs_serial": speedups["batched"],
                "batched_reps_per_sec": reps / timings["batched"],
            },
        )
        assert timings["batched"] < timings["serial"]
        # Acceptance: >= 10x at paper scale; smoke runs assert a relaxed 3x.
        target = 10.0 if reps >= 100 else 3.0
        assert speedups["batched"] >= target, payload


class TestBatchedEquivalence:
    def test_noiseless_bit_exact_under_fixed_seed(self, panel):
        queries = [HammingAtLeast(1), HammingAtLeast(3), HammingAtLeast(6)]
        times = list(range(1, panel.horizon + 1))
        kwargs = dict(
            dataset=panel, queries=queries, times=times, n_reps=3, seed=123
        )
        serial = replicate_synthesizer(
            _factory(panel, rho=math.inf), strategy="serial", **kwargs
        )
        batched = replicate_synthesizer(
            _factory(panel, rho=math.inf), strategy="batched", **kwargs
        )
        assert (serial.answers == batched.answers).all()
        assert (serial.truth == batched.truth).all()

    def test_zcdp_ledger_identical_per_rep(self, panel):
        replicated = replicate_cumulative(panel, 2, rho=RHO, seed=1)
        serial = CumulativeSynthesizer(
            horizon=panel.horizon, rho=RHO, seed=2, noise_method="vectorized"
        )
        serial.run(panel)
        assert replicated.accountant.charges == serial.accountant.charges


def _choose_within_groups_loop(group_of, n_groups, picks_per_group, generator):
    """The pre-vectorization reference: one ``generator.choice`` per group."""
    order = np.argsort(group_of, kind="stable")
    sorted_groups = group_of[order]
    boundaries = np.searchsorted(sorted_groups, np.arange(n_groups + 1))
    chosen = []
    for g in range(n_groups):
        start, stop = boundaries[g], boundaries[g + 1]
        need = int(picks_per_group[g])
        size = stop - start
        if need < 0 or need > size:
            raise ConsistencyError(
                f"group {g} has {size} records but {need} were requested"
            )
        if need == 0:
            continue
        members = order[start:stop]
        picked = generator.choice(size, size=need, replace=False)
        chosen.append(members[picked])
    if not chosen:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(chosen)


class TestChooseWithinGroups:
    def test_vectorized_selection_speedup(self, panel, figure_report):
        # The synthetic-store hot path: n records bucketed by Hamming
        # weight, a quota drawn from each bucket, every round.
        n = panel.n_individuals
        n_groups = panel.horizon + 1
        rng = np.random.default_rng(0)
        group_of = rng.integers(0, n_groups, size=n).astype(np.int64)
        sizes = np.bincount(group_of, minlength=n_groups)
        picks = (sizes * 0.3).astype(np.int64)
        rounds = 30

        generator = as_generator(1)
        start = time.perf_counter()
        for _ in range(rounds):
            loop_chosen = _choose_within_groups_loop(group_of, n_groups, picks, generator)
        loop_elapsed = time.perf_counter() - start

        generator = as_generator(1)
        start = time.perf_counter()
        for _ in range(rounds):
            vec_chosen = _choose_within_groups(group_of, n_groups, picks, generator)
        vec_elapsed = time.perf_counter() - start

        # Same per-group quotas exactly, whichever implementation.
        assert (
            np.bincount(group_of[vec_chosen], minlength=n_groups) == picks
        ).all()
        assert vec_chosen.shape == loop_chosen.shape

        speedup = loop_elapsed / vec_elapsed
        figure_report(
            f"_choose_within_groups, n={n}, groups={n_groups}, {rounds} rounds\n"
            f"  per-group choice loop : {loop_elapsed / rounds * 1e3:7.2f} ms/round\n"
            f"  random-key argsort    : {vec_elapsed / rounds * 1e3:7.2f} ms/round\n"
            f"  speedup               : {speedup:7.1f}x",
            metrics={"selection_speedup": speedup},
        )
        assert vec_elapsed < loop_elapsed, (loop_elapsed, vec_elapsed)
