"""Figure 7 — SIPP quarterly poverty at rho=0.05, biased vs debiased.

The highest-budget variant: noise nearly vanishes, but the padding bias
remains until debiased (the gap between the left and right panels).
"""

import pytest

from repro.experiments.config import bench_reps
from repro.experiments.sipp_window import run_sipp_window_experiment


@pytest.mark.figure("fig7")
def test_fig7_sipp_quarterly_rho_005(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_sipp_window_experiment(
            rho=0.05,
            n_reps=bench_reps(),
            seed=7,
            experiment_id="fig7",
            debias=False,
            include_debiased_panel=True,
        ),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
