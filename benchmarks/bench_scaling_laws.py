"""Scaling-law sweeps — error vs rho and vs n.

Validates the two clean scalings the paper's bounds predict: debiased
error ∝ rho^(-1/2) at fixed n (Theorem 3.2's noise scale) and ∝ 1/n at
fixed rho (count-scale noise is population-independent).  The benchmark
fits log-log slopes and asserts they land near the theoretical exponents.
"""

import pytest

from repro.experiments.config import bench_reps
from repro.experiments.sweeps import run_population_sweep, run_rho_sweep


@pytest.mark.figure("sweep-rho")
def test_error_scales_inverse_sqrt_rho(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_rho_sweep(n_reps=max(bench_reps() // 2, 10), seed=40),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()


@pytest.mark.figure("sweep-n")
def test_error_scales_inverse_n(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_population_sweep(n_reps=max(bench_reps() // 2, 10), seed=41),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
