"""Figure 8 — appendix twin of Figure 2 (cumulative, b=3, rho=0.005).

"While Algorithm 2 generates synthetic data for all time thresholds b from
1..T simultaneously, we here focus on the results for setting the threshold
to b = 3" — this bench additionally verifies two neighboring thresholds to
demonstrate the all-b release.
"""

import pytest

from repro.experiments.config import bench_reps
from repro.experiments.sipp_cumulative import run_sipp_cumulative_experiment


@pytest.mark.figure("fig8")
def test_fig8_sipp_cumulative_b3(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_sipp_cumulative_experiment(
            rho=0.005, n_reps=bench_reps(), seed=8, experiment_id="fig8", b=3
        ),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()


@pytest.mark.figure("fig8")
def test_fig8_other_thresholds_released_simultaneously(benchmark, figure_report):
    # The same release answers b=2 and b=4 at no extra privacy cost.
    result = benchmark.pedantic(
        lambda: run_sipp_cumulative_experiment(
            rho=0.005,
            n_reps=max(bench_reps() // 2, 3),
            seed=9,
            experiment_id="fig8-b4",
            b=4,
        ),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
