"""Counter ablation — Algorithm 2 with every registered stream counter.

Paper §1.1: "Stream counters enjoying improved concrete accuracy guarantees
have been the focus of recent attention ... using them in place of the tree
counter in our work may yield improved practical results."  This benchmark
quantifies that: same data, same budget, five different counters.
"""

import pytest

from repro.experiments.ablations import run_counter_ablation
from repro.experiments.config import bench_reps


@pytest.mark.figure("abl-counter")
def test_counter_ablation(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_counter_ablation(n_reps=max(bench_reps() // 2, 5), seed=10),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
