"""Recovery benchmark: journal overhead and checkpoint-backed restart speed.

Measures the two costs the fault-tolerance layer is allowed to charge
and asserts both stay cheap:

1. **Journal append overhead** — the durable write-ahead append
   (serialize + checksum + write + flush + fsync) of every round's
   release record.  The ``journal_overhead_ratio`` metric is the
   journal time as a fraction of the *supervised* serving time — the
   acknowledgement path the append actually sits on — and must stay a
   few percent.  Columns are journaled in a compact encoding
   (bit-packed binary, one-byte category codes), which is what keeps
   the durable payload small enough for this to hold; the ratio
   against the bare unsupervised ingest is reported for context.
2. **Recovery speedup vs cold restart** — re-attaching a supervised
   service from its newest checkpoint (restore + empty journal tail)
   versus a cold restart that rebuilds from ``service.json`` and
   replays the entire journal.  Rolling checkpoints exist so operators
   never pay the cold path; ``recovery_speedup_vs_cold`` gates that
   they actually buy something.

Both metrics are same-process ratios, machine-portable, and gated by a
committed baseline in ``benchmarks/baselines/``.  Scale knobs:

* ``REPRO_RECOVERY_ROWS`` — population size (default ``50_000``);
* ``REPRO_RECOVERY_ROUNDS`` — rounds to ingest (default ``12``).
"""

import os
import shutil
import time

import numpy as np
import pytest

from repro.serve import ReleaseJournal, RetryPolicy, ShardedService, SupervisedService

ROWS = int(os.environ.get("REPRO_RECOVERY_ROWS", "50000"))
ROUNDS = int(os.environ.get("REPRO_RECOVERY_ROUNDS", "12"))
K = 4
KWARGS = dict(algorithm="cumulative", horizon=ROUNDS, rho=0.5)


def _columns(seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 2, size=ROWS, dtype=np.int64) for _ in range(ROUNDS)]


@pytest.mark.figure("recovery")
def test_recovery(figure_report, rss_probe, tmp_path):
    columns = _columns(seed=29)

    # -- the ingest cost the overhead ratio is measured against --------
    plain = ShardedService(K, seed=7, **KWARGS)
    start = time.perf_counter()
    for column in columns:
        plain.observe(column)
    ingest_s = time.perf_counter() - start
    plain.close()

    # -- supervised run: journal every round, no automatic checkpoints -
    # (checkpoint_every=0 keeps the full journal for the cold-restart
    # measurement below)
    policy = RetryPolicy(checkpoint_every=0)
    directory = str(tmp_path / "service")
    service = SupervisedService(
        directory, n_shards=K, seed=7, executor="serial", policy=policy, **KWARGS
    )
    start = time.perf_counter()
    for column in columns:
        service.observe(column)
    supervised_s = time.perf_counter() - start
    service.close()

    # -- journal append in isolation: replay the run's records into a
    # fresh journal and time only the durable appends ------------------
    with ReleaseJournal(os.path.join(directory, "journal.log")) as journal:
        records = journal.records()
    assert len(records) == ROUNDS
    replayed = ReleaseJournal(str(tmp_path / "isolated.log"))
    start = time.perf_counter()
    for record in records:
        replayed.append(record)
    journal_s = time.perf_counter() - start
    replayed.close()
    journal_overhead_ratio = journal_s / supervised_s

    # -- cold restart: rebuild from service.json + full journal replay -
    cold_dir = str(tmp_path / "cold")
    shutil.copytree(directory, cold_dir)
    start = time.perf_counter()
    with SupervisedService.attach(cold_dir, executor="serial", policy=policy) as cold:
        assert cold.t == ROUNDS
    cold_s = time.perf_counter() - start

    # -- checkpoint-backed restart: restore the bundle, replay nothing -
    with SupervisedService.attach(directory, executor="serial", policy=policy) as warm:
        warm.checkpoint()
    start = time.perf_counter()
    with SupervisedService.attach(directory, executor="serial", policy=policy) as warm:
        assert warm.t == ROUNDS
    warm_s = time.perf_counter() - start
    recovery_speedup_vs_cold = cold_s / warm_s

    # Durability must stay in the noise; checkpoints must beat replay.
    assert journal_overhead_ratio <= 0.05, (
        f"journal appends cost {journal_overhead_ratio:.1%} of ingest time"
    )
    assert recovery_speedup_vs_cold >= 1.5, (
        f"checkpoint-backed recovery only {recovery_speedup_vs_cold:.2f}x "
        "faster than a cold replay"
    )

    figure_report(
        "\n".join(
            [
                "recovery: journal overhead + checkpoint-backed restart "
                f"(rows={ROWS}, rounds={ROUNDS}, K={K})",
                f"  ingest (plain)      : {ingest_s:8.3f} s",
                f"  ingest (supervised) : {supervised_s:8.3f} s "
                f"({supervised_s / ingest_s:.2f}x; includes fingerprints "
                "+ journal)",
                f"  journal appends     : {journal_s:8.3f} s "
                f"({journal_overhead_ratio:.1%} of supervised serving, "
                f"asserted <= 5%; {journal_s / ingest_s:.1%} of bare ingest)",
                f"  cold restart        : {cold_s:8.3f} s "
                f"(full {ROUNDS}-round replay)",
                f"  checkpoint restart  : {warm_s:8.3f} s "
                f"({recovery_speedup_vs_cold:.2f}x faster, asserted >= 1.5x)",
                f"  peak rss            : {rss_probe():8.1f} MiB",
            ]
        ),
        metrics={
            "journal_overhead_ratio": journal_overhead_ratio,
            "recovery_speedup_vs_cold": recovery_speedup_vs_cold,
            "supervised_overhead_ratio": supervised_s / ingest_s,
        },
    )
