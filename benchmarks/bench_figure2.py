"""Figure 2 — SIPP cumulative poverty (at least 3 months up to month t).

Paper setup: Algorithm 2 on the SIPP panel with binary tree counters and
rho=0.005; answers averaged over 1000 repetitions match the ground truth at
every month (unbiased estimates).
"""

import pytest

from repro.experiments.config import bench_reps
from repro.experiments.sipp_cumulative import run_sipp_cumulative_experiment


@pytest.mark.figure("fig2")
def test_fig2_sipp_cumulative_poverty(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_sipp_cumulative_experiment(
            rho=0.005, n_reps=bench_reps(), seed=2, experiment_id="fig2", b=3
        ),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
