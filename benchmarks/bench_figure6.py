"""Figure 6 — SIPP quarterly poverty at rho=0.005, biased vs debiased.

The headline budget of the paper (same rho as Figure 1) with both panels.
"""

import pytest

from repro.experiments.config import bench_reps
from repro.experiments.sipp_window import run_sipp_window_experiment


@pytest.mark.figure("fig6")
def test_fig6_sipp_quarterly_rho_0005(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_sipp_window_experiment(
            rho=0.005,
            n_reps=bench_reps(),
            seed=6,
            experiment_id="fig6",
            debias=False,
            include_debiased_panel=True,
        ),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
