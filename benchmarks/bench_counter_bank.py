"""CounterBank engine benchmarks: scalar vs vectorized across horizons.

The vectorized bank's reason to exist is horizon scaling: the scalar
engine's stage 1 costs O(T log T) Python-interpreter work per round, the
bank does the same update as a handful of NumPy array ops plus one batched
noise draw.  This module times full ``T``-round runs of both engines for
``T ∈ {64, 256, 1024}`` and asserts the acceptance criterion: at
``T = 1024`` the bank is at least 5x faster per round.

Run explicitly (benchmarks are not collected by the tier-1 suite):

    PYTHONPATH=src python -m pytest benchmarks/bench_counter_bank.py -v
"""

import time

import numpy as np
import pytest

from repro.core.budget import allocate_budget
from repro.core.cumulative import CumulativeSynthesizer
from repro.data.generators import iid_bernoulli
from repro.streams.bank import FallbackBank
from repro.streams.registry import make_bank

HORIZONS = (64, 256, 1024)


def _increments(horizon: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 50, size=t).astype(np.int64) for t in range(1, horizon + 1)]


def _time_full_run(bank, increments) -> float:
    start = time.perf_counter()
    for z in increments:
        bank.feed(z)
    return time.perf_counter() - start


def _engines(horizon: int, counter: str = "binary_tree"):
    rho_vec = allocate_budget(horizon, 1.0, "corollary_b1")
    native = make_bank(
        counter,
        horizon=horizon,
        rho_per_threshold=rho_vec,
        seeds=1,
        noise_method="vectorized",
    )
    scalar = FallbackBank(
        horizon, rho_vec, seeds=1, noise_method="vectorized", counter=counter
    )
    assert not isinstance(native, FallbackBank)
    return native, scalar


class TestHorizonSweep:
    """Per-round latency, scalar vs bank, one row per horizon."""

    @pytest.mark.parametrize("horizon", HORIZONS)
    def test_bank_vs_scalar_per_round_latency(self, horizon, figure_report):
        increments = _increments(horizon)
        native, scalar = _engines(horizon)
        bank_elapsed = _time_full_run(native, increments)
        scalar_elapsed = _time_full_run(scalar, increments)
        speedup = scalar_elapsed / bank_elapsed
        report = (
            f"binary_tree counter bank, T={horizon}\n"
            f"  scalar engine : {scalar_elapsed / horizon * 1e3:8.3f} ms/round\n"
            f"  bank engine   : {bank_elapsed / horizon * 1e3:8.3f} ms/round\n"
            f"  speedup       : {speedup:8.1f}x"
        )
        figure_report(
            report,
            metrics={
                "speedup_vs_scalar": speedup,
                "bank_ms_per_round": bank_elapsed / horizon * 1e3,
            },
        )
        assert bank_elapsed < scalar_elapsed
        if horizon >= 1024:
            # Acceptance criterion: >= 5x per-round speedup at T = 1024.
            assert speedup >= 5.0, report

    def test_speedup_grows_with_horizon(self, figure_report):
        speedups = []
        for horizon in HORIZONS:
            increments = _increments(horizon)
            native, scalar = _engines(horizon)
            speedups.append(
                _time_full_run(scalar, increments) / _time_full_run(native, increments)
            )
        figure_report(
            "speedup by horizon: "
            + ", ".join(f"T={h}: {s:.1f}x" for h, s in zip(HORIZONS, speedups)),
            metrics={f"speedup_T{h}": s for h, s in zip(HORIZONS, speedups)},
        )
        # The bank's advantage must not collapse as T grows — that is the
        # whole point of batching the per-threshold counters.
        assert speedups[-1] >= speedups[0]


class TestBenchmarkHarness:
    @pytest.mark.parametrize("counter", ["binary_tree", "simple", "sqrt_factorization"])
    def test_native_bank_full_stream(self, benchmark, counter):
        horizon = 256
        increments = _increments(horizon)
        rho_vec = allocate_budget(horizon, 1.0, "corollary_b1")

        def run():
            bank = make_bank(
                counter,
                horizon=horizon,
                rho_per_threshold=rho_vec,
                seeds=2,
                noise_method="vectorized",
            )
            for z in increments:
                bank.feed(z)

        benchmark.pedantic(run, rounds=3, iterations=1)


class TestSynthesizerEndToEnd:
    def test_long_horizon_synthesizer_engines(self, figure_report):
        # Whole-pipeline check (stage 1 + monotonize + record store): the
        # bank engine must also win end to end, not only in isolation.
        horizon, n = 256, 2000
        panel = iid_bernoulli(n, horizon, 0.3, seed=3)
        timings = {}
        for engine in ("vectorized", "scalar"):
            synth = CumulativeSynthesizer(
                horizon=horizon,
                rho=0.5,
                seed=4,
                engine=engine,
                noise_method="vectorized",
            )
            start = time.perf_counter()
            synth.run(panel)
            timings[engine] = time.perf_counter() - start
            assert synth.check_invariants()
        figure_report(
            f"cumulative synthesizer, T={horizon}, n={n}: "
            f"scalar {timings['scalar']:.2f}s, "
            f"vectorized {timings['vectorized']:.2f}s "
            f"({timings['scalar'] / timings['vectorized']:.1f}x)",
            metrics={
                "end_to_end_speedup": timings["scalar"] / timings["vectorized"],
            },
        )
        assert timings["vectorized"] < timings["scalar"]
