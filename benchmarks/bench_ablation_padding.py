"""Padding ablation — n_pad from 0 (naive clamping) to the Theorem 3.2 value.

Paper §3.1: clamping noisy counts "will break the consistency guarantee";
padding sized by the error bound keeps every count positive with
probability 1 - beta.  The comparison table counts clamping events and
errors per padding level.
"""

import pytest

from repro.experiments.ablations import run_padding_ablation
from repro.experiments.config import bench_reps


@pytest.mark.figure("abl-npad")
def test_padding_ablation(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_padding_ablation(n_reps=max(bench_reps() // 2, 5), seed=11),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
