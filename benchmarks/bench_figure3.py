"""Figure 3 — error of Algorithm 1 on simulated all-ones data, debiased.

Paper setup (Appendix C.1): n=25000 all-ones streams, T=12, synthesizer
k=3, rho=0.005; per-timestep error of all-ones queries at widths 3
(matching: flat, below the bound), 2 (smaller: still supported), and 4
(larger: not supported — error visibly above the supported widths).
"""

import pytest

from repro.experiments.config import bench_reps
from repro.experiments.simulated_window import run_simulated_window_experiment


@pytest.mark.figure("fig3")
def test_fig3_simulated_error_debiased(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_simulated_window_experiment(
            n_reps=bench_reps(), seed=3, experiment_id="fig3", debias=True
        ),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
