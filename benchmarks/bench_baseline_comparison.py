"""Baseline comparison — Algorithm 1 vs recompute-from-scratch.

The paper's introduction argues the from-scratch baseline (a) pays a
sqrt(T) composition penalty in accuracy and (b) breaks longitudinal
consistency ("the number of synthetic individuals who have ever experienced
a 6-month unemployment spell [can] decrease").  This benchmark measures
both effects on the same panel.
"""

import pytest

from repro.experiments.ablations import run_baseline_comparison
from repro.experiments.config import bench_reps


@pytest.mark.figure("abl-baseline")
def test_baseline_comparison(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_baseline_comparison(n_reps=max(bench_reps() // 4, 4), seed=13),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
