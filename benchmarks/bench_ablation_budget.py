"""Budget-split ablation — uniform vs Corollary B.1 across thresholds.

Corollary B.1 allocates rho_b proportional to max(ceil(log2(T-b+1)), 1)^3,
equalizing the per-counter worst-case bounds; the uniform split wastes
budget on late thresholds whose streams are short.
"""

import pytest

from repro.experiments.ablations import run_budget_ablation
from repro.experiments.config import bench_reps


@pytest.mark.figure("abl-budget")
def test_budget_ablation(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_budget_ablation(n_reps=max(bench_reps() // 2, 5), seed=12),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
