"""Categorical extension — accuracy of Algorithm 1 over a 3-letter alphabet.

Not a paper figure: this regenerates the claim of §1 that the fixed-window
solution "naturally extend[s] to handle categorical data with more than 2
categories", measuring debiased error against the binary special case on
matched workloads.
"""

import numpy as np
import pytest

from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.data.categorical import categorical_markov
from repro.experiments.config import bench_reps
from repro.queries.categorical import CategoryAtLeastM
from repro.rng import spawn

_TRANSITIONS = np.array(
    [[0.90, 0.05, 0.05], [0.30, 0.60, 0.10], [0.05, 0.10, 0.85]]
)


@pytest.mark.figure("ext-categorical")
def test_categorical_extension_accuracy(benchmark, figure_report):
    n, horizon, rho = 10000, 12, 0.01
    panel = categorical_markov(n, horizon, _TRANSITIONS, seed=20)
    query = CategoryAtLeastM(2, 3, category=1, m=1)
    times = list(range(2, horizon + 1))
    reps = max(bench_reps() // 2, 5)

    def run_once(generator):
        synthesizer = CategoricalWindowSynthesizer(
            horizon=horizon, window=2, alphabet=3, rho=rho,
            seed=generator, noise_method="vectorized",
        )
        release = synthesizer.run(panel)
        return [release.answer(query, t) for t in times]

    def experiment():
        answers = np.array([run_once(g) for g in spawn(21, reps)])
        truth = np.array([query.evaluate(panel, t) for t in times])
        return answers, truth

    answers, truth = benchmark.pedantic(experiment, rounds=1, iterations=1)
    errors = np.abs(answers - truth[None, :])
    lines = [
        "### ext-categorical: Algorithm 1 over a 3-state alphabet",
        f"params: n={n}, T={horizon}, k=2, q=3, rho={rho}, reps={reps}",
        f"query: {query.name}",
        f"{'t':>3s} {'truth':>8s} {'median est':>11s} {'median |err|':>13s}",
    ]
    for i, t in enumerate(times):
        lines.append(
            f"{t:>3d} {truth[i]:>8.4f} {np.median(answers[:, i]):>11.4f} "
            f"{np.median(errors[:, i]):>13.4f}"
        )
    mean_bias = float(np.abs((answers - truth[None, :]).mean(axis=0)).max())
    lines.append(f"max |mean bias| over t: {mean_bias:.5f}")
    figure_report("\n".join(lines))

    # Shape checks: debiased answers unbiased, error flat in t.
    per_point_sd = answers.std(axis=0)
    standard_error = per_point_sd / np.sqrt(reps)
    assert (
        np.abs((answers - truth[None, :]).mean(axis=0)) <= 5 * standard_error + 1e-4
    ).all()
    medians = np.median(errors, axis=0)
    assert medians.max() <= 4 * max(medians.mean(), 1e-6)
