"""Categorical extension — accuracy and engine performance of Algorithm 1 at q > 2.

Not a paper figure: this regenerates the claim of §1 that the fixed-window
solution "naturally extend[s] to handle categorical data with more than 2
categories", measuring debiased error against ground truth, and pins the
performance contract of the unified window engine: the vectorized
categorical path (batched residue placement + one-argsort record
extension) must beat the scalar reference loops (one draw per group
residue, one draw per synthetic record) by at least 5x at SIPP scale
(``n = 23374``, ``q = 3``, ``k = 3``).  The speedup is emitted as a
structured ``BENCH_*.json`` metric gated by ``check_regression.py``
against ``benchmarks/baselines/``.
"""

import time

import numpy as np
import pytest

from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.data.categorical import employment_status_panel
from repro.experiments.config import bench_reps
from repro.queries.categorical import CategoryAtLeastM
from repro.rng import spawn

#: The acceptance floor for the vectorized categorical engine.
MIN_ENGINE_SPEEDUP = 5.0


@pytest.mark.figure("ext-categorical")
def test_categorical_extension_accuracy(benchmark, figure_report):
    n, horizon, rho = 10000, 12, 0.01
    panel = employment_status_panel(n, horizon, seed=20)
    query = CategoryAtLeastM(2, 3, category=1, m=1)
    times = list(range(2, horizon + 1))
    reps = max(bench_reps() // 2, 5)

    def run_once(generator):
        synthesizer = CategoricalWindowSynthesizer(
            horizon=horizon, window=2, alphabet=3, rho=rho,
            seed=generator, noise_method="vectorized",
        )
        release = synthesizer.run(panel)
        return release.answer_series(query, times)

    def experiment():
        answers = np.array([run_once(g) for g in spawn(21, reps)])
        truth = np.array([query.evaluate(panel, t) for t in times])
        return answers, truth

    answers, truth = benchmark.pedantic(experiment, rounds=1, iterations=1)
    errors = np.abs(answers - truth[None, :])
    lines = [
        "### ext-categorical: Algorithm 1 over a 3-state alphabet",
        f"params: n={n}, T={horizon}, k=2, q=3, rho={rho}, reps={reps}",
        f"query: {query.name}",
        f"{'t':>3s} {'truth':>8s} {'median est':>11s} {'median |err|':>13s}",
    ]
    for i, t in enumerate(times):
        lines.append(
            f"{t:>3d} {truth[i]:>8.4f} {np.median(answers[:, i]):>11.4f} "
            f"{np.median(errors[:, i]):>13.4f}"
        )
    mean_bias = float(np.abs((answers - truth[None, :]).mean(axis=0)).max())
    lines.append(f"max |mean bias| over t: {mean_bias:.5f}")
    figure_report("\n".join(lines))

    # Shape checks: debiased answers unbiased, error flat in t.
    per_point_sd = answers.std(axis=0)
    standard_error = per_point_sd / np.sqrt(reps)
    assert (
        np.abs((answers - truth[None, :]).mean(axis=0)) <= 5 * standard_error + 1e-4
    ).all()
    medians = np.median(errors, axis=0)
    assert medians.max() <= 4 * max(medians.mean(), 1e-6)


@pytest.mark.figure("categorical-engine")
def test_categorical_engine_speedup(benchmark, figure_report):
    """Vectorized vs scalar categorical engine at SIPP scale (ratio gate)."""
    n, horizon, window, alphabet, rho = 23374, 12, 3, 3, 0.01
    panel = employment_status_panel(n, horizon, alphabet=alphabet, seed=22)

    def run_once(engine, seed):
        synthesizer = CategoricalWindowSynthesizer(
            horizon, window, alphabet, rho,
            seed=seed, noise_method="vectorized", engine=engine,
        )
        start = time.perf_counter()
        synthesizer.run(panel)
        return time.perf_counter() - start

    def experiment():
        rounds = 3
        vectorized = min(run_once("vectorized", 30 + i) for i in range(rounds))
        scalar = min(run_once("scalar", 40 + i) for i in range(rounds))
        return vectorized, scalar

    vectorized, scalar = benchmark.pedantic(experiment, rounds=1, iterations=1)
    speedup = scalar / vectorized

    # Both engines must release identical histograms in noiseless mode —
    # the ratio compares two implementations of the *same* algorithm.
    # (One definition of the anchor, shared with the `categorical` figure.)
    from repro.experiments.categorical import _engines_agree_noiseless

    engines_agree = _engines_agree_noiseless(panel, window, alphabet, seed=50)

    figure_report(
        "\n".join(
            [
                "### categorical-engine: vectorized vs scalar window engine",
                f"params: n={n}, T={horizon}, k={window}, q={alphabet}, rho={rho}",
                f"scalar reference      : {scalar * 1000:8.1f} ms/run",
                f"vectorized engine     : {vectorized * 1000:8.1f} ms/run",
                f"speedup               : {speedup:8.1f}x (floor {MIN_ENGINE_SPEEDUP}x)",
                f"noiseless equivalence : {'ok' if engines_agree else 'FAIL'}",
            ]
        ),
        metrics={"vectorized_speedup_vs_scalar": speedup},
    )
    assert engines_agree
    assert speedup >= MIN_ENGINE_SPEEDUP, (
        f"vectorized categorical engine only {speedup:.1f}x faster than the "
        f"scalar reference (floor {MIN_ENGINE_SPEEDUP}x)"
    )
