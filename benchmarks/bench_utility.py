"""Utility frontier bench — the accuracy-regression gate's data source.

Runs the ``utility`` experiment (padding-aware pMSE + rmse over
rho x horizon x algorithm, see :mod:`repro.experiments.utility`) and
writes every frontier cell as a gateable metric.  Unlike the speed
benches, the repetition count is **pinned** rather than read from
``REPRO_BENCH_REPS``: every sampled bit is seeded, so a fixed grid makes
the reported metrics byte-identical on any machine — the committed
baseline in ``benchmarks/baselines/BENCH_test_utility.json`` then gates
*accuracy* itself, not a noisy estimate of it.  An injected quality
regression (louder noise, broken consistency projection, a biased
sampler) moves pMSE/rmse beyond the tolerance and fails CI exactly the
way a speed regression does.
"""

import pytest

from repro.experiments.utility import frontier_metrics, run_utility_experiment

#: Pinned so the gated metrics are byte-reproducible across machines.
UTILITY_BENCH_REPS = 8
UTILITY_BENCH_SEED = 0


@pytest.mark.figure("utility")
def test_utility(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_utility_experiment(
            n_reps=UTILITY_BENCH_REPS, seed=UTILITY_BENCH_SEED, strategy="serial"
        ),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render(), metrics=frontier_metrics(result))
    assert result.all_checks_pass, result.render()
