"""Figure 4 — same as Figure 3 but *without* the debiasing step.

"Calculating the proportions on the synthetic data directly leads to a
substantially larger error" — the padding mass dominates every panel.
"""

import pytest

from repro.experiments.config import bench_reps
from repro.experiments.simulated_window import run_simulated_window_experiment


@pytest.mark.figure("fig4")
def test_fig4_simulated_error_biased(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_simulated_window_experiment(
            n_reps=bench_reps(), seed=4, experiment_id="fig4", debias=False
        ),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
