"""Theorem 3.2 / Corollary B.1 — empirical worst-case error vs bounds.

Reproduces the theoretical-guarantee half of the paper's evaluation: the
observed worst-case errors must stay below the stated bounds except with
probability ~beta.
"""

import pytest

from repro.experiments.ablations import run_bound_checks
from repro.experiments.config import bench_reps


@pytest.mark.figure("thm32")
def test_bounds_dominate_empirical_errors(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_bound_checks(n_reps=bench_reps(), seed=32),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
