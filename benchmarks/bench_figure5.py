"""Figure 5 — SIPP quarterly poverty at rho=0.001, biased vs debiased.

The lowest-budget variant of the Figures 5-7 sweep: the widest noise
clouds and the largest padding bias; debiasing recovers the truth.
"""

import pytest

from repro.experiments.config import bench_reps
from repro.experiments.sipp_window import run_sipp_window_experiment


@pytest.mark.figure("fig5")
def test_fig5_sipp_quarterly_rho_0001(benchmark, figure_report):
    result = benchmark.pedantic(
        lambda: run_sipp_window_experiment(
            rho=0.001,
            n_reps=bench_reps(),
            seed=5,
            experiment_id="fig5",
            debias=False,
            include_debiased_panel=True,
        ),
        rounds=1,
        iterations=1,
    )
    figure_report(result.render())
    assert result.all_checks_pass, result.render()
