"""``multiattr``: multi-attribute record streams under one zCDP budget.

Not a paper figure: the paper's algorithms release one attribute per
individual per round, and :class:`~repro.core.multi_attribute.MultiAttributeSynthesizer`
composes them — one window engine per attribute over a shared population
ledger, a single total budget split across attributes and cross-attribute
marginals, and row-consistent synthetic records.  This experiment
exercises the default employment-status (``q = 3``) x income-bracket
(``q = 4``) workload and pins the structural guarantees:

* with a single attribute the composite synthesizer is **bit-exact**
  with the standalone engines (binary and categorical) — noise draws,
  synthetic records, and zCDP ledger included — because the sole
  attribute inherits the master generator and the full budget;
* per-attribute and cross-pair zCDP spends sum to the configured total,
  and a 2:1 attribute weighting moves the split accordingly;
* with the budget effectively removed the released cross-attribute
  counts equal the nonprivate joint histogram exactly, and the derived
  marginal is a proper distribution;
* debiased per-attribute answers stay unbiased at smoke rep counts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.metrics import SeriesSummary
from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.core.multi_attribute import MultiAttributeSynthesizer
from repro.data.categorical import (
    categorical_markov,
    employment_status_panel,
    sticky_transitions,
)
from repro.data.dataset import LongitudinalDataset
from repro.data.generators import two_state_markov
from repro.experiments.config import FigureResult, resolve_attributes
from repro.queries.categorical import CategoryAtLeastM
from repro.rng import spawn

__all__ = ["run_multiattr_experiment"]


def _workload(
    n: int, horizon: int, d: int, seed: int
) -> tuple[dict[str, np.ndarray], list[dict]]:
    """The d-attribute panel: employment, income bracket, extra markovs."""
    panels: dict[str, np.ndarray] = {}
    specs: list[dict] = []
    panels["employment"] = employment_status_panel(n, horizon, seed=seed).matrix
    specs.append({"name": "employment", "alphabet": 3})
    if d >= 2:
        panels["income"] = categorical_markov(
            n, horizon, sticky_transitions(4), seed=seed + 1
        ).matrix
        specs.append({"name": "income", "alphabet": 4})
    for extra in range(2, d):
        panels[f"attr{extra}"] = categorical_markov(
            n, horizon, sticky_transitions(4), seed=seed + extra
        ).matrix
        specs.append({"name": f"attr{extra}", "alphabet": 4})
    return panels, specs


def _binary_anchor_bit_exact(horizon: int, window: int, rho: float, seed: int) -> bool:
    """``d = 1`` binary multi-attribute must equal the binary synthesizer."""
    matrix = two_state_markov(500, horizon, 0.2, 0.3, seed=seed).matrix
    binary = FixedWindowSynthesizer(horizon, window, rho, seed=seed + 1)
    multi = MultiAttributeSynthesizer(
        horizon,
        window,
        rho,
        attributes=[{"name": "poverty", "alphabet": 2}],
        seed=seed + 1,
    )
    binary_release = binary.run(LongitudinalDataset(matrix))
    multi_release = multi.run({"poverty": matrix})
    inner = multi_release.attribute("poverty")
    histograms_equal = all(
        (binary_release.histogram(t) == inner.histogram(t)).all()
        for t in binary_release.released_times()
    )
    records = multi_release.synthetic_records(horizon)
    panels_equal = bool(
        (
            binary_release.synthetic_data().matrix[:, horizon - 1]
            == records.sole()
        ).all()
    )
    ledgers_equal = binary.accountant.spent == multi.accountant.spent
    return histograms_equal and panels_equal and ledgers_equal


def _categorical_anchor_bit_exact(
    horizon: int, window: int, rho: float, seed: int
) -> bool:
    """``d = 1`` categorical multi-attribute must equal the q-ary engine."""
    panel = employment_status_panel(400, horizon, seed=seed)
    single = CategoricalWindowSynthesizer(
        horizon, window, 3, rho, seed=seed + 1
    )
    multi = MultiAttributeSynthesizer(
        horizon,
        window,
        rho,
        attributes=[{"name": "employment", "alphabet": 3}],
        seed=seed + 1,
    )
    single_release = single.run(panel)
    multi_release = multi.run({"employment": panel.matrix})
    inner = multi_release.attribute("employment")
    return all(
        (single_release.histogram(t) == inner.histogram(t)).all()
        for t in single_release.released_times()
    ) and single.accountant.charges == tuple(
        (label.split(": ", 1)[1], rho_)
        for label, rho_ in multi.accountant.charges
    )


def _component_spends(synth: MultiAttributeSynthesizer) -> dict[str, float]:
    """Total zCDP spent per component, keyed by the charge-label prefix."""
    spends: dict[str, float] = {}
    for label, rho in synth.accountant.charges:
        prefix = label.split(": ", 1)[0]
        spends[prefix] = spends.get(prefix, 0.0) + rho
    return spends


def _cross_consistency(
    panels: dict[str, np.ndarray], specs: list[dict], window: int, seed: int
) -> bool:
    """Noiseless cross counts must equal the true joint histogram."""
    names = list(panels)[:2]
    horizon = panels[names[0]].shape[1]
    specs = specs[:2]
    synth = MultiAttributeSynthesizer(
        horizon, window, math.inf, attributes=specs, seed=seed
    )
    release = synth.run({name: panels[name] for name in names})
    q_a = specs[0]["alphabet"]
    q_b = specs[1]["alphabet"]
    for t in range(1, horizon + 1):
        codes = panels[names[0]][:, t - 1] * q_b + panels[names[1]][:, t - 1]
        truth = np.bincount(codes.astype(np.int64), minlength=q_a * q_b)
        if not (release.cross_counts(names[0], names[1], t) == truth).all():
            return False
        marginal = release.cross_marginal(names[0], names[1], t)
        if marginal.shape != (q_a * q_b,) or not math.isclose(
            float(marginal.sum()), 1.0, rel_tol=1e-12
        ):
            return False
    return True


def run_multiattr_experiment(
    n_reps: int = 25,
    seed: int = 0,
    *,
    rho: float = 0.05,
    attributes: int | None = None,
    window: int = 3,
    n_individuals: int = 2000,
    horizon: int = 12,
    engine: str | None = None,
    alphabet: int | None = None,
) -> FigureResult:
    """Run the multi-attribute figure and its composition self-checks.

    Parameters
    ----------
    n_reps:
        Noisy repetitions.
    seed:
        Master seed; panels and repetitions derive child streams from it.
    rho:
        Total zCDP budget per run, split across attributes and cross
        pairs.
    attributes:
        Number of attributes ``d >= 2`` for the main figure (the CLI's
        ``--attributes`` / ``$REPRO_ATTRIBUTES``; default 2 — employment
        status x income bracket).  The ``d = 1`` bit-exactness anchors
        always run regardless.
    window:
        Window width ``k``.
    n_individuals:
        Panel size.
    horizon:
        Number of monthly rounds ``T``.
    engine:
        Categorical engine for the per-attribute window synthesizers.
    alphabet:
        Accepted for registry uniformity and ignored (the workload fixes
        each attribute's alphabet).

    Returns
    -------
    FigureResult
        One debiased-answer series per attribute plus the bit-exactness,
        budget-composition, and cross-consistency checks.
    """
    del alphabet  # the workload pins per-attribute alphabets
    d = max(2, resolve_attributes(attributes))
    result = FigureResult(
        experiment_id="multiattr",
        title=f"Multi-attribute continual release over d={d} attributes",
        parameters={
            "rho": rho,
            "attributes": d,
            "window": window,
            "n": n_individuals,
            "horizon": horizon,
            "reps": n_reps,
            "engine": engine or "default",
        },
        paper_expectation=(
            "per-attribute window releases compose under one zCDP budget: "
            "d=1 reduces bit-exactly to the standalone engines, component "
            "spends sum to the configured total, and noiseless "
            "cross-attribute marginals match the nonprivate joint histogram"
        ),
    )
    panels, specs = _workload(n_individuals, horizon, d, seed + 100)
    queries = {
        name: CategoryAtLeastM(window, spec["alphabet"], category=1, m=1)
        for name, spec in zip(panels, specs)
    }
    times = list(range(window, horizon + 1))

    # Ground truth from a noiseless run (exact histograms, exact debias).
    oracle = MultiAttributeSynthesizer(
        horizon, window, math.inf, attributes=specs, seed=seed, engine=engine
    ).run(panels)
    truth = {
        name: np.array([oracle.answer(queries[name], t, attribute=name) for t in times])
        for name in panels
    }

    samples = {name: np.empty((n_reps, len(times))) for name in panels}
    for rep, child in enumerate(spawn(seed + 1, n_reps)):
        synth = MultiAttributeSynthesizer(
            horizon, window, rho, attributes=specs, seed=child, engine=engine
        )
        release = synth.run(panels)
        for name in panels:
            samples[name][rep] = [
                release.answer(queries[name], t, attribute=name) for t in times
            ]
        if rep == 0:
            spends = _component_spends(synth)
            result.check(
                "component spends sum to the configured budget",
                math.isclose(math.fsum(spends.values()), rho, rel_tol=1e-9)
                and math.isclose(synth.zcdp_spent(), rho, rel_tol=1e-9),
            )
            result.comparison_rows = [
                {"component": prefix, "zcdp_spent": round(spent, 8)}
                for prefix, spent in spends.items()
            ]
            result.comparison_columns = ["component", "zcdp_spent"]

    result.summaries = [
        SeriesSummary.from_samples(
            times, samples[name], truth[name], label=f"{name} (debiased)"
        )
        for name in panels
    ]
    all_samples = np.stack([samples[name] for name in panels])
    all_truth = np.stack([truth[name] for name in panels])
    result.check("answers finite", bool(np.isfinite(all_samples).all()))
    errors = all_samples - all_truth[:, None, :]
    pooled_sd = errors.std(axis=(1, 2))[:, None]
    standard_error = pooled_sd / np.sqrt(n_reps)
    result.check(
        "debiased answers unbiased",
        bool((np.abs(errors.mean(axis=1)) <= 5 * standard_error + 1e-3).all()),
    )

    # Weighted budget split: a 2:1 weighting moves the attribute spends.
    weighted = MultiAttributeSynthesizer(
        horizon,
        window,
        rho,
        attributes=[
            {**specs[0], "weight": 2.0},
            {**specs[1], "weight": 1.0},
        ],
        cross=[],
        seed=seed + 2,
        engine=engine,
    )
    weighted.run({name: panels[name] for name in list(panels)[:2]})
    weighted_spends = _component_spends(weighted)
    names = list(panels)[:2]
    result.check(
        "attribute weights steer the budget split 2:1",
        math.isclose(
            weighted_spends[names[0]], 2 * weighted_spends[names[1]], rel_tol=1e-9
        ),
    )

    # Composition anchors (the sole-attribute fast-path contract).
    result.check(
        "d=1 bit-exact with the binary window synthesizer (noise + ledger)",
        _binary_anchor_bit_exact(horizon, window, rho, seed + 3),
    )
    result.check(
        "d=1 bit-exact with the categorical window synthesizer",
        _categorical_anchor_bit_exact(horizon, window, rho, seed + 4),
    )
    result.check(
        "noiseless cross marginals match the nonprivate joint histogram",
        _cross_consistency(panels, specs, window, seed + 5),
    )
    return result
