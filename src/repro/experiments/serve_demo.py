"""``serve-demo``: replay the SIPP panel through the online serving layer.

A self-verifying walkthrough of :mod:`repro.serve`, runnable from the CLI
(``python -m repro.experiments serve-demo``) and exercised as a smoke leg
in CI.  It feeds the SIPP poverty panel to a
:class:`~repro.serve.streaming.StreamingSynthesizer` one month at a time —
the true-online model, no panel up front — and checks, round by round:

1. **online == offline** — a noiseless twin stream matches the offline
   ``run()`` on the concatenated panel bit for bit;
2. **checkpoint/restore** — the noisy stream is checkpointed mid-stream
   and restored, and the resumed stream's remaining releases are
   byte-identical to the uninterrupted one's;
3. **tamper rejection** — a corrupted bundle is refused with
   :class:`~repro.exceptions.SerializationError`;
4. **sharded consistency** — a :class:`~repro.serve.sharded.ShardedService`
   over the same columns reports per-shard ledgers at the configured
   budget and merges answers within the population-weighted contract.

With ``--chaos`` (``chaos=True``) a fifth leg drives a
:class:`~repro.serve.supervisor.SupervisedService` through the same
columns while the :class:`~repro.testing.faults.FaultInjector` kills a
shard worker mid-stream, corrupts the newest checkpoint bundle, and
tears the journal tail — and verifies that every recovery is
byte-identical to the undisturbed service (released rounds are
replayed, never re-noised).
"""

from __future__ import annotations

import io
import math

import numpy as np

from repro.data.sipp import load_sipp_2021, preprocess_sipp, simulate_sipp_raw
from repro.exceptions import ConfigurationError, SerializationError
from repro.experiments.config import FigureResult
from repro.queries import HammingAtLeast
from repro.serve import ShardedService, StreamingSynthesizer

__all__ = ["run_serve_demo"]


def _load_panel(n_households: int | None, seed: int):
    """Full SIPP panel by default; a smaller simulated cut for smoke runs."""
    if n_households is None:
        return load_sipp_2021(seed=seed)
    raw = simulate_sipp_raw(n_households=n_households, seed=seed)
    return preprocess_sipp(raw)


def _run_chaos_leg(result, columns, horizon, rho, seed, n_shards, engine) -> None:
    """Leg 5: supervised serving under injected faults, byte-identity checked.

    Builds the undisturbed :class:`~repro.serve.sharded.ShardedService`
    reference, then replays the same columns through a
    :class:`~repro.serve.supervisor.SupervisedService` while a seeded
    :class:`~repro.testing.faults.FaultInjector` kills a shard worker
    mid-stream (process executor only — skipped without ``fork``),
    flips bytes in the newest checkpoint bundle, and tears the journal
    tail.  Every recovery must reproduce the reference state
    fingerprints exactly: published rounds are replayed, never
    re-noised.
    """
    import multiprocessing as mp
    import os
    import shutil
    import tempfile

    from repro.serve import RetryPolicy, ShardedService, SupervisedService
    from repro.testing.faults import FaultInjector

    can_fork = "fork" in mp.get_all_start_methods()
    executor = "process" if can_fork else "serial"
    policy = RetryPolicy(
        rpc_timeout=60.0,
        max_retries=2,
        backoff_base=0.01,
        checkpoint_every=max(2, horizon // 3),
        checkpoint_retain=2,
    )
    injector = FaultInjector(seed=seed)

    reference = ShardedService(
        n_shards, algorithm="cumulative", horizon=horizon, rho=rho,
        seed=seed, engine=engine,
    )
    for column in columns:
        reference.observe(column)
    expected_fingerprints = reference.state_fingerprints()
    expected_spent = reference.zcdp_spent()
    reference.close()

    tmp = tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        directory = os.path.join(tmp, "service")
        cut = max(1, len(columns) // 2)
        service = SupervisedService(
            directory, n_shards=n_shards, algorithm="cumulative", seed=seed,
            executor=executor, policy=policy,
            horizon=horizon, rho=rho, engine=engine,
        )
        for column in columns[:cut]:
            service.observe(column)
        if can_fork:
            injector.kill_worker(service, injector.pick_shard(n_shards))
        for column in columns[cut:]:
            service.observe(column)
        result.check(
            "chaos: state byte-identical after mid-stream worker kill -> recovery",
            service.service.state_fingerprints() == expected_fingerprints,
        )
        result.check(
            "chaos: zCDP spend never exceeds the undisturbed budget",
            service.zcdp_spent() <= expected_spent + 1e-12,
        )
        service.checkpoint()
        service.close()

        # Storage faults run on independent copies of the state directory
        # so each scenario sees the same intact starting point.
        torn = os.path.join(tmp, "torn-journal")
        shutil.copytree(directory, torn)
        injector.truncate_tail(os.path.join(torn, "journal.log"), 40)
        with SupervisedService.attach(torn, executor="serial", policy=policy) as resumed:
            result.check(
                "chaos: torn journal tail -> checkpoint-backed recovery, byte-identical",
                resumed.t == len(columns)
                and resumed.service.state_fingerprints() == expected_fingerprints,
            )

        damaged = os.path.join(tmp, "bad-checkpoint")
        shutil.copytree(directory, damaged)
        checkpoints = sorted(os.listdir(os.path.join(damaged, "checkpoints")))
        injector.corrupt_bytes(
            os.path.join(damaged, "checkpoints", checkpoints[-1]), 64
        )
        with SupervisedService.attach(damaged, executor="serial", policy=policy) as resumed:
            result.check(
                "chaos: corrupted checkpoint -> journal replay, byte-identical",
                resumed.t == len(columns)
                and resumed.service.state_fingerprints() == expected_fingerprints,
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def run_serve_demo(
    n_reps: int = 1,
    seed: int = 0,
    *,
    rho: float = 0.005,
    n_households: int | None = None,
    checkpoint_round: int | None = None,
    n_shards: int = 4,
    engine: str | None = None,
    chaos: bool = False,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Run the online-serving demonstration and self-checks.

    Parameters
    ----------
    n_reps:
        Accepted for registry compatibility; the demo is a single
        deterministic pass and ignores repetition counts.
    seed:
        Master seed for the panel and every stream.
    rho:
        Per-stream zCDP budget (the paper's headline 0.005 by default).
    n_households:
        Simulate a smaller SIPP cut instead of the full N=23374 panel
        (used by the CI smoke leg).
    checkpoint_round:
        Round after which the noisy stream is checkpointed (default:
        horizon // 2).
    n_shards:
        Shard count for the sharded-service leg.
    engine:
        Stream-counter engine forwarded to the cumulative synthesizer.
    chaos:
        Run the fault-injection leg: a supervised service survives a
        mid-stream worker kill, a corrupted checkpoint, and a torn
        journal tail with byte-identical recoveries.
    strategy, n_jobs:
        Accepted for CLI-uniformity; the demo does not replicate.

    Returns
    -------
    FigureResult
        Per-round release fractions plus the named self-checks
        (``all_checks_pass`` drives the CLI exit code).
    """
    del n_reps, strategy, n_jobs  # single-pass demo; knobs kept for CLI symmetry
    panel = _load_panel(n_households, seed)
    horizon = panel.horizon
    columns = list(panel.columns())
    cut = horizon // 2 if checkpoint_round is None else int(checkpoint_round)
    if not 1 <= cut <= horizon:
        raise ConfigurationError(
            f"checkpoint_round must lie in [1, T={horizon}], got {cut}"
        )
    result = FigureResult(
        experiment_id="serve-demo",
        title="Online serving: round-by-round ingestion, checkpoint/resume, shards",
        parameters={
            "n": panel.n_individuals,
            "T": horizon,
            "rho": rho,
            "checkpoint_round": cut,
            "n_shards": n_shards,
        },
        paper_expectation=(
            "the continual-release model: one bit per individual per round, "
            "a publishable release after every round"
        ),
    )

    # -- leg 1: noiseless online stream == offline run() ----------------
    online = StreamingSynthesizer.cumulative(
        horizon=horizon, rho=math.inf, seed=seed, engine=engine
    )
    for column in columns:
        online.observe(column)
    from repro.core.cumulative import CumulativeSynthesizer

    offline = CumulativeSynthesizer(horizon, math.inf, seed=seed, engine=engine)
    offline.run(panel)
    result.check(
        "online releases bit-exact with offline run() (noiseless)",
        bool(
            np.array_equal(
                online.release.threshold_table(), offline.release.threshold_table()
            )
        ),
    )

    # -- leg 2: noisy stream, mid-stream checkpoint, byte-identical resume
    query = HammingAtLeast(3)
    uninterrupted = StreamingSynthesizer.cumulative(
        horizon=horizon, rho=rho, seed=seed, engine=engine
    )
    per_round = []
    buffer = io.BytesIO()
    for round_index, column in enumerate(columns, start=1):
        release = uninterrupted.observe(column)
        per_round.append(release.answer(query, round_index))
        if round_index == cut:
            uninterrupted.checkpoint(buffer)
    buffer.seek(0)
    resumed = StreamingSynthesizer.restore(buffer)
    identical = resumed.t == cut
    for column in columns[cut:]:
        resumed.observe(column)
    identical = identical and np.array_equal(
        uninterrupted.release.threshold_table(), resumed.release.threshold_table()
    )
    result.check("restored stream byte-identical under noise", bool(identical))
    original_acct = uninterrupted.synthesizer.accountant
    resumed_acct = resumed.synthesizer.accountant
    ledger_ok = (
        original_acct.charges == resumed_acct.charges
        if original_acct is not None and resumed_acct is not None
        # rho=inf runs noiseless with no ledger on either side.
        else original_acct is None and resumed_acct is None
    )
    result.check("restored zCDP ledger identical", bool(ledger_ok))

    # -- leg 3: tampered bundles are refused -----------------------------
    blob = bytearray(buffer.getvalue())
    blob[len(blob) // 2] ^= 0xFF
    try:
        StreamingSynthesizer.restore(io.BytesIO(bytes(blob)))
        tamper_rejected = False
    except SerializationError:
        tamper_rejected = True
    result.check("tampered bundle rejected with SerializationError", tamper_rejected)

    # -- leg 4: sharded service ------------------------------------------
    service = ShardedService(
        n_shards,
        algorithm="cumulative",
        horizon=horizon,
        rho=rho,
        seed=seed,
        engine=engine,
    )
    for column in columns:
        service.observe(column)
    ledgers = service.shard_ledgers()
    # Noiseless services (rho=inf) keep no ledgers and report zero spend.
    expected_spend = 0.0 if math.isinf(rho) else rho
    result.check(
        "every shard spent exactly its rho budget",
        all(math.isclose(spent, expected_spend, rel_tol=1e-9) for spent, _ in ledgers),
    )
    result.check(
        "service-wide spend is the parallel-composition max",
        math.isclose(service.zcdp_spent(), expected_spend, rel_tol=1e-9),
    )
    # Exactness of the merge itself (independent of noise level): with
    # noiseless shards every per-shard release is exact, so the
    # population-weighted merge must equal the empirical truth.
    exact_service = ShardedService(
        n_shards,
        algorithm="cumulative",
        horizon=horizon,
        rho=math.inf,
        seed=seed,
        engine=engine,
    )
    for column in columns:
        exact_service.observe(column)
    truth_final = query.evaluate(panel, horizon)
    result.check(
        "noiseless sharded merge equals the exact population fraction",
        math.isclose(exact_service.answer(query, horizon), truth_final, rel_tol=1e-12),
    )

    # -- leg 5 (opt-in): fault injection against the supervised service --
    if chaos:
        chaos_rho = rho if math.isfinite(rho) else 0.05
        _run_chaos_leg(result, columns, horizon, chaos_rho, seed, n_shards, engine)

    from repro.analysis.metrics import SeriesSummary

    answers = np.asarray(per_round, dtype=np.float64)
    truth = np.array([query.evaluate(panel, t) for t in range(1, horizon + 1)])
    result.summaries.append(
        SeriesSummary.from_samples(
            x=np.arange(1, horizon + 1),
            samples=answers[None, :],
            truth=truth,
            label=f"P[>=3 poverty months] per round (rho={rho})",
        )
    )
    return result
