"""Scaling-law sweeps: error vs privacy budget and vs population size.

The paper's bounds predict two clean scalings for the debiased
fixed-window error (Theorem 3.2 / Corollary 3.3):

* ``error ∝ 1/sqrt(rho)`` at fixed ``n`` — halving the budget costs
  ``sqrt(2)`` in accuracy;
* ``error ∝ 1/n`` at fixed ``rho`` — the noise is additive in counts, so
  fraction-scale error vanishes as the panel grows.

These sweeps measure both empirically and fit the log-log slope; the
benchmarks assert the fitted exponents match the theory within tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.replication import replicate_synthesizer, window_strategy
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.generators import two_state_markov
from repro.experiments.config import FigureResult, default_engine
from repro.queries.window import AtLeastMOnes
from repro.rng import SeedLike

__all__ = ["run_rho_sweep", "run_population_sweep", "fit_loglog_slope"]

_HORIZON = 12
_WINDOW = 3


def fit_loglog_slope(x: np.ndarray, y: np.ndarray) -> float:
    """Least-squares slope of ``log y`` against ``log x``."""
    x = np.log(np.asarray(x, dtype=np.float64))
    y = np.log(np.asarray(y, dtype=np.float64))
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def _mean_abs_error(
    panel,
    rho: float,
    n_reps: int,
    seed,
    noise_method: str,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> float:
    """Mean |debiased error| of the ≥1-month query at the final round.

    Runs through :func:`replicate_synthesizer` so the sweeps inherit the
    replication strategies (serial spawns the same per-rep generators the
    old inline loop did, so the default results are unchanged).
    """
    strategy = window_strategy(strategy)
    query = AtLeastMOnes(_WINDOW, 1)
    t = panel.horizon

    def factory(generator):
        return FixedWindowSynthesizer(
            horizon=panel.horizon,
            window=_WINDOW,
            rho=rho,
            seed=generator,
            noise_method=noise_method,
        )

    replicated = replicate_synthesizer(
        factory, panel, [query], [t], n_reps=n_reps, seed=seed,
        strategy=strategy, n_jobs=n_jobs,
    )
    return float(np.abs(replicated.errors()).mean())


def run_rho_sweep(
    n_reps: int = 20,
    seed: SeedLike = 0,
    n: int = 8000,
    rhos: tuple[float, ...] = (0.002, 0.005, 0.02, 0.05, 0.2),
    noise_method: str = "vectorized",
    engine: str | None = None,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Error vs privacy budget at fixed population size.

    Theory predicts a log-log slope of −1/2 (error ∝ rho^{-1/2}).

    ``engine`` is accepted for runner-signature uniformity (the CLI threads
    one ``--engine`` flag through every experiment); the window pipeline
    has no stream-counter bank, so it is recorded but has no effect here.
    ``strategy`` / ``n_jobs`` select the replication execution.
    """
    engine = default_engine() if engine is None else engine
    panel = two_state_markov(n, _HORIZON, p_stay=0.85, p_enter=0.02, seed=17)
    rows = []
    errors = []
    for rho in rhos:
        error = _mean_abs_error(
            panel, rho, n_reps, seed, noise_method, strategy=strategy, n_jobs=n_jobs
        )
        errors.append(error)
        rows.append({"rho": rho, "mean_abs_error": error})
    slope = fit_loglog_slope(np.asarray(rhos), np.asarray(errors))
    result = FigureResult(
        experiment_id="sweep-rho",
        title="Debiased error vs privacy budget rho (fixed n)",
        parameters={"n": n, "T": _HORIZON, "k": _WINDOW, "reps": n_reps, "engine": engine},
        paper_expectation=(
            "Theorem 3.2: error scales like rho^(-1/2); fitted log-log "
            "slope should be near -0.5."
        ),
        comparison_rows=rows + [{"rho": "log-log slope", "mean_abs_error": slope}],
        comparison_columns=["rho", "mean_abs_error"],
    )
    result.check(
        "error decreases monotonically in rho", errors == sorted(errors, reverse=True)
    )
    result.check("log-log slope within [-0.75, -0.25]", -0.75 <= slope <= -0.25)
    return result


def run_population_sweep(
    n_reps: int = 20,
    seed: SeedLike = 0,
    rho: float = 0.02,
    sizes: tuple[int, ...] = (1000, 2000, 4000, 8000, 16000),
    noise_method: str = "vectorized",
    engine: str | None = None,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Error vs population size at fixed budget.

    Theory predicts a log-log slope of −1 (error ∝ 1/n): the count-scale
    noise is independent of ``n``, so the fraction-scale error shrinks
    linearly.  ``engine`` is accepted for runner-signature uniformity and
    recorded; the window pipeline has no stream-counter bank.
    ``strategy`` / ``n_jobs`` select the replication execution.
    """
    engine = default_engine() if engine is None else engine
    rows = []
    errors = []
    for n in sizes:
        panel = two_state_markov(n, _HORIZON, p_stay=0.85, p_enter=0.02, seed=18)
        error = _mean_abs_error(
            panel, rho, n_reps, seed, noise_method, strategy=strategy, n_jobs=n_jobs
        )
        errors.append(error)
        rows.append({"n": n, "mean_abs_error": error})
    slope = fit_loglog_slope(np.asarray(sizes, dtype=np.float64), np.asarray(errors))
    result = FigureResult(
        experiment_id="sweep-n",
        title="Debiased error vs population size n (fixed rho)",
        parameters={"rho": rho, "T": _HORIZON, "k": _WINDOW, "reps": n_reps, "engine": engine},
        paper_expectation=(
            "Corollary 3.3: fraction-scale error scales like 1/n; fitted "
            "log-log slope should be near -1."
        ),
        comparison_rows=rows + [{"n": "log-log slope", "mean_abs_error": slope}],
        comparison_columns=["n", "mean_abs_error"],
    )
    result.check("error decreases monotonically in n", errors == sorted(errors, reverse=True))
    result.check("log-log slope within [-1.35, -0.65]", -1.35 <= slope <= -0.65)
    return result
