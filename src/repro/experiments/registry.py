"""Experiment registry: id -> runner.

Every entry takes ``(n_reps, seed, engine)`` and returns a
:class:`~repro.experiments.config.FigureResult`.  The ids match the
per-experiment index in DESIGN.md §3.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ConfigurationError
from repro.experiments.ablations import (
    run_baseline_comparison,
    run_bound_checks,
    run_budget_ablation,
    run_counter_ablation,
    run_padding_ablation,
)
from repro.experiments.churn import run_churn_experiment
from repro.experiments.config import FigureResult
from repro.experiments.serve_demo import run_serve_demo
from repro.experiments.sipp_cumulative import run_sipp_cumulative_experiment
from repro.experiments.sipp_window import run_sipp_window_experiment
from repro.experiments.simulated_window import run_simulated_window_experiment
from repro.experiments.sweeps import run_population_sweep, run_rho_sweep

__all__ = ["EXPERIMENTS", "get_experiment", "list_experiments"]

Runner = Callable[..., FigureResult]


# Every runner accepts ``engine`` (stream-counter engine), ``strategy``
# (replication strategy), and ``n_jobs`` (process-pool width) so the CLI
# can thread one flag set through the whole registry; experiments a knob
# does not apply to accept and record it.
EXPERIMENTS: dict[str, Runner] = {
    # Paper figures
    "fig1": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_sipp_window_experiment(
            rho=0.005, n_reps=n_reps, seed=seed, experiment_id="fig1", debias=False,
            strategy=strategy, n_jobs=n_jobs,
        )
    ),
    "fig2": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_sipp_cumulative_experiment(
            rho=0.005, n_reps=n_reps, seed=seed, experiment_id="fig2", engine=engine,
            strategy=strategy, n_jobs=n_jobs,
        )
    ),
    "fig3": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_simulated_window_experiment(
            n_reps=n_reps, seed=seed, experiment_id="fig3", debias=True,
            strategy=strategy, n_jobs=n_jobs,
        )
    ),
    "fig4": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_simulated_window_experiment(
            n_reps=n_reps, seed=seed, experiment_id="fig4", debias=False,
            strategy=strategy, n_jobs=n_jobs,
        )
    ),
    "fig5": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_sipp_window_experiment(
            rho=0.001, n_reps=n_reps, seed=seed, experiment_id="fig5", debias=False,
            strategy=strategy, n_jobs=n_jobs,
        )
    ),
    "fig6": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_sipp_window_experiment(
            rho=0.005, n_reps=n_reps, seed=seed, experiment_id="fig6", debias=False,
            strategy=strategy, n_jobs=n_jobs,
        )
    ),
    "fig7": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_sipp_window_experiment(
            rho=0.05, n_reps=n_reps, seed=seed, experiment_id="fig7", debias=False,
            strategy=strategy, n_jobs=n_jobs,
        )
    ),
    "fig8": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_sipp_cumulative_experiment(
            rho=0.005, n_reps=n_reps, seed=seed, experiment_id="fig8", b=3,
            engine=engine, strategy=strategy, n_jobs=n_jobs,
        )
    ),
    # Bound checks and ablations
    "thm32": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_bound_checks(
            n_reps=n_reps, seed=seed, engine=engine, strategy=strategy, n_jobs=n_jobs
        )
    ),
    "corB1": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_bound_checks(
            n_reps=n_reps, seed=seed, engine=engine, strategy=strategy, n_jobs=n_jobs
        )
    ),
    "abl-counter": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_counter_ablation(
            n_reps=n_reps, seed=seed, engine=engine, strategy=strategy, n_jobs=n_jobs
        )
    ),
    "abl-npad": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_padding_ablation(n_reps=n_reps, seed=seed)
    ),
    "abl-budget": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_budget_ablation(
            n_reps=n_reps, seed=seed, engine=engine, strategy=strategy, n_jobs=n_jobs
        )
    ),
    "abl-baseline": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_baseline_comparison(n_reps=n_reps, seed=seed)
    ),
    "sweep-rho": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_rho_sweep(
            n_reps=n_reps, seed=seed, engine=engine, strategy=strategy, n_jobs=n_jobs
        )
    ),
    "sweep-n": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_population_sweep(
            n_reps=n_reps, seed=seed, engine=engine, strategy=strategy, n_jobs=n_jobs
        )
    ),
    # Dynamic populations: attrition sweep over a churning SIPP panel,
    # anchored by the zero-churn bit-exactness check on both engines.
    "churn": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_churn_experiment(
            n_reps, seed=seed, engine=engine, strategy=strategy, n_jobs=n_jobs
        )
    ),
    # Online serving walkthrough (repro.serve): round-by-round ingestion,
    # checkpoint/resume byte-identity, tamper rejection, sharded budgets.
    "serve-demo": lambda n_reps, seed=0, engine=None, strategy=None, n_jobs=None: (
        run_serve_demo(
            n_reps, seed=seed, engine=engine, strategy=strategy, n_jobs=n_jobs
        )
    ),
}


def get_experiment(experiment_id: str) -> Runner:
    """Look up a runner by id; raise with the available ids on miss."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def list_experiments() -> list[str]:
    """All experiment ids, sorted."""
    return sorted(EXPERIMENTS)
