"""Experiment registry: id -> runner.

Every entry takes ``(n_reps, seed, engine, strategy, n_jobs, alphabet)``
and returns a :class:`~repro.experiments.config.FigureResult`.  The ids
match the per-experiment index in DESIGN.md §3.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ConfigurationError
from repro.experiments.ablations import (
    run_baseline_comparison,
    run_bound_checks,
    run_budget_ablation,
    run_counter_ablation,
    run_padding_ablation,
)
from repro.experiments.categorical import run_categorical_experiment
from repro.experiments.churn import run_churn_experiment
from repro.experiments.config import FigureResult
from repro.experiments.multi_attribute import run_multiattr_experiment
from repro.experiments.serve_demo import run_serve_demo
from repro.experiments.simulated_window import run_simulated_window_experiment
from repro.experiments.sipp_cumulative import run_sipp_cumulative_experiment
from repro.experiments.sipp_window import run_sipp_window_experiment
from repro.experiments.sweeps import run_population_sweep, run_rho_sweep
from repro.experiments.utility import run_utility_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "list_experiments"]

Runner = Callable[..., FigureResult]

#: The CLI's uniform knob set, threaded through every registry entry.
_KNOBS = ("engine", "strategy", "n_jobs", "alphabet", "attributes")


def _entry(
    func: Runner,
    accepts: tuple[str, ...] = ("engine", "strategy", "n_jobs"),
    **fixed,
) -> Runner:
    """Adapt an experiment function to the registry's uniform signature.

    Every runner accepts the full knob set — ``engine``
    (counter/categorical engine), ``strategy`` (replication strategy),
    ``n_jobs`` (process-pool width), ``alphabet`` (category count for
    the categorical figure), and ``attributes`` (attribute count for the
    multi-attribute figure) — so the CLI can thread one flag set through
    the whole registry.  ``accepts`` names the knobs this experiment
    actually consumes; the rest are accepted and dropped.  ``fixed``
    pins per-entry parameters (rho, experiment id, ...).
    """

    def runner(
        n_reps,
        seed=0,
        engine=None,
        strategy=None,
        n_jobs=None,
        alphabet=None,
        attributes=None,
    ):
        knobs = {
            "engine": engine,
            "strategy": strategy,
            "n_jobs": n_jobs,
            "alphabet": alphabet,
            "attributes": attributes,
        }
        kwargs = {name: knobs[name] for name in accepts}
        return func(n_reps=n_reps, seed=seed, **kwargs, **fixed)

    return runner


_REPLICATION = ("strategy", "n_jobs")

EXPERIMENTS: dict[str, Runner] = {
    # Paper figures
    "fig1": _entry(
        run_sipp_window_experiment, _REPLICATION,
        rho=0.005, experiment_id="fig1", debias=False,
    ),
    "fig2": _entry(
        run_sipp_cumulative_experiment, rho=0.005, experiment_id="fig2",
    ),
    "fig3": _entry(
        run_simulated_window_experiment, _REPLICATION,
        experiment_id="fig3", debias=True,
    ),
    "fig4": _entry(
        run_simulated_window_experiment, _REPLICATION,
        experiment_id="fig4", debias=False,
    ),
    "fig5": _entry(
        run_sipp_window_experiment, _REPLICATION,
        rho=0.001, experiment_id="fig5", debias=False,
    ),
    "fig6": _entry(
        run_sipp_window_experiment, _REPLICATION,
        rho=0.005, experiment_id="fig6", debias=False,
    ),
    "fig7": _entry(
        run_sipp_window_experiment, _REPLICATION,
        rho=0.05, experiment_id="fig7", debias=False,
    ),
    "fig8": _entry(
        run_sipp_cumulative_experiment, rho=0.005, experiment_id="fig8", b=3,
    ),
    # Bound checks and ablations
    "thm32": _entry(run_bound_checks),
    "corB1": _entry(run_bound_checks),
    "abl-counter": _entry(run_counter_ablation),
    "abl-npad": _entry(run_padding_ablation, ()),
    "abl-budget": _entry(run_budget_ablation),
    "abl-baseline": _entry(run_baseline_comparison, ()),
    "sweep-rho": _entry(run_rho_sweep),
    "sweep-n": _entry(run_population_sweep),
    # Dynamic populations: attrition sweep over a churning SIPP panel,
    # anchored by the zero-churn bit-exactness check on both engines.
    "churn": _entry(run_churn_experiment),
    # Multi-category extension: the categorical window synthesizer over
    # the employment-status workload, anchored by the q=2 == binary
    # bit-exactness and scalar == vectorized engine checks.
    "categorical": _entry(
        run_categorical_experiment, ("engine", "strategy", "n_jobs", "alphabet")
    ),
    # Multi-attribute composition: d per-attribute window engines under
    # one zCDP budget with cross-attribute marginals, anchored by the
    # d=1 == standalone-engine bit-exactness checks.
    "multiattr": _entry(
        run_multiattr_experiment, ("engine", "alphabet", "attributes")
    ),
    # Online serving walkthrough (repro.serve): round-by-round ingestion,
    # checkpoint/resume byte-identity, tamper rejection, sharded budgets.
    "serve-demo": _entry(run_serve_demo),
    # Utility frontier: padding-aware pMSE + accuracy metrics over
    # rho x horizon x algorithm, anchored by the
    # oracle < Algorithm 1 < clamping ordering check.
    "utility": _entry(run_utility_experiment, _REPLICATION),
}


def get_experiment(experiment_id: str) -> Runner:
    """Look up a runner by id; raise with the available ids on miss."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def list_experiments() -> list[str]:
    """All experiment ids, sorted."""
    return sorted(EXPERIMENTS)
