"""Experiment configuration and the shared result container."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.metrics import SeriesSummary
from repro.analysis.replication import STRATEGIES as _STRATEGIES
from repro.analysis.replication import resolve_n_jobs, resolve_strategy
from repro.analysis.tables import render_comparison_table, render_series_table
from repro.streams.registry import ENGINES as _ENGINES
from repro.streams.registry import resolve_engine

__all__ = [
    "FigureResult",
    "bench_reps",
    "default_reps",
    "default_attributes",
    "resolve_attributes",
    "default_engine",
    "default_strategy",
    "default_n_jobs",
    "ENGINES",
    "STRATEGIES",
    "PAPER_REPS",
]

#: Repetition count used by the paper's figures.
PAPER_REPS = 1000

#: Default repetition count for interactive / CI runs.
default_reps = 25

#: Counter-engine choices for Algorithm 2 (see repro.streams.bank).
ENGINES = _ENGINES

#: Replication strategies (see repro.analysis.replication).
STRATEGIES = _STRATEGIES


def default_engine() -> str:
    """Counter engine used by experiment runs.

    Controlled by the ``REPRO_ENGINE`` environment variable
    (``"vectorized"`` or ``"scalar"``) so any sweep or benchmark can be
    re-run against the scalar reference engine without code changes.
    Delegates to :func:`repro.streams.registry.resolve_engine` — the same
    resolver every :class:`~repro.core.cumulative.CumulativeSynthesizer`
    consults — so a typo'd value raises instead of silently re-testing
    the default engine.
    """
    return resolve_engine(None)


def default_strategy() -> str:
    """Replication strategy used by experiment runs.

    Controlled by the ``REPRO_REPLICATION_STRATEGY`` environment variable
    (``"auto"``, ``"batched"``, ``"process"``, or ``"serial"``); delegates
    to :func:`repro.analysis.replication.resolve_strategy`, the same
    resolver :func:`~repro.analysis.replication.replicate_synthesizer`
    consults, so a typo'd value raises instead of silently re-running the
    default path.
    """
    return resolve_strategy(None)


def default_n_jobs() -> int:
    """Process-pool worker count (``$REPRO_N_JOBS`` or the CPU count)."""
    return resolve_n_jobs(None)


def resolve_attributes(value: int | None) -> int:
    """Resolve an attribute count: explicit value, else ``$REPRO_ATTRIBUTES``.

    The same resolver convention as :func:`repro.streams.registry.resolve_engine`:
    ``None`` falls back to the environment variable (default 2 — the
    employment-status x income-bracket workload of the ``multiattr``
    experiment), and an unparsable or non-positive value raises instead
    of silently running the default.
    """
    from repro.exceptions import ConfigurationError

    if value is None:
        raw = os.environ.get("REPRO_ATTRIBUTES", "")
        if not raw:
            return 2
        try:
            value = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"$REPRO_ATTRIBUTES must be an integer >= 1, got {raw!r}"
            ) from None
    value = int(value)
    if value < 1:
        raise ConfigurationError(f"attribute count must be >= 1, got {value}")
    return value


def default_attributes() -> int:
    """Attribute count used by the ``multiattr`` experiment.

    Controlled by the ``REPRO_ATTRIBUTES`` environment variable, the
    same pattern as :func:`default_engine` / ``$REPRO_ENGINE``.
    """
    return resolve_attributes(None)


def bench_reps(fallback: int = default_reps) -> int:
    """Repetition count for benchmark runs.

    Controlled by the ``REPRO_BENCH_REPS`` environment variable so the same
    benchmark modules scale from quick CI smoke runs to full paper-scale
    sweeps (``REPRO_BENCH_REPS=1000``).
    """
    value = os.environ.get("REPRO_BENCH_REPS", "")
    try:
        parsed = int(value)
    except ValueError:
        return fallback
    return parsed if parsed > 0 else fallback


@dataclass
class FigureResult:
    """Everything an experiment produced, ready to print.

    Attributes
    ----------
    experiment_id:
        Registry id (``fig1``, ``abl-counter``, ...).
    title:
        Human-readable headline matching the paper figure caption.
    parameters:
        The experiment's configuration (rho, n, reps, ...).
    paper_expectation:
        What the paper's figure shows, stated as a checkable sentence.
    summaries:
        One :class:`SeriesSummary` per plotted series.
    bound_lines:
        Optional per-summary theoretical bound (label -> value), rendered
        as an extra column, mirroring the dashed lines of Figures 3/4.
    comparison_rows / comparison_columns:
        Optional ablation-style table (one row per variant).
    checks:
        Named boolean shape checks ("debiased answers unbiased", "bound
        dominates empirical error", ...).  These are what the test suite
        asserts.
    """

    experiment_id: str
    title: str
    parameters: dict = field(default_factory=dict)
    paper_expectation: str = ""
    summaries: list[SeriesSummary] = field(default_factory=list)
    bound_lines: dict[str, float] = field(default_factory=dict)
    comparison_rows: list[dict] = field(default_factory=list)
    comparison_columns: list[str] = field(default_factory=list)
    checks: list[tuple[str, bool]] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        """True when every recorded shape check passed."""
        return all(passed for _, passed in self.checks)

    def check(self, name: str, passed: bool) -> None:
        """Record one named shape check."""
        self.checks.append((name, bool(passed)))

    def render(self) -> str:
        """Plain-text report: parameters, series tables, checks."""
        lines = [f"### {self.experiment_id}: {self.title}"]
        if self.paper_expectation:
            lines.append(f"paper: {self.paper_expectation}")
        if self.parameters:
            rendered = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
            lines.append(f"params: {rendered}")
        for summary in self.summaries:
            extra = {}
            if summary.label in self.bound_lines:
                bound = self.bound_lines[summary.label]
                extra["bound"] = [bound] * len(summary.x)
            lines.append("")
            lines.append(render_series_table(summary, extra_columns=extra))
        if self.comparison_rows:
            lines.append("")
            lines.append(
                render_comparison_table(
                    self.comparison_rows, self.comparison_columns, title="comparison"
                )
            )
        if self.checks:
            lines.append("")
            lines.append("checks:")
            for name, passed in self.checks:
                lines.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
        return "\n".join(lines)
