"""SIPP cumulative poverty experiments — Figures 2 and 8.

Algorithm 2 synthesizes the SIPP panel and the release answers, for every
month ``t``, "what fraction of households were in poverty for at least
``b = 3`` of the first ``t`` months".  The paper shows the answers averaged
over 1000 repetitions match the ground truth ("our approach provides an
unbiased estimate of the cumulative time queries"), at ``rho = 0.005``.
Figure 8 is the appendix twin of Figure 2 with identical parameters; both
benchmark ids run this experiment.
"""

from __future__ import annotations

import math

from repro.analysis.replication import cumulative_strategy, replicate_synthesizer
from repro.core.cumulative import CumulativeSynthesizer
from repro.data.dataset import LongitudinalDataset
from repro.experiments.config import FigureResult, default_engine
from repro.experiments.sipp_window import sipp_panel
from repro.queries.cumulative import HammingAtLeast
from repro.rng import SeedLike

__all__ = ["run_sipp_cumulative_experiment"]


def run_sipp_cumulative_experiment(
    rho: float,
    n_reps: int,
    seed: SeedLike = 0,
    experiment_id: str = "fig2",
    b: int = 3,
    counter: str = "binary_tree",
    budget: str = "corollary_b1",
    data: LongitudinalDataset | None = None,
    noise_method: str = "vectorized",
    engine: str | None = None,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Reproduce Figure 2 / Figure 8.

    Parameters
    ----------
    rho:
        Total zCDP budget (0.005 in the paper).
    b:
        Threshold for the headline series ("at least b months in poverty";
        the paper focuses on ``b = 3`` while the release supports all
        thresholds simultaneously).
    counter / budget:
        Stream-counter name and budget split (paper: binary tree,
        Corollary B.1 weights).
    engine:
        Counter engine (``"vectorized"`` bank or ``"scalar"``); ``None``
        resolves via :func:`~repro.experiments.config.default_engine`.
    strategy / n_jobs:
        Replication strategy and process-pool width for
        :func:`~repro.analysis.replication.replicate_synthesizer`; the
        default ``auto`` runs this experiment's repetitions as one batched
        ``(R, T)`` state machine when the counter has a native bank.
    """
    panel = data if data is not None else sipp_panel()
    engine = default_engine() if engine is None else engine
    strategy = cumulative_strategy(strategy, engine, counter)
    query = HammingAtLeast(b)
    times = list(range(1, panel.horizon + 1))

    def factory(generator):
        return CumulativeSynthesizer(
            horizon=panel.horizon,
            rho=rho,
            counter=counter,
            budget=budget,
            seed=generator,
            engine=engine,
            noise_method=noise_method,
        )

    replicated = replicate_synthesizer(
        factory, panel, [query], times, n_reps=n_reps, seed=seed,
        strategy=strategy, n_jobs=n_jobs,
    )
    summary = replicated.summary(0)

    result = FigureResult(
        experiment_id=experiment_id,
        title=(
            f"Proportion of SIPP households in poverty for at least {b} months "
            f"up to any given month (2021), rho={rho}"
        ),
        parameters={
            "rho": rho,
            "b": b,
            "n": panel.n_individuals,
            "T": panel.horizon,
            "reps": n_reps,
            "counter": counter,
            "budget": budget,
            "engine": engine,
            "strategy": strategy,
        },
        paper_expectation=(
            "Synthetic-data answers averaged over repetitions accurately match "
            "the ground truth at every month (unbiased estimates)."
        ),
        summaries=[summary],
    )

    tolerance = _bias_tolerance(panel.horizon, rho, panel.n_individuals, n_reps)
    result.check("mean answers unbiased at every month", summary.max_mean_bias < tolerance)
    result.check(
        "truth before month b is zero and so are the answers",
        bool(
            (summary.truth[: b - 1] == 0).all()
            and (summary.median[: b - 1] <= tolerance).all()
        ),
    )
    result.check(
        "median series non-decreasing (cumulative statistic)",
        bool((summary.median[1:] - summary.median[:-1] >= -1e-12).all()),
    )
    return result


def _bias_tolerance(horizon: int, rho: float, n: int, n_reps: int) -> float:
    """Five standard errors of the replication mean for the b-th counter.

    Per-repetition answer noise is at most the tree-counter error scale
    ``sqrt(levels^2 * sigma_b^2) / n`` with the Corollary B.1 budget; a
    conservative simplification ``sqrt(T * levels / (2 rho_typical)) / n``
    with ``rho_typical = rho / T`` keeps the check counter-agnostic.
    """
    levels = max(math.ceil(math.log2(horizon)), 1)
    per_rep_sd = math.sqrt(levels * levels * horizon / (2 * rho)) / n
    return 5.0 * per_rep_sd / math.sqrt(n_reps) + 1e-9
