"""``categorical``: the multi-category fixed-window figure.

Not a paper figure: the paper states (§1) that the fixed-window solution
"naturally extend[s] to handle categorical data with more than 2
categories", and this experiment regenerates that claim as a first-class
member of the registry.  It replicates the categorical window synthesizer
over an employment-status Markov panel (``q = 3`` by default: employed /
unemployed / not in labor force), tracks debiased window statistics
against ground truth, and pins the structural guarantees the unified
engine provides:

* the ``q = 2`` categorical synthesizer is **bit-exact** with the binary
  :class:`~repro.core.fixed_window.FixedWindowSynthesizer` — noise draws,
  synthetic records, and zCDP ledger included — because both are the same
  shared :class:`~repro.core.window_engine.WindowEngine`;
* the vectorized and scalar categorical engines release identical
  histograms in noiseless mode;
* batched :meth:`~repro.core.categorical_window.CategoricalWindowRelease.answer_series`
  answers agree exactly with the per-round loop.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.replication import replicate_synthesizer, window_strategy
from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.categorical import CategoricalDataset, employment_status_panel
from repro.data.dataset import LongitudinalDataset
from repro.data.generators import two_state_markov
from repro.experiments.config import FigureResult
from repro.queries.categorical import CategoricalPatternQuery, CategoryAtLeastM

__all__ = ["run_categorical_experiment"]


def _engines_agree_noiseless(panel, window: int, alphabet: int, seed: int) -> bool:
    """Both engines must release identical histograms without noise."""
    releases = []
    for engine in ("vectorized", "scalar"):
        synth = CategoricalWindowSynthesizer(
            panel.horizon, window, alphabet, math.inf, seed=seed, engine=engine
        )
        releases.append(synth.run(panel))
    first, second = releases
    return all(
        (first.histogram(t) == second.histogram(t)).all()
        for t in first.released_times()
    )


def _binary_anchor_bit_exact(horizon: int, window: int, rho: float, seed: int) -> bool:
    """``q = 2`` categorical must equal the binary synthesizer bit for bit."""
    matrix = two_state_markov(500, horizon, 0.2, 0.3, seed=seed).matrix
    binary = FixedWindowSynthesizer(horizon, window, rho, seed=seed + 1)
    categorical = CategoricalWindowSynthesizer(
        horizon, window, 2, rho, seed=seed + 1, engine="vectorized"
    )
    binary_release = binary.run(LongitudinalDataset(matrix))
    categorical_release = categorical.run(CategoricalDataset(matrix, alphabet=2))
    histograms_equal = all(
        (binary_release.histogram(t) == categorical_release.histogram(t)).all()
        for t in binary_release.released_times()
    )
    panels_equal = bool(
        (
            binary_release.synthetic_data().matrix
            == categorical_release.synthetic_data().matrix
        ).all()
    )
    ledgers_equal = binary.accountant.charges == categorical.accountant.charges
    return histograms_equal and panels_equal and ledgers_equal


def run_categorical_experiment(
    n_reps: int = 25,
    seed: int = 0,
    *,
    rho: float = 0.01,
    alphabet: int | None = 3,
    window: int = 3,
    n_individuals: int = 4000,
    horizon: int = 12,
    engine: str | None = None,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Run the categorical-window figure and its engine self-checks.

    Parameters
    ----------
    n_reps:
        Noisy repetitions.
    seed:
        Master seed; the panel and every repetition derive deterministic
        child streams from it.
    rho:
        Total zCDP budget per run.
    alphabet:
        Number of status categories ``q >= 2`` (the CLI's
        ``--alphabet``); 3 — also the meaning of ``None``, the unset
        flag — is the employment-status workload.
    window:
        Window width ``k``.
    n_individuals:
        Panel size.
    horizon:
        Number of monthly rounds ``T``.
    engine:
        Categorical engine for the noisy runs (``"vectorized"`` /
        ``"scalar"``; default: resolver default, i.e. ``$REPRO_ENGINE``).
    strategy, n_jobs:
        Replication strategy knobs; ``"batched"`` softens to ``"auto"``
        because Algorithm 1 has no batched fast path (the same
        convention as the binary window figures).

    Returns
    -------
    FigureResult
        One error series per query, a per-query error table, and the
        engine-equivalence / bit-exactness checks.
    """
    alphabet = 3 if alphabet is None else int(alphabet)
    result = FigureResult(
        experiment_id="categorical",
        title=f"Fixed-window release over a {alphabet}-state categorical alphabet",
        parameters={
            "rho": rho,
            "alphabet": alphabet,
            "window": window,
            "n": n_individuals,
            "horizon": horizon,
            "reps": n_reps,
            "engine": engine or "default",
            "strategy": strategy or "auto",
            "n_jobs": n_jobs,
        },
        paper_expectation=(
            "the fixed-window solution extends to q > 2 categories: debiased "
            "categorical answers are unbiased with error in the binary "
            "regime, and q = 2 reduces bit-exactly to the binary algorithm"
        ),
    )
    panel = employment_status_panel(
        n_individuals, horizon, alphabet=alphabet, seed=seed + 100
    )
    unemployed = 1  # category 1 is the unemployed state in every workload
    queries = [
        CategoryAtLeastM(window, alphabet, category=unemployed, m=1),
        CategoryAtLeastM(window, alphabet, category=0, m=window),
        CategoricalPatternQuery(window, [unemployed] * window, alphabet),
    ]
    times = list(range(window, horizon + 1))

    def factory(generator):
        return CategoricalWindowSynthesizer(
            horizon,
            window,
            alphabet,
            rho,
            seed=generator,
            noise_method="vectorized",
            engine=engine,
        )

    replicated = replicate_synthesizer(
        factory,
        panel,
        queries,
        times,
        n_reps=n_reps,
        seed=seed + 1,
        strategy=window_strategy(strategy),
        n_jobs=n_jobs,
    )
    result.summaries = replicated.summaries()

    errors = replicated.errors()
    # Pool the noise scale per query across reps *and* times: the
    # per-round error variance is time-uniform (Theorem 3.2), and the
    # pooled estimate keeps the 5-sigma test stable at smoke rep counts.
    pooled_sd = errors.std(axis=(0, 2))[:, None]
    standard_error = pooled_sd / np.sqrt(n_reps)
    result.check(
        "answers finite", bool(np.isfinite(replicated.answers).all())
    )
    result.check(
        "debiased answers unbiased",
        bool((np.abs(errors.mean(axis=0)) <= 5 * standard_error + 1e-3).all()),
    )
    for qi, query in enumerate(queries):
        result.comparison_rows.append(
            {
                "query": query.name,
                "max_mean_abs_err": round(float(np.abs(errors[:, qi]).mean(axis=0).max()), 6),
                "max_abs_err": round(float(np.abs(errors[:, qi]).max()), 6),
            }
        )
    result.comparison_columns = ["query", "max_mean_abs_err", "max_abs_err"]

    # Engine and specialization anchors (the unified-engine contract).
    result.check(
        "scalar and vectorized engines release identical noiseless histograms",
        _engines_agree_noiseless(panel, window, alphabet, seed + 2),
    )
    result.check(
        "q=2 categorical bit-exact with the binary synthesizer (noise + ledger)",
        _binary_anchor_bit_exact(horizon, window, rho, seed + 3),
    )

    # answer_series must agree exactly with the per-round answer loop.
    probe = factory(np.random.default_rng(seed + 4))
    release = probe.run(panel)
    series = release.answer_series(queries[0], times)
    looped = np.array([release.answer(queries[0], t) for t in times])
    result.check("answer_series matches per-round answers", bool((series == looped).all()))
    result.check(
        "zCDP ledger fully spent",
        probe.accountant is not None
        and math.isclose(probe.accountant.spent, rho, rel_tol=1e-9),
    )
    return result
