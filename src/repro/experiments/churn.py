"""``churn``: the attrition-sweep figure for dynamic populations.

The paper's experiments fix the SIPP panel's population up front by
deleting every household with a missing month; real SIPP panels attrit
wave by wave.  This experiment sweeps the monthly attrition hazard over a
simulated SIPP poverty panel with mid-stream entry (the dynamic-population
subsystem of :mod:`repro.core.population`) and measures how the noisy
cumulative release tracks the zero-fill ground truth as churn grows.

Self-checks pinned by the test suite and the CLI exit code:

* the zero-churn leg is **bit-exact** with the fixed-population path on
  both counter engines — the whole static suite doubles as a regression
  harness for the churn refactor;
* release invariants (monotone table, census equality) hold at every
  hazard;
* the released lifespan table reproduces the panel's churn schedule.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.metrics import SeriesSummary
from repro.core.cumulative import CumulativeSynthesizer
from repro.data.sipp import load_sipp_dynamic
from repro.experiments.config import FigureResult
from repro.queries import HammingAtLeast
from repro.rng import spawn

__all__ = ["run_churn_experiment", "CHURN_HAZARDS"]

#: Monthly attrition hazards swept by the figure; 0.0 is the equivalence
#: anchor, 0.025 the SIPP-calibrated default, the rest stress churn.
CHURN_HAZARDS = (0.0, 0.01, 0.025, 0.06)


def run_churn_experiment(
    n_reps: int = 25,
    seed: int = 0,
    *,
    rho: float = 0.005,
    b: int = 3,
    n_households: int = 2000,
    hazards=CHURN_HAZARDS,
    engine: str | None = None,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Run the attrition sweep and its dynamic-population self-checks.

    Parameters
    ----------
    n_reps:
        Noisy repetitions per hazard level.
    seed:
        Master seed; the panel per hazard and every repetition derive
        deterministic child streams from it.
    rho:
        Total zCDP budget per run (the paper's Figure 2 uses 0.005).
    b:
        Hamming-weight threshold of the tracked query (months in
        poverty).
    n_households:
        Ever-admitted household count of the simulated SIPP cut.
    hazards:
        Monthly attrition hazards to sweep; must include 0.0 so the
        bit-exactness anchor runs.
    engine:
        Counter engine for the noisy runs (default: resolver default).
    strategy, n_jobs:
        Accepted for CLI uniformity and recorded; repetitions run
        serially because the batched replication engine replays static
        panels.

    Returns
    -------
    FigureResult
        One error series per hazard, a comparison table of attrition
        levels, and the equivalence/invariant checks.
    """
    result = FigureResult(
        experiment_id="churn",
        title="Cumulative release accuracy under dynamic-population churn",
        parameters={
            "rho": rho,
            "b": b,
            "n_households": n_households,
            "reps": n_reps,
            "hazards": tuple(float(h) for h in hazards),
            "engine": engine or "default",
            "strategy": strategy or "serial",
            "n_jobs": n_jobs,
        },
        paper_expectation=(
            "the zero-churn release is bit-exact with the static path, and "
            "error stays in the static regime as attrition grows (departed "
            "histories freeze instead of being deleted)"
        ),
    )
    query = HammingAtLeast(b)

    for hazard in hazards:
        panel = load_sipp_dynamic(
            seed=seed,
            target_households=n_households,
            attrition_hazard=float(hazard),
            entry_rate=0.02 if hazard > 0 else 0.0,
        )
        horizon = panel.horizon
        times = np.arange(1, horizon + 1)

        oracle = CumulativeSynthesizer(horizon, math.inf, seed=seed, engine=engine)
        oracle_release = oracle.run(panel)
        truth = np.array([oracle_release.answer(query, t) for t in times])

        samples = np.empty((n_reps, horizon))
        invariants_ok = True
        lifespan_ok = True
        for rep, child in enumerate(spawn(seed + 1, n_reps)):
            synth = CumulativeSynthesizer(horizon, rho, seed=child, engine=engine)
            release = synth.run(panel)
            samples[rep] = [release.answer(query, t) for t in times]
            invariants_ok = invariants_ok and synth.check_invariants()
            spans = synth.lifespans()
            lifespan_ok = lifespan_ok and bool(
                (spans[:, 0] == panel.entry_round).all()
                and (spans[:, 1] == panel.exit_round).all()
            )
        result.summaries.append(
            SeriesSummary.from_samples(
                times, samples, truth, label=f"hazard={float(hazard):g}"
            )
        )
        errors = np.abs(samples - truth[None, :]).mean(axis=0)
        retained = panel.n_active(horizon) / panel.n_ever
        result.comparison_rows.append(
            {
                "hazard": float(hazard),
                "n_ever": panel.n_ever,
                "retained_final": round(retained, 4),
                "max_mean_abs_err": round(float(errors.max()), 6),
            }
        )
        result.check(f"invariants hold (hazard={float(hazard):g})", invariants_ok)
        result.check(
            f"lifespan table matches the schedule (hazard={float(hazard):g})",
            lifespan_ok,
        )
        result.check(
            f"errors finite (hazard={float(hazard):g})",
            bool(np.isfinite(errors).all()),
        )

        if float(hazard) == 0.0:
            # Equivalence anchor: the zero-churn dynamic path must be
            # bit-exact with the fixed-population path, noise included,
            # on both engines.
            static = panel.as_longitudinal()
            for anchor_engine in ("vectorized", "scalar"):
                dynamic = CumulativeSynthesizer(
                    horizon, rho, seed=seed + 2, engine=anchor_engine
                )
                fixed = CumulativeSynthesizer(
                    horizon, rho, seed=seed + 2, engine=anchor_engine
                )
                dynamic_release = dynamic.run(panel)
                fixed_release = fixed.run(static)
                result.check(
                    f"zero-churn bit-exact with static path ({anchor_engine})",
                    bool(
                        (
                            dynamic_release.threshold_table()
                            == fixed_release.threshold_table()
                        ).all()
                        and dynamic_release.synthetic_data()
                        == fixed_release.synthetic_data()
                        and dynamic.accountant.charges == fixed.accountant.charges
                    ),
                )

    result.comparison_columns = [
        "hazard",
        "n_ever",
        "retained_final",
        "max_mean_abs_err",
    ]
    return result
