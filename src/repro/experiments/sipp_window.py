"""SIPP quarterly poverty experiments — Figures 1, 5, 6, 7.

The paper synthesizes the SIPP 2021 poverty panel (N=23374, T=12) with
window width ``k = 3`` and answers, per quarter, four statistics:
in poverty in at least one / at least two / at least two consecutive / all
three months.  Figure 1 shows the raw (biased) synthetic answers at
``rho = 0.005``; Figures 5-7 contrast biased and debiased answers at
``rho in {0.001, 0.005, 0.05}``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.replication import replicate_synthesizer, window_strategy
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.dataset import LongitudinalDataset
from repro.data.sipp import (
    SIPP_2021_HORIZON,
    SIPP_2021_N_HOUSEHOLDS,
    load_sipp_2021,
)
from repro.experiments.config import FigureResult
from repro.queries.workloads import quarter_ends, quarterly_poverty_workload
from repro.rng import SeedLike

__all__ = ["run_sipp_window_experiment", "sipp_panel"]

_WINDOW = 3


@lru_cache(maxsize=2)
def sipp_panel(n_households: int = SIPP_2021_N_HOUSEHOLDS) -> LongitudinalDataset:
    """The (simulated) SIPP 2021 panel, cached across experiments."""
    return load_sipp_2021(target_households=n_households)


def run_sipp_window_experiment(
    rho: float,
    n_reps: int,
    seed: SeedLike = 0,
    experiment_id: str = "fig1",
    debias: bool = False,
    data: LongitudinalDataset | None = None,
    noise_method: str = "vectorized",
    include_debiased_panel: bool = True,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Reproduce one SIPP quarterly-poverty figure.

    Parameters
    ----------
    rho:
        Total zCDP budget (0.005 for Figures 1/6, 0.001 for 5, 0.05 for 7).
    debias:
        Whether the *headline* summaries use the debiasing step.  Figure 1
        plots the biased answers; the right panels of Figures 5-7 plot the
        debiased ones.
    include_debiased_panel:
        Also compute the debiased answers (the right panel) and run the
        unbiasedness checks on them.
    strategy / n_jobs:
        Replication strategy and process-pool width; Algorithm 1 has no
        batched fast path, so ``auto`` resolves to the serial loop and
        ``"process"`` fans the repetitions out across workers.
    """
    panel = data if data is not None else sipp_panel()
    strategy = window_strategy(strategy)
    queries = quarterly_poverty_workload(_WINDOW)
    times = quarter_ends(panel.horizon, _WINDOW)

    def factory(generator):
        return FixedWindowSynthesizer(
            horizon=panel.horizon,
            window=_WINDOW,
            rho=rho,
            seed=generator,
            noise_method=noise_method,
        )

    headline = replicate_synthesizer(
        factory, panel, queries, times, n_reps=n_reps, seed=seed, debias=debias,
        strategy=strategy, n_jobs=n_jobs,
    )
    result = FigureResult(
        experiment_id=experiment_id,
        title=(
            "Proportion of SIPP households in poverty per quarter (2021), "
            f"{'debiased' if debias else 'synthetic-data (biased)'} answers"
        ),
        parameters={
            "rho": rho,
            "k": _WINDOW,
            "n": panel.n_individuals,
            "T": panel.horizon,
            "reps": n_reps,
            "debias": debias,
        },
        paper_expectation=(
            "Biased answers overshoot the ground truth by the public padding "
            "amount; debiased answers are centered on the truth (X marks)."
        ),
        summaries=[
            _relabel(summary, f"{summary.label} [{'debiased' if debias else 'biased'}]")
            for summary in headline.summaries()
        ],
    )

    # Quarterly truths are ~0.08-0.15; at these budgets the per-query noise
    # scale is lambda/n and the band should cover the truth (debiased) or
    # sit strictly above it (biased: padding adds ~2^k*n_pad/n mass).
    if debias:
        for summary in headline.summaries():
            result.check(
                f"{summary.label}: |mean bias| small",
                summary.max_mean_bias < _bias_tolerance(rho, panel.n_individuals, n_reps),
            )
    else:
        # The padding pushes biased answers up by ~n_pad-scale mass; with
        # few repetitions the replication mean still fluctuates, so allow a
        # Monte-Carlo margin below the truth.
        margin = _bias_tolerance(rho, panel.n_individuals, n_reps)
        for summary in headline.summaries():
            result.check(
                f"{summary.label}: biased answers sit above the truth",
                bool((summary.mean >= summary.truth - margin).all()),
            )

    if include_debiased_panel and not debias:
        debiased = replicate_synthesizer(
            factory, panel, queries, times, n_reps=n_reps, seed=seed, debias=True,
            strategy=strategy, n_jobs=n_jobs,
        )
        for summary in debiased.summaries():
            result.summaries.append(_relabel(summary, f"{summary.label} [debiased]"))
            result.check(
                f"{summary.label}: debiased mean unbiased",
                summary.max_mean_bias < _bias_tolerance(rho, panel.n_individuals, n_reps),
            )
    return result


def _relabel(summary, label: str):
    """Copy a frozen :class:`SeriesSummary` under a new label."""
    return type(summary)(
        x=summary.x,
        truth=summary.truth,
        median=summary.median,
        lower=summary.lower,
        upper=summary.upper,
        mean=summary.mean,
        label=label,
    )


def _bias_tolerance(rho: float, n: int, n_reps: int) -> float:
    """Monte-Carlo tolerance for the 'unbiased' checks.

    The per-query answer noise has stddev on the order of
    ``sqrt(2**k * (T-k+1) / (2 rho)) / n``; the replication mean averages it
    down by ``sqrt(n_reps)``.  Five standard errors keeps the check robust
    at small repetition counts.
    """
    import math

    per_rep_sd = math.sqrt((2**_WINDOW) * (SIPP_2021_HORIZON - _WINDOW + 1) / (2 * rho)) / n
    return 5.0 * per_rep_sd / math.sqrt(n_reps) + 1e-9
