"""Command-line entry point: ``python -m repro.experiments`` / ``repro-experiments``.

Subcommands:

* ``list`` — print the experiment ids and their titles;
* ``run <id> [--reps N] [--seed S]`` — run one experiment and print its
  report (non-zero exit when any shape check fails);
* ``all [--reps N]`` — run every experiment.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import ENGINES, default_engine, default_reps
from repro.experiments.registry import get_experiment, list_experiments

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's figures and ablations.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. fig1, fig3, abl-counter")
    for sub in (run_parser, subparsers.add_parser("all", help="run every experiment")):
        sub.add_argument("--reps", type=int, default=default_reps)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--engine",
            choices=ENGINES,
            default=default_engine(),
            help=(
                "stream-counter engine for Algorithm 2: the batched "
                "'vectorized' CounterBank (default, or $REPRO_ENGINE) or "
                "the per-threshold 'scalar' reference path"
            ),
        )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI body; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0
    if args.command == "run":
        result = get_experiment(args.experiment_id)(
            args.reps, seed=args.seed, engine=args.engine
        )
        print(result.render())
        return 0 if result.all_checks_pass else 1
    # command == "all"
    exit_code = 0
    for experiment_id in list_experiments():
        result = get_experiment(experiment_id)(
            args.reps, seed=args.seed, engine=args.engine
        )
        print(result.render())
        print()
        if not result.all_checks_pass:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
