"""Command-line entry point: ``python -m repro.experiments`` / ``repro-experiments``.

Subcommands:

* ``list`` — print the experiment ids and their titles;
* ``run <id> [--reps N] [--seed S]`` — run one experiment and print its
  report (non-zero exit when any shape check fails); ``run churn`` is
  the dynamic-population attrition sweep (see the docs' "Dynamic
  populations" page), ``run categorical [--alphabet Q]`` the
  multi-category employment-status figure, ``run multiattr
  [--attributes D]`` the multi-attribute composition figure, and ``run
  utility`` the pMSE / accuracy frontier over rho x horizon x algorithm
  (see the docs' "Utility evaluation" page);
* ``all [--reps N]`` — run every experiment;
* ``serve-demo`` — replay the SIPP panel round-by-round through the
  online serving layer (:mod:`repro.serve`) with mid-stream
  checkpoint/restore and sharded-service self-checks; ``--households``
  shrinks the panel for smoke runs and ``--chaos`` adds the
  fault-injection leg (supervised recovery under worker kills and
  storage corruption).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import (
    ENGINES,
    STRATEGIES,
    default_attributes,
    default_engine,
    default_n_jobs,
    default_reps,
    default_strategy,
)
from repro.exceptions import ConfigurationError
from repro.experiments.registry import get_experiment, list_experiments

__all__ = ["main", "build_parser"]


def _display_default(resolver, fallback):
    """Best-effort env-derived default for parser construction.

    An invalid ``REPRO_*`` value must not crash ``list`` (or ``--help``)
    with a traceback at parser-build time; the strict resolution — and its
    clear error — happens when a replication actually runs.
    """
    try:
        return resolver()
    except ConfigurationError:
        return fallback


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's figures and ablations.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. fig1, fig3, abl-counter")
    for sub in (run_parser, subparsers.add_parser("all", help="run every experiment")):
        sub.add_argument("--reps", type=int, default=default_reps)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--engine",
            choices=ENGINES,
            default=_display_default(default_engine, None),
            help=(
                "execution engine: the batched 'vectorized' path "
                "(default, or $REPRO_ENGINE) or the 'scalar' reference "
                "loops — the CounterBank for Algorithm 2, the "
                "projection/extension engine for 'run categorical'"
            ),
        )
        sub.add_argument(
            "--replication-strategy",
            choices=STRATEGIES,
            default=_display_default(default_strategy, None),
            help=(
                "how the repetitions of each figure execute: 'batched' "
                "(one (R, T) NumPy state machine, Algorithm 2 only), "
                "'process' (chunked worker pool, bit-exact with serial), "
                "'serial', or 'auto' (default, or "
                "$REPRO_REPLICATION_STRATEGY): batched where possible, "
                "serial otherwise"
            ),
        )
        sub.add_argument(
            "--n-jobs",
            type=int,
            default=None,
            help=(
                "worker count for --replication-strategy=process "
                "(default: $REPRO_N_JOBS or the CPU count = "
                f"{_display_default(default_n_jobs, 'unset')})"
            ),
        )
        sub.add_argument(
            "--alphabet",
            type=int,
            default=None,
            help=(
                "category count q for the categorical figure ('run "
                "categorical'; default 3 — the employment-status "
                "workload); the binary experiments accept and ignore it"
            ),
        )
        sub.add_argument(
            "--attributes",
            type=int,
            default=None,
            help=(
                "attribute count d for the multi-attribute figure ('run "
                "multiattr'; default $REPRO_ATTRIBUTES or "
                f"{_display_default(default_attributes, 2)} — employment "
                "status x income bracket); other experiments accept and "
                "ignore it"
            ),
        )

    serve_parser = subparsers.add_parser(
        "serve-demo",
        help=(
            "replay the SIPP panel round-by-round through the online "
            "serving layer (repro.serve) with checkpoint/restore and "
            "sharded-service self-checks"
        ),
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--rho", type=float, default=0.005, help="per-stream zCDP budget"
    )
    serve_parser.add_argument(
        "--households",
        type=int,
        default=None,
        help=(
            "simulate a smaller SIPP cut with this many raw households "
            "(default: the paper's full N=23374 panel); used by the CI "
            "smoke leg"
        ),
    )
    serve_parser.add_argument(
        "--checkpoint-round",
        type=int,
        default=None,
        help="round after which the stream checkpoints (default: T // 2)",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=4, help="shard count for the sharded leg"
    )
    serve_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=_display_default(default_engine, None),
        help="stream-counter engine for the cumulative synthesizer",
    )
    serve_parser.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "also run the fault-injection leg: a supervised service "
            "(repro.serve.SupervisedService) survives a mid-stream "
            "worker kill, a corrupted checkpoint bundle, and a torn "
            "journal tail with byte-identical recoveries"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI body; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0
    if args.command == "serve-demo":
        from repro.experiments.serve_demo import run_serve_demo

        result = run_serve_demo(
            seed=args.seed,
            rho=args.rho,
            n_households=args.households,
            checkpoint_round=args.checkpoint_round,
            n_shards=args.shards,
            engine=args.engine,
            chaos=args.chaos,
        )
        print(result.render())
        return 0 if result.all_checks_pass else 1
    if args.command == "run":
        result = get_experiment(args.experiment_id)(
            args.reps,
            seed=args.seed,
            engine=args.engine,
            strategy=args.replication_strategy,
            n_jobs=args.n_jobs,
            alphabet=args.alphabet,
            attributes=args.attributes,
        )
        print(result.render())
        return 0 if result.all_checks_pass else 1
    # command == "all"
    exit_code = 0
    for experiment_id in list_experiments():
        result = get_experiment(experiment_id)(
            args.reps,
            seed=args.seed,
            engine=args.engine,
            strategy=args.replication_strategy,
            n_jobs=args.n_jobs,
            alphabet=args.alphabet,
            attributes=args.attributes,
        )
        print(result.render())
        print()
        if not result.all_checks_pass:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
