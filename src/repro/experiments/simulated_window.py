"""Simulated extreme-data experiments — Figures 3 and 4 (Appendix C.1).

The paper evaluates Algorithm 1 on "rather extreme" data: ``n = 25000``
individuals who report 1 in *every* round over ``T = 12``, synthesized with
window ``k = 3`` and ``rho = 0.005``.  Three panels plot the absolute error
of a width-``k'`` all-ones query per timestep across 1000 repetitions:

* **matching** (``k' = 3``): error flat in ``t`` and below the theoretical
  bound (Theorem 3.2's time-uniform guarantee);
* **smaller** (``k' = 2``): still accurate — any width-``<= k`` query is a
  low-weight linear combination of width-``k`` histogram bins;
* **larger** (``k' = 4``): not supported by the synthesizer; the error
  blows up ("Only queries supported by the synthesizer can be answered
  accurately").

Figure 3 debiases the answers; Figure 4 does not, showing a substantially
larger error (the padding bias).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import SeriesSummary
from repro.analysis.replication import replicate_synthesizer, window_strategy
from repro.analysis.theory import corollary_3_3_relative_bound, debiased_error_bound
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.generators import all_ones
from repro.experiments.config import FigureResult
from repro.queries.window import AllOnes
from repro.rng import SeedLike

__all__ = ["run_simulated_window_experiment"]

_SYNTH_K = 3
_BOUND_BETA = 0.05


def run_simulated_window_experiment(
    n_reps: int,
    seed: SeedLike = 0,
    experiment_id: str = "fig3",
    debias: bool = True,
    n: int = 25000,
    horizon: int = 12,
    rho: float = 0.005,
    noise_method: str = "vectorized",
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Reproduce Figure 3 (``debias=True``) or Figure 4 (``debias=False``).

    Returns one error-series summary per query width (2, 3, 4), each with
    its theoretical bound line.  ``strategy`` / ``n_jobs`` select the
    replication execution (Algorithm 1: serial or process pool).
    """
    panel = all_ones(n, horizon)
    strategy = window_strategy(strategy)

    def factory(generator):
        return FixedWindowSynthesizer(
            horizon=horizon,
            window=_SYNTH_K,
            rho=rho,
            seed=generator,
            noise_method=noise_method,
        )

    result = FigureResult(
        experiment_id=experiment_id,
        title=(
            f"Empirical error of Algorithm 1 on simulated all-ones data, "
            f"{'debiased' if debias else 'no debiasing'} "
            f"(n={n}, T={horizon}, synthesizer k={_SYNTH_K})"
        ),
        parameters={
            "rho": rho,
            "n": n,
            "T": horizon,
            "synthesizer_k": _SYNTH_K,
            "reps": n_reps,
            "debias": debias,
        },
        paper_expectation=(
            "Error is flat in t and below the bound for query widths <= k; "
            "it increases substantially for width k+1.  Without debiasing "
            "all errors are substantially larger."
        ),
    )

    debiased_bound = debiased_error_bound(horizon, _SYNTH_K, rho, _BOUND_BETA, n)
    biased_bound = corollary_3_3_relative_bound(
        horizon, _SYNTH_K, rho, _BOUND_BETA, n, true_fraction=1.0
    )
    bound = debiased_bound if debias else biased_bound

    summaries: dict[int, SeriesSummary] = {}
    query_widths = (
        (3, "matching (query k=3)"),
        (2, "smaller (query k=2)"),
        (4, "larger (query k=4)"),
    )
    for query_k, label in query_widths:
        query = AllOnes(query_k)
        # Answers exist only once the synthesizer has released (t >= k) and
        # the query is defined (t >= query_k).
        times = list(range(max(query_k, _SYNTH_K), horizon + 1))
        replicated = replicate_synthesizer(
            factory, panel, [query], times, n_reps=n_reps, seed=seed, debias=debias,
            strategy=strategy, n_jobs=n_jobs,
        )
        errors = np.abs(replicated.errors()[:, 0, :])
        summary = SeriesSummary.from_samples(
            x=np.asarray(times, dtype=np.float64),
            samples=errors,
            truth=np.zeros(len(times)),
            label=label,
        )
        summaries[query_k] = summary
        result.summaries.append(summary)
        if query_k <= _SYNTH_K:
            result.bound_lines[label] = bound

    result.check(
        "matching-width error flat in t (max/min median within 4x)",
        _flat(summaries[_SYNTH_K].median),
    )
    result.check(
        "matching-width error below the theoretical bound",
        bool((summaries[_SYNTH_K].upper <= bound).all()),
    )
    result.check(
        "smaller-width error below the theoretical bound",
        bool((summaries[2].upper <= bound).all()),
    )
    if debias:
        # With debiasing, the only remaining error on supported widths is
        # noise; the unsupported width keeps a structural residual.
        result.check(
            "larger-width error exceeds the supported-width error (>1.5x)",
            float(np.median(summaries[4].median))
            > 1.5 * float(np.median(summaries[_SYNTH_K].median)),
        )
    if not debias:
        # Figure 4's headline: the biased error is dominated by the padding
        # mass 2^k * n_pad / n* — far above the debiased noise scale.
        result.check(
            "biased error substantially larger than the debiased bound",
            float(np.median(summaries[_SYNTH_K].median)) > debiased_bound,
        )
    return result


def _flat(series: np.ndarray, factor: float = 4.0) -> bool:
    """True when a positive series shows no blow-up relative to its level.

    Robust to small replication counts: the max must stay within ``factor``
    of the series mean (a genuine polynomial-in-``t`` growth, as in the
    larger-query panel, fails this immediately).
    """
    series = np.asarray(series, dtype=np.float64)
    high = float(series.max())
    level = float(series.mean())
    if high == 0.0:
        return True
    return high <= factor * max(level, 1e-12) or high - series.min() < 1e-4
