"""Runnable experiment definitions — one per paper figure, plus ablations.

Each experiment function returns a :class:`~repro.experiments.config.FigureResult`
holding the measured series, the ground truth, pass/fail shape checks, and a
plain-text rendering comparable against the paper figure.  The registry maps
experiment ids (``fig1`` ... ``fig8``, ``abl-*``, ``thm32``, ``corB1``) to
their runners; ``python -m repro.experiments run fig1`` executes one from
the command line, and each ``benchmarks/bench_*.py`` module wraps one in
pytest-benchmark.
"""

from repro.experiments.config import FigureResult, bench_reps, default_reps
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "FigureResult",
    "bench_reps",
    "default_reps",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
]
