"""Ablation experiments and theory-bound checks.

These go beyond the paper's figures to probe the design decisions its text
calls out (DESIGN.md §5):

* ``abl-counter`` — Algorithm 2 instantiated with each registered stream
  counter ("stream counters enjoying improved concrete accuracy ... may
  yield improved practical results", §1.1);
* ``abl-npad``   — padding size vs negative-count events and error (§3.1's
  padding discussion; includes the clamping baseline at ``n_pad = 0``);
* ``abl-budget`` — uniform vs Corollary B.1 budget split across thresholds;
* ``abl-baseline`` — Algorithm 1 vs the recompute-from-scratch strawman
  (error and consistency violations, §1);
* ``thm32`` / ``corB1`` — empirical max errors vs the stated bounds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.replication import cumulative_strategy, replicate_synthesizer
from repro.analysis.theory import corollary_b1_alpha, theorem_3_2_bound
from repro.baselines.recompute import RecomputeBaseline, ever_spell_fraction
from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.generators import two_state_markov
from repro.experiments.config import FigureResult, default_engine
from repro.queries.cumulative import HammingAtLeast
from repro.queries.window import AtLeastMOnes
from repro.rng import SeedLike, spawn
from repro.streams.registry import available_counters

__all__ = [
    "run_counter_ablation",
    "run_padding_ablation",
    "run_budget_ablation",
    "run_baseline_comparison",
    "run_bound_checks",
    "ablation_panel",
]

_N = 4000
_HORIZON = 12


def ablation_panel(seed: int = 11, n: int = _N):
    """Markov panel shared by the ablations (poverty-like dynamics)."""
    return two_state_markov(n, _HORIZON, p_stay=0.85, p_enter=0.02, seed=seed)


def _cumulative_max_errors(
    panel,
    rho: float,
    n_reps: int,
    seed,
    *,
    counter: str = "binary_tree",
    budget: str = "corollary_b1",
    engine: str,
    noise_method: str,
    strategy: str | None,
    n_jobs: int | None,
) -> np.ndarray:
    """Per-rep worst |error| over the full (threshold, time) grid.

    One :func:`replicate_synthesizer` call over every ``HammingAtLeast``
    threshold, so the ablations inherit the batched / process strategies.
    A ``"batched"`` request softens to ``"auto"`` when this particular
    counter (or the scalar engine) has no rep axis — the counter ablation
    sweeps *every* registered counter, so a strict ``batched`` would abort
    the sweep on the first fallback-only name.
    """
    strategy = cumulative_strategy(strategy, engine, counter)
    queries = [HammingAtLeast(b) for b in range(1, panel.horizon + 1)]
    times = list(range(1, panel.horizon + 1))

    def factory(generator):
        return CumulativeSynthesizer(
            horizon=panel.horizon,
            rho=rho,
            counter=counter,
            budget=budget,
            seed=generator,
            engine=engine,
            noise_method=noise_method,
        )

    replicated = replicate_synthesizer(
        factory, panel, queries, times, n_reps=n_reps, seed=seed,
        strategy=strategy, n_jobs=n_jobs,
    )
    return replicated.max_abs_error_per_rep()


def run_counter_ablation(
    rho: float = 0.05,
    n_reps: int = 10,
    seed: SeedLike = 0,
    noise_method: str = "vectorized",
    engine: str | None = None,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Algorithm 2 with every registered counter, same data and budget."""
    panel = ablation_panel()
    engine = default_engine() if engine is None else engine
    rows = []
    for name in available_counters():
        errors = _cumulative_max_errors(
            panel, rho, n_reps, seed, counter=name, engine=engine,
            noise_method=noise_method, strategy=strategy, n_jobs=n_jobs,
        )
        rows.append(
            {
                "counter": name,
                "max_error_median": float(np.median(errors)),
                "max_error_p90": float(np.percentile(errors, 90)),
            }
        )
    rows.sort(key=lambda row: row["max_error_median"])
    result = FigureResult(
        experiment_id="abl-counter",
        title="Algorithm 2 instantiated with different stream counters",
        parameters={
            "rho": rho,
            "n": panel.n_individuals,
            "T": _HORIZON,
            "reps": n_reps,
            "engine": engine,
        },
        paper_expectation=(
            "The binary tree counter (paper's choice) beats the naive "
            "counter; improved counters may do better still (paper §1.1)."
        ),
        comparison_rows=rows,
        comparison_columns=["counter", "max_error_median", "max_error_p90"],
    )
    by_name = {row["counter"]: row["max_error_median"] for row in rows}
    result.check(
        "tree counter beats the naive per-step counter",
        by_name["binary_tree"] <= by_name["simple"],
    )
    result.check(
        "Honaker refinement does not hurt the tree counter",
        by_name["honaker"] <= by_name["binary_tree"] * 1.25,
    )
    return result


def run_padding_ablation(
    rho: float = 0.01,
    n_reps: int = 10,
    seed: SeedLike = 0,
    noise_method: str = "vectorized",
) -> FigureResult:
    """Padding levels from none (clamping baseline) to the Theorem 3.2 value."""
    panel = ablation_panel()
    window = 3
    beta = 0.05
    full = math.ceil(theorem_3_2_bound(_HORIZON, window, rho, beta))
    levels = [0, full // 4, full // 2, full]
    query = AtLeastMOnes(window, 1)
    times = list(range(window, _HORIZON + 1))
    rows = []
    for n_pad in levels:
        events = []
        errors = []
        for generator in spawn(seed, n_reps):
            synthesizer = FixedWindowSynthesizer(
                horizon=_HORIZON,
                window=window,
                rho=rho,
                n_pad=n_pad,
                seed=generator,
                noise_method=noise_method,
            )
            release = synthesizer.run(panel)
            events.append(release.negative_count_events)
            errors.append(
                max(
                    abs(release.answer(query, t) - query.evaluate(panel, t))
                    for t in times
                )
            )
        rows.append(
            {
                "n_pad": n_pad,
                "negative_events_mean": float(np.mean(events)),
                "runs_with_events": int(sum(1 for e in events if e > 0)),
                "max_error_median": float(np.median(errors)),
            }
        )
    result = FigureResult(
        experiment_id="abl-npad",
        title="Effect of the padding size n_pad (0 = naive clamping)",
        parameters={
            "rho": rho,
            "n": panel.n_individuals,
            "T": _HORIZON,
            "k": window,
            "reps": n_reps,
            "theorem_3_2_n_pad": full,
        },
        paper_expectation=(
            "Without padding, negative noisy counts force clamping events "
            "that break consistency; the Theorem 3.2 padding makes them "
            "vanishingly rare (probability beta)."
        ),
        comparison_rows=rows,
        comparison_columns=[
            "n_pad",
            "negative_events_mean",
            "runs_with_events",
            "max_error_median",
        ],
    )
    result.check(
        "no padding suffers clamping events",
        rows[0]["negative_events_mean"] > 0,
    )
    result.check(
        "full Theorem 3.2 padding avoids clamping events in every run",
        rows[-1]["runs_with_events"] == 0,
    )
    result.check(
        "events decrease monotonically with padding",
        all(
            rows[i]["negative_events_mean"] >= rows[i + 1]["negative_events_mean"]
            for i in range(len(rows) - 1)
        ),
    )
    return result


def run_budget_ablation(
    rho: float = 0.01,
    n_reps: int = 10,
    seed: SeedLike = 0,
    noise_method: str = "vectorized",
    engine: str | None = None,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Uniform vs Corollary B.1 budget split across thresholds."""
    panel = ablation_panel()
    engine = default_engine() if engine is None else engine
    rows = []
    for budget in ("uniform", "corollary_b1"):
        errors = _cumulative_max_errors(
            panel, rho, n_reps, seed, budget=budget, engine=engine,
            noise_method=noise_method, strategy=strategy, n_jobs=n_jobs,
        )
        rows.append(
            {
                "budget": budget,
                "max_error_median": float(np.median(errors)),
                "max_error_p90": float(np.percentile(errors, 90)),
            }
        )
    result = FigureResult(
        experiment_id="abl-budget",
        title="Budget split across thresholds: uniform vs Corollary B.1",
        parameters={
            "rho": rho,
            "n": panel.n_individuals,
            "T": _HORIZON,
            "reps": n_reps,
            "engine": engine,
        },
        paper_expectation=(
            "Corollary B.1's cubic-log weights equalize per-counter bounds; "
            "worst-case error should be no worse than the uniform split."
        ),
        comparison_rows=rows,
        comparison_columns=["budget", "max_error_median", "max_error_p90"],
    )
    by_name = {row["budget"]: row["max_error_median"] for row in rows}
    result.check(
        "Corollary B.1 split is competitive with uniform (within 25%)",
        by_name["corollary_b1"] <= by_name["uniform"] * 1.25,
    )
    return result


def run_baseline_comparison(
    rho: float = 0.05,
    n_reps: int = 5,
    seed: SeedLike = 0,
    noise_method: str = "vectorized",
) -> FigureResult:
    """Algorithm 1 vs the recompute-from-scratch strawman."""
    panel = ablation_panel(n=2000)
    window = 3
    query = AtLeastMOnes(window, 1)
    times = list(range(window, _HORIZON + 1))
    spell_lengths = (5, 6)  # the paper's "6-month spell" pathology (and 5)

    algo_errors, algo_violations = [], []
    base_errors, base_violations = [], []
    for generator in spawn(seed, n_reps):
        children = spawn(generator, 2)
        synthesizer = FixedWindowSynthesizer(
            horizon=_HORIZON, window=window, rho=rho, seed=children[0],
            noise_method=noise_method,
        )
        release = synthesizer.run(panel)
        algo_errors.append(
            max(abs(release.answer(query, t) - query.evaluate(panel, t)) for t in times)
        )
        violations = 0
        for length in spell_lengths:
            series = [
                ever_spell_fraction(release.synthetic_data(t), length, t)
                for t in times
            ]
            violations += sum(1 for a, b in zip(series, series[1:]) if b < a - 1e-12)
        algo_violations.append(violations)

        baseline = RecomputeBaseline(
            horizon=_HORIZON, window=window, rho=rho, seed=children[1],
            noise_method=noise_method,
        )
        base_release = baseline.run(panel)
        base_errors.append(
            max(
                abs(base_release.answer(query, t) - query.evaluate(panel, t))
                for t in times
            )
        )
        base_violations.append(base_release.spell_violations(spell_lengths))

    rows = [
        {
            "method": "algorithm_1",
            "max_error_median": float(np.median(algo_errors)),
            "consistency_violations_mean": float(np.mean(algo_violations)),
        },
        {
            "method": "recompute_from_scratch",
            "max_error_median": float(np.median(base_errors)),
            "consistency_violations_mean": float(np.mean(base_violations)),
        },
    ]
    result = FigureResult(
        experiment_id="abl-baseline",
        title="Algorithm 1 vs recompute-from-scratch (error + consistency)",
        parameters={
            "rho": rho,
            "n": panel.n_individuals,
            "T": _HORIZON,
            "k": window,
            "reps": n_reps,
        },
        paper_expectation=(
            "Recomputing from scratch pays a sqrt(T) composition penalty and "
            "lets monotone 'ever experienced a spell' statistics decrease; "
            "Algorithm 1 keeps them monotone by construction (§1)."
        ),
        comparison_rows=rows,
        comparison_columns=["method", "max_error_median", "consistency_violations_mean"],
    )
    result.check(
        "Algorithm 1 never violates 'ever' monotonicity",
        float(np.mean(algo_violations)) == 0.0,
    )
    result.check(
        "recompute baseline produces consistency violations",
        float(np.mean(base_violations)) > 0.0,
    )
    result.check(
        "Algorithm 1 is more accurate than recompute-from-scratch",
        rows[0]["max_error_median"] <= rows[1]["max_error_median"],
    )
    return result


def run_bound_checks(
    n_reps: int = 20,
    seed: SeedLike = 0,
    rho: float = 0.05,
    noise_method: str = "vectorized",
    engine: str | None = None,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Empirical max errors vs Theorem 3.2 and Corollary B.1 bounds.

    ``strategy`` / ``n_jobs`` apply to the Corollary B.1 half (which
    replicates Algorithm 2); the Theorem 3.2 half inspects per-run
    histograms directly and stays a serial loop.
    """
    panel = ablation_panel()
    engine = default_engine() if engine is None else engine
    window = 3
    beta = 0.05

    # Theorem 3.2: per-bin padded-count error, all bins and steps.
    bound_32 = theorem_3_2_bound(_HORIZON, window, rho, beta)
    worst_errors = []
    for generator in spawn(seed, n_reps):
        synthesizer = FixedWindowSynthesizer(
            horizon=_HORIZON, window=window, rho=rho, seed=generator,
            noise_method=noise_method,
        )
        release = synthesizer.run(panel)
        n_pad = release.padding.n_pad
        worst = 0
        for t in range(window, _HORIZON + 1):
            true_counts = panel.suffix_histogram(t, window)
            released = release.histogram(t)
            worst = max(worst, int(np.abs(released - (true_counts + n_pad)).max()))
        worst_errors.append(worst)
    exceed_32 = sum(1 for err in worst_errors if err > bound_32)

    # Corollary B.1: fraction-scale error of Algorithm 2 over all (b, t).
    bound_b1 = corollary_b1_alpha(_HORIZON, rho, beta, panel.n_individuals)
    worst_cumulative = _cumulative_max_errors(
        panel, rho, n_reps, seed, engine=engine, noise_method=noise_method,
        strategy=strategy, n_jobs=n_jobs,
    )
    exceed_b1 = sum(1 for err in worst_cumulative if err > bound_b1)

    rows = [
        {
            "bound": "theorem_3_2 (counts)",
            "bound_value": float(bound_32),
            "empirical_median": float(np.median(worst_errors)),
            "empirical_max": float(np.max(worst_errors)),
            "runs_exceeding": exceed_32,
        },
        {
            "bound": "corollary_B1 (fractions)",
            "bound_value": float(bound_b1),
            "empirical_median": float(np.median(worst_cumulative)),
            "empirical_max": float(np.max(worst_cumulative)),
            "runs_exceeding": exceed_b1,
        },
    ]
    result = FigureResult(
        experiment_id="thm32",
        title="Empirical worst-case errors vs the paper's bounds",
        parameters={
            "rho": rho,
            "n": panel.n_individuals,
            "T": _HORIZON,
            "k": window,
            "beta": beta,
            "reps": n_reps,
        },
        paper_expectation=(
            "Observed worst-case errors stay below the stated bounds except "
            "with probability at most beta (respectively T*beta)."
        ),
        comparison_rows=rows,
        comparison_columns=[
            "bound",
            "bound_value",
            "empirical_median",
            "empirical_max",
            "runs_exceeding",
        ],
    )
    result.check("Theorem 3.2 bound holds in every run", exceed_32 == 0)
    result.check("Corollary B.1 bound holds in every run", exceed_b1 == 0)
    return result
