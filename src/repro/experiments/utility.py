"""``utility``: the accuracy-vs-privacy frontier with pMSE scoring.

Every benchmark before this one watched *speed*; this experiment turns
synthetic-data *quality* into a committed, gateable artifact.  It sweeps
rho x horizon over the SIPP smoke panel and scores one scenario per
algorithm family with the padding-aware pMSE harness
(:mod:`repro.analysis.utility`) plus the rmse / max-abs accuracy
metrics:

* ``nonprivate`` — the oracle that releases the data itself (pMSE 0, the
  floor every score is read against);
* ``window`` — Algorithm 1 (:class:`~repro.core.fixed_window.FixedWindowSynthesizer`);
* ``clamped`` — the §3.1 strawman that clamps negative noisy counts
  instead of padding (its inflate-the-small-cells bias is exactly what
  pMSE punishes);
* ``density`` — the private density-estimation competitor
  (:class:`~repro.baselines.density.PrivateDensityBaseline`);
* ``recompute`` — fresh single-shot synthesis per round (sqrt(T)
  composition penalty, no linkage);
* ``cumulative`` — Algorithm 2, scored in the Hamming-weight feature
  space it actually preserves;
* ``categorical`` — the q-ary window synthesizer on the employment
  panel.

The headline check is the ordering the paper's §3 motivates:
``nonprivate < window < clamped`` on every swept configuration — padding
plus debiasing beats clamping, and nothing beats the oracle.
:func:`frontier_metrics` flattens the frontier into the flat numeric
mapping ``benchmarks/check_regression.py`` gates, so an accuracy
regression (louder noise, broken consistency, a biased sampler) fails CI
the same way a speed regression does.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import SeriesSummary
from repro.analysis.utility import score_synthesizer
from repro.baselines.clamped import ClampingBaseline
from repro.baselines.density import PrivateDensityBaseline
from repro.baselines.nonprivate import NonPrivateSynthesizer
from repro.baselines.recompute import RecomputeBaseline
from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.data.categorical import employment_status_panel
from repro.data.sipp import load_sipp_2021
from repro.exceptions import ConfigurationError
from repro.experiments.config import FigureResult
from repro.queries.categorical import CategoryAtLeastM
from repro.queries.cumulative import HammingAtLeast
from repro.queries.window import AtLeastMOnes

__all__ = [
    "run_utility_experiment",
    "frontier_metrics",
    "UTILITY_RHOS",
    "UTILITY_HORIZONS",
]

#: zCDP budgets swept by the frontier (ascending; the smoke scenario the
#: ordering check anchors on is the smallest one).
UTILITY_RHOS = (0.05, 0.2)

#: Horizons swept by the frontier (ascending; SIPP's T=12 is the anchor).
UTILITY_HORIZONS = (8, 12)


def _fmt(value: float) -> str:
    """Compact parameter formatting for labels and metric names."""
    return f"{value:g}"


def run_utility_experiment(
    n_reps: int = 8,
    seed: int = 0,
    *,
    rhos=UTILITY_RHOS,
    horizons=UTILITY_HORIZONS,
    window: int = 3,
    n_households: int = 1200,
    alphabet: int | None = None,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> FigureResult:
    """Sweep rho x horizon x algorithm and score utility per scenario.

    Parameters
    ----------
    n_reps:
        Replicated runs per scenario (every scenario reuses the same
        master seed, so two in-process runs are bit-identical).
    seed:
        Master seed for panels and replication.
    rhos:
        Ascending zCDP budgets to sweep.
    horizons:
        Ascending horizons to sweep; each scores on the SIPP panel's
        prefix of that length.
    window:
        Window width ``k`` of the window-family scenarios (also the pMSE
        feature width).
    n_households:
        Households in the SIPP smoke cut (and records in the categorical
        panel).
    alphabet:
        Category count of the categorical scenario (default 3).
    strategy, n_jobs:
        Replication knobs forwarded to
        :func:`~repro.analysis.utility.score_synthesizer`.

    Returns
    -------
    FigureResult
        Frontier table (one row per scenario), pMSE-over-time summaries
        for the anchor configuration, and the ordering checks.
    """
    rhos = tuple(float(r) for r in rhos)
    horizons = tuple(int(h) for h in horizons)
    if not rhos or any(r <= 0 for r in rhos):
        raise ConfigurationError(f"rhos must be positive, got {rhos}")
    if not horizons or any(h <= window for h in horizons):
        raise ConfigurationError(
            f"every horizon must exceed window={window}, got {horizons}"
        )
    q = 3 if alphabet is None else int(alphabet)

    result = FigureResult(
        experiment_id="utility",
        title="Utility frontier: pMSE and query accuracy vs rho and horizon",
        parameters={
            "reps": n_reps,
            "rhos": rhos,
            "horizons": horizons,
            "window": window,
            "n_households": n_households,
            "alphabet": q,
            "strategy": strategy or "auto",
            "n_jobs": n_jobs,
        },
        paper_expectation=(
            "padding + debiasing (Algorithm 1) scores strictly between the "
            "non-private oracle and the clamping strawman on pMSE, and "
            "accuracy improves as rho grows"
        ),
    )

    full_panel = load_sipp_2021(seed=seed + 20_210, target_households=n_households)
    window_query = AtLeastMOnes(window, 1)
    cumulative_query = HammingAtLeast(1)
    categorical_query = CategoryAtLeastM(min(window, 2), q, 1, 1)

    anchor = (min(rhos), max(horizons))
    reports: dict[tuple, object] = {}

    for horizon in horizons:
        panel = full_panel.prefix(horizon)
        cat_panel = employment_status_panel(
            n_households, horizon, alphabet=q, seed=seed + 77
        )
        window_times = list(range(window, horizon + 1))
        cat_width = min(window, 2)
        cat_times = list(range(cat_width, horizon + 1))

        oracle = score_synthesizer(
            lambda g: NonPrivateSynthesizer(horizon),
            panel,
            [window_query],
            window_times,
            n_reps,
            seed=seed,
            width=window,
            label="nonprivate",
            strategy=strategy,
            n_jobs=n_jobs,
        )
        reports[("nonprivate", None, horizon)] = oracle
        result.comparison_rows.append(
            {
                "scenario": "nonprivate",
                "rho": "oracle",
                "horizon": horizon,
                "pmse_ratio": round(oracle.mean_pmse_ratio, 4),
                "pmse_final": round(oracle.final_pmse_ratio, 4),
                "rmse": round(oracle.query_rmse(), 6),
                "max_abs": round(oracle.query_max_abs_error(), 6),
            }
        )
        result.check(
            f"oracle scores pMSE 0 (T={horizon})",
            oracle.mean_pmse_ratio == 0.0 and oracle.query_rmse() == 0.0,
        )

        for rho in rhos:
            scenarios = {
                "window": (
                    lambda g, h=horizon, r=rho: FixedWindowSynthesizer(
                        h, window, r, seed=g
                    ),
                    panel,
                    [window_query],
                    window_times,
                    window,
                    "window",
                ),
                "clamped": (
                    lambda g, h=horizon, r=rho: ClampingBaseline(
                        h, window, r, seed=g
                    ),
                    panel,
                    [window_query],
                    window_times,
                    window,
                    "window",
                ),
                "density": (
                    lambda g, h=horizon, r=rho: PrivateDensityBaseline(
                        h, window, r, seed=g
                    ),
                    panel,
                    [window_query],
                    window_times,
                    window,
                    "window",
                ),
                "recompute": (
                    lambda g, h=horizon, r=rho: RecomputeBaseline(
                        h, window, r, seed=g
                    ),
                    panel,
                    [window_query],
                    window_times,
                    window,
                    "window",
                ),
                "cumulative": (
                    lambda g, h=horizon, r=rho: CumulativeSynthesizer(
                        h, r, seed=g
                    ),
                    panel,
                    [cumulative_query],
                    list(range(1, horizon + 1)),
                    window,
                    "hamming",
                ),
                "categorical": (
                    lambda g, h=horizon, r=rho: CategoricalWindowSynthesizer(
                        h, cat_width, q, r, seed=g
                    ),
                    cat_panel,
                    [categorical_query],
                    cat_times,
                    cat_width,
                    "window",
                ),
            }
            for name, (factory, score_panel, queries, times, width, feats) in (
                scenarios.items()
            ):
                report = score_synthesizer(
                    factory,
                    score_panel,
                    queries,
                    times,
                    n_reps,
                    seed=seed,
                    width=width,
                    features=feats,
                    label=f"{name} rho={_fmt(rho)} T={horizon}",
                    strategy=strategy,
                    n_jobs=n_jobs,
                )
                reports[(name, rho, horizon)] = report
                result.comparison_rows.append(
                    {
                        "scenario": name,
                        "rho": _fmt(rho),
                        "horizon": horizon,
                        "pmse_ratio": round(report.mean_pmse_ratio, 4),
                        "pmse_final": round(report.final_pmse_ratio, 4),
                        "rmse": round(report.query_rmse(), 6),
                        "max_abs": round(report.query_max_abs_error(), 6),
                    }
                )
                result.check(
                    f"{name} scores finite (rho={_fmt(rho)}, T={horizon})",
                    bool(
                        np.isfinite(report.mean_pmse_ratio)
                        and np.isfinite(report.query_rmse())
                    ),
                )

            window_score = reports[("window", rho, horizon)].mean_pmse_ratio
            clamped_score = reports[("clamped", rho, horizon)].mean_pmse_ratio
            result.check(
                f"pMSE orders oracle < window < clamped "
                f"(rho={_fmt(rho)}, T={horizon})",
                0.0 < window_score < clamped_score,
            )

        if len(rhos) > 1:
            lo, hi = min(rhos), max(rhos)
            for name in ("window", "density"):
                result.check(
                    f"{name} pMSE improves with budget (T={horizon})",
                    reports[(name, hi, horizon)].mean_pmse_ratio
                    <= reports[(name, lo, horizon)].mean_pmse_ratio,
                )
            result.check(
                f"window rmse improves with budget (T={horizon})",
                reports[("window", hi, horizon)].query_rmse()
                <= reports[("window", lo, horizon)].query_rmse(),
            )

    anchor_rho, anchor_horizon = anchor
    anchor_times = np.arange(window, anchor_horizon + 1, dtype=float)
    for name in ("window", "clamped", "density"):
        report = reports[(name, anchor_rho, anchor_horizon)]
        samples = report.pmse_ratios()
        result.summaries.append(
            SeriesSummary.from_samples(
                anchor_times,
                samples,
                np.zeros(len(anchor_times)),
                label=f"pmse {name} rho={_fmt(anchor_rho)} T={anchor_horizon}",
            )
        )

    result.comparison_columns = [
        "scenario",
        "rho",
        "horizon",
        "pmse_ratio",
        "pmse_final",
        "rmse",
        "max_abs",
    ]
    return result


def frontier_metrics(result: FigureResult) -> dict[str, float]:
    """Flatten a utility frontier into gateable numeric metrics.

    One ``pmse_<scenario>_rho<r>_T<h>`` and ``rmse_<scenario>_rho<r>_T<h>``
    entry per private scenario row, plus
    ``margin_clamped_over_window_rho<r>_T<h>`` (how much worse the
    clamping strawman scores than Algorithm 1 — "higher is better", the
    gate's canary for a quality regression in padding/debiasing).

    Parameters
    ----------
    result:
        A :class:`~repro.experiments.config.FigureResult` produced by
        :func:`run_utility_experiment`.

    Returns
    -------
    dict
        Metric name to value, ready for ``figure_report(metrics=...)``.
    """
    metrics: dict[str, float] = {}
    by_key: dict[tuple, dict] = {}
    for row in result.comparison_rows:
        if row["rho"] == "oracle":
            continue
        suffix = f"rho{row['rho']}_T{row['horizon']}"
        metrics[f"pmse_{row['scenario']}_{suffix}"] = float(row["pmse_ratio"])
        metrics[f"rmse_{row['scenario']}_{suffix}"] = float(row["rmse"])
        by_key[(row["scenario"], suffix)] = row
    for (scenario, suffix), row in by_key.items():
        if scenario != "clamped":
            continue
        window_row = by_key.get(("window", suffix))
        if window_row is not None:
            metrics[f"margin_clamped_over_window_{suffix}"] = float(
                row["pmse_ratio"]
            ) - float(window_row["pmse_ratio"])
    return metrics
