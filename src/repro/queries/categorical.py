"""Window queries over categorical panels (the multi-category extension).

Mirrors :mod:`repro.queries.window` with base-``q`` pattern codes: a
categorical window query is a linear functional of the ``q**k`` window
histogram, e.g. "fraction unemployed in at least 2 of the last 3 months"
over an employment-status alphabet.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.categorical import CategoricalDataset
from repro.exceptions import ConfigurationError

__all__ = [
    "CategoricalWindowQuery",
    "CategoricalPatternQuery",
    "CategoryAtLeastM",
    "categorical_pattern_digits",
    "categorical_pattern_table",
]


def categorical_pattern_table(k: int, alphabet: int) -> np.ndarray:
    """Decode every base-``q`` pattern code at once.

    One broadcasted divide/modulo replaces the per-code Python loop with
    its repeated ``alphabet**j`` powers: row ``c`` of the result holds the
    ``k`` digits of pattern code ``c``, oldest first — the vectorized
    closed form of :func:`categorical_pattern_digits` over the full code
    range.  Query constructors build their weight vectors from this table
    with NumPy reductions instead of ``q**k`` scalar decodes.

    Parameters
    ----------
    k:
        Window width (positive).
    alphabet:
        Number of categories ``q >= 2``.

    Returns
    -------
    numpy.ndarray
        Shape ``(alphabet**k, k)`` int64 digit matrix.
    """
    if k <= 0:
        raise ConfigurationError(f"window width k must be positive, got {k}")
    if alphabet < 2:
        raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
    codes = np.arange(alphabet**k, dtype=np.int64)
    powers = alphabet ** np.arange(k - 1, -1, -1, dtype=np.int64)
    return (codes[:, None] // powers[None, :]) % alphabet


def categorical_pattern_digits(code: int, k: int, alphabet: int) -> tuple[int, ...]:
    """Decode a base-``q`` pattern code into its ``k`` digits, oldest first.

    Parameters
    ----------
    code:
        Pattern code in ``[0, alphabet**k)``.
    k:
        Window width.
    alphabet:
        Number of categories ``q >= 2``.
    """
    if not 0 <= code < alphabet**k:
        raise ConfigurationError(f"pattern code {code} outside [0, {alphabet}^{k})")
    powers = alphabet ** np.arange(k - 1, -1, -1, dtype=np.int64)
    return tuple(int(d) for d in (code // powers) % alphabet)


class CategoricalWindowQuery:
    """A linear query over the length-``k`` categorical window histogram.

    Parameters
    ----------
    k:
        Window width.
    weights:
        Length-``alphabet**k`` coefficient vector: the answer is
        ``weights @ histogram / n``.
    alphabet:
        Number of categories ``q >= 2``.
    name:
        Label used in reports and tables.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``k`` or ``alphabet`` is out of range or ``weights`` has the
        wrong length.
    """

    def __init__(self, k: int, weights, alphabet: int, name: str = "categorical-window"):
        if k <= 0:
            raise ConfigurationError(f"window width k must be positive, got {k}")
        if alphabet < 2:
            raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (alphabet**k,):
            raise ConfigurationError(
                f"weights must have length {alphabet}**{k} = {alphabet**k}, "
                f"got shape {weights.shape}"
            )
        self.k = int(k)
        self.alphabet = int(alphabet)
        self.weights = weights
        self.weights.setflags(write=False)
        self.name = name

    @classmethod
    def from_predicate(
        cls,
        k: int,
        alphabet: int,
        predicate: Callable[[tuple[int, ...]], bool],
        name: str,
    ) -> "CategoricalWindowQuery":
        """Indicator query of a predicate over window patterns.

        Parameters
        ----------
        k:
            Window width.
        alphabet:
            Number of categories ``q >= 2``.
        predicate:
            Called once per pattern with its digit tuple (oldest first,
            decoded in one :func:`categorical_pattern_table` pass).
        name:
            Label used in reports and tables.
        """
        table = categorical_pattern_table(k, alphabet)
        weights = np.fromiter(
            (1.0 if predicate(tuple(row)) else 0.0 for row in table.tolist()),
            dtype=np.float64,
            count=table.shape[0],
        )
        return cls(k, weights, alphabet, name=name)

    def min_time(self) -> int:
        """Earliest round at which the query is defined."""
        return self.k

    def check_time(self, t: int) -> None:
        """Raise if the query is not defined at round ``t``."""
        if t < self.k:
            raise ConfigurationError(f"{self.name} is defined from t={self.k}, got t={t}")

    def evaluate(self, dataset: CategoricalDataset, t: int) -> float:
        """Ground-truth value on a raw categorical panel."""
        self.check_time(t)
        if dataset.alphabet != self.alphabet:
            raise ConfigurationError(
                f"query alphabet {self.alphabet} != dataset alphabet {dataset.alphabet}"
            )
        histogram = dataset.suffix_histogram(t, self.k)
        return float(self.weights @ histogram) / dataset.n_individuals

    @property
    def weight_sum(self) -> float:
        """``sum_s w_s`` — the per-fake-person padding contribution."""
        return float(self.weights.sum())

    def __repr__(self) -> str:
        return f"CategoricalWindowQuery({self.name!r}, k={self.k}, q={self.alphabet})"


class CategoricalPatternQuery(CategoricalWindowQuery):
    """Fraction whose window equals one specific categorical pattern.

    Parameters
    ----------
    k:
        Window width.
    pattern:
        The target pattern, either as a base-``alphabet`` integer code or
        as a length-``k`` digit sequence (most recent round = least
        significant digit).
    alphabet:
        Number of categories ``q >= 2``.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``pattern`` is not a valid length-``k`` base-``alphabet``
        string or code.
    """

    def __init__(self, k: int, pattern: int | Sequence[int], alphabet: int):
        if isinstance(pattern, (list, tuple, np.ndarray)):
            digits = tuple(int(d) for d in pattern)
            if len(digits) != k or any(not 0 <= d < alphabet for d in digits):
                raise ConfigurationError(
                    f"pattern {pattern!r} is not a length-{k} base-{alphabet} string"
                )
            code = 0
            for digit in digits:
                code = code * alphabet + digit
        else:
            code = int(pattern)
            digits = categorical_pattern_digits(code, k, alphabet)
        weights = np.zeros(alphabet**k, dtype=np.float64)
        weights[code] = 1.0
        self.pattern_code = code
        self.pattern = digits
        super().__init__(
            k, weights, alphabet, name=f"pattern[{'-'.join(map(str, digits))}]"
        )


class CategoryAtLeastM(CategoricalWindowQuery):
    """Fraction reporting a given category at least ``m`` of ``k`` rounds.

    Parameters
    ----------
    k:
        Window width.
    alphabet:
        Number of categories ``q >= 2``.
    category:
        The category of interest, in ``[0, alphabet)``.
    m:
        Minimum number of rounds (``0 <= m <= k``) the category must be
        reported within the window.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``category`` or ``m`` is out of range.
    """

    def __init__(self, k: int, alphabet: int, category: int, m: int):
        if not 0 <= category < alphabet:
            raise ConfigurationError(
                f"category must lie in [0, {alphabet}), got {category}"
            )
        if not 0 <= m <= k:
            raise ConfigurationError(f"m must lie in [0, {k}], got {m}")
        self.category = category
        self.m = m
        table = categorical_pattern_table(k, alphabet)
        weights = ((table == category).sum(axis=1) >= m).astype(np.float64)
        super().__init__(
            k, weights, alphabet, name=f"category_{category}_at_least_{m}_of_{k}"
        )
