"""Fixed time window queries (§2.1 of the paper).

The atomic query :class:`PatternQuery` is ``q_s^t``: the fraction of
individuals whose most recent length-``k`` window equals pattern ``s``.
:class:`WindowLinearQuery` generalizes to any linear combination of pattern
indicators, which is the class Algorithm 1's synthetic data supports "without
any additional privacy cost" (§5).  Named constructors build the statistics
used in Figure 1:

* :class:`AtLeastMOnes` — in poverty at least ``m`` of the ``k`` months;
* :class:`AtLeastMConsecutiveOnes` — at least ``m`` *consecutive* months;
* :class:`AllOnes` — all ``k`` months;
* :class:`ExactlyMOnes` — exactly ``m`` months.

Pattern bit order: pattern code ``s`` reads the window big-endian, so bit
``k-1`` of the code is the **oldest** month in the window and bit 0 the most
recent (matching :meth:`LongitudinalDataset.window_codes`).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.queries.base import WindowQuery

__all__ = [
    "PatternQuery",
    "WindowLinearQuery",
    "AtLeastMOnes",
    "AtLeastMConsecutiveOnes",
    "AllOnes",
    "ExactlyMOnes",
    "pattern_bits",
]


def pattern_bits(code: int, k: int) -> tuple[int, ...]:
    """Decode a pattern code into its ``k`` bits, oldest month first."""
    if not 0 <= code < (1 << k):
        raise ConfigurationError(f"pattern code {code} outside [0, 2**{k})")
    return tuple((code >> (k - 1 - j)) & 1 for j in range(k))


def _weights_from_predicate(
    k: int, predicate: Callable[[tuple[int, ...]], bool]
) -> np.ndarray:
    """Indicator weight vector of a predicate over length-``k`` patterns."""
    weights = np.zeros(1 << k, dtype=np.float64)
    for code in range(1 << k):
        if predicate(pattern_bits(code, k)):
            weights[code] = 1.0
    return weights


class PatternQuery(WindowQuery):
    """``q_s^t``: fraction whose window equals one specific pattern ``s``.

    Parameters
    ----------
    k:
        Window width.
    pattern:
        The target pattern, either as an integer code in ``[0, 2**k)``
        (big-endian: the most recent round is the least-significant bit)
        or as a length-``k`` sequence of 0/1 bits.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``pattern`` is not a valid ``k``-bit string or code.
    """

    def __init__(self, k: int, pattern: int | Sequence[int]):
        if isinstance(pattern, (list, tuple, np.ndarray)):
            bits = tuple(int(b) for b in pattern)
            if len(bits) != k or any(b not in (0, 1) for b in bits):
                raise ConfigurationError(f"pattern {pattern!r} is not a {k}-bit string")
            code = 0
            for b in bits:
                code = (code << 1) | b
        else:
            code = int(pattern)
            bits = pattern_bits(code, k)
        weights = np.zeros(1 << k, dtype=np.float64)
        weights[code] = 1.0
        self.pattern_code = code
        self.pattern = bits
        super().__init__(k, weights, name=f"pattern[{''.join(map(str, bits))}]")


class WindowLinearQuery(WindowQuery):
    """An arbitrary linear combination of pattern indicators.

    Parameters
    ----------
    k:
        Window width.
    weights:
        Length ``2**k`` coefficient vector indexed by pattern code.
    name:
        Label used in experiment tables.
    """

    def __init__(self, k: int, weights, name: str = "window-linear"):
        super().__init__(k, np.asarray(weights, dtype=np.float64), name=name)

    @classmethod
    def from_predicate(
        cls, k: int, predicate: Callable[[tuple[int, ...]], bool], name: str
    ) -> "WindowLinearQuery":
        """Indicator query of an arbitrary predicate over window patterns."""
        return cls(k, _weights_from_predicate(k, predicate), name=name)


class AtLeastMOnes(WindowLinearQuery):
    """Fraction with at least ``m`` ones in the current ``k``-window."""

    def __init__(self, k: int, m: int):
        if not 0 <= m <= k:
            raise ConfigurationError(f"m must lie in [0, {k}], got {m}")
        super().__init__(
            k,
            _weights_from_predicate(k, lambda bits: sum(bits) >= m),
            name=f"at_least_{m}_of_{k}",
        )
        self.m = m


class ExactlyMOnes(WindowLinearQuery):
    """Fraction with exactly ``m`` ones in the current ``k``-window."""

    def __init__(self, k: int, m: int):
        if not 0 <= m <= k:
            raise ConfigurationError(f"m must lie in [0, {k}], got {m}")
        super().__init__(
            k,
            _weights_from_predicate(k, lambda bits: sum(bits) == m),
            name=f"exactly_{m}_of_{k}",
        )
        self.m = m


def _has_consecutive_run(bits: tuple[int, ...], m: int) -> bool:
    run = 0
    for bit in bits:
        run = run + 1 if bit else 0
        if run >= m:
            return True
    return m == 0


class AtLeastMConsecutiveOnes(WindowLinearQuery):
    """Fraction with a run of at least ``m`` consecutive ones in the window."""

    def __init__(self, k: int, m: int):
        if not 0 <= m <= k:
            raise ConfigurationError(f"m must lie in [0, {k}], got {m}")
        super().__init__(
            k,
            _weights_from_predicate(k, lambda bits: _has_consecutive_run(bits, m)),
            name=f"at_least_{m}_consecutive_of_{k}",
        )
        self.m = m


class AllOnes(WindowLinearQuery):
    """Fraction whose entire current ``k``-window is ones."""

    def __init__(self, k: int):
        super().__init__(
            k,
            _weights_from_predicate(k, lambda bits: all(bits)),
            name=f"all_{k}",
        )
