"""Cumulative time queries (§2.1 of the paper).

``c_b^t`` asks what fraction of individuals have Hamming weight at least
``b`` through round ``t`` — e.g. "in poverty for at least ``b`` of the first
``t`` months".  :class:`HammingExactly` derives the exactly-``b`` variant by
differencing adjacent thresholds.

:func:`cumulative_as_window_weights` implements the paper's §2.1 reduction:
with ``k = T``, the cumulative query is the linear combination of all
window patterns of weight at least ``b``.  It exists to *demonstrate* the
reduction (and its ``2**k`` error blow-up) on tiny horizons; Algorithm 2 is
the real mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import LongitudinalDataset
from repro.exceptions import ConfigurationError
from repro.queries.base import Query

__all__ = ["HammingAtLeast", "HammingExactly", "cumulative_as_window_weights"]


class HammingAtLeast(Query):
    """``c_b^t``: fraction with at least ``b`` ones through round ``t``.

    Parameters
    ----------
    b:
        Hamming-weight threshold (non-negative).  ``b = 0`` is the
        constant-1 query; values above the horizon are structurally 0.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``b`` is negative.
    """

    def __init__(self, b: int):
        if b < 0:
            raise ConfigurationError(f"threshold b must be non-negative, got {b}")
        self.b = int(b)
        self.name = f"hamming_at_least_{b}"

    def min_time(self) -> int:
        # The query is defined at every round; before round b its true value
        # is simply 0 (nobody can have b ones in fewer than b rounds).
        return 1

    def evaluate(self, dataset: LongitudinalDataset, t: int) -> float:
        self.check_time(t)
        weights = dataset.hamming_weights(t)
        return float((weights >= self.b).mean())


class HammingExactly(Query):
    """Fraction with exactly ``b`` ones through round ``t``.

    Computed as ``c_b^t - c_{b+1}^t``; the synthetic release answers it the
    same way from its maintained threshold table, so no extra privacy cost.

    Parameters
    ----------
    b:
        Exact Hamming weight (non-negative).

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``b`` is negative.
    """

    def __init__(self, b: int):
        if b < 0:
            raise ConfigurationError(f"threshold b must be non-negative, got {b}")
        self.b = int(b)
        self.name = f"hamming_exactly_{b}"

    def min_time(self) -> int:
        return 1

    def evaluate(self, dataset: LongitudinalDataset, t: int) -> float:
        self.check_time(t)
        weights = dataset.hamming_weights(t)
        return float((weights == self.b).mean())


def cumulative_as_window_weights(horizon: int, b: int) -> np.ndarray:
    """Weight vector expressing ``c_b`` as a width-``T`` window query.

    Implements ``c_b(x) = sum_{s : |s| >= b} q_s(x)`` from §2.1.  The vector
    has length ``2**horizon``; callers should keep ``horizon`` small (the
    guard refuses ``horizon > 20``).
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    if horizon > 20:
        raise ConfigurationError(
            f"reduction materializes 2**T weights; refusing T={horizon} > 20"
        )
    if b < 0:
        raise ConfigurationError(f"threshold b must be non-negative, got {b}")
    codes = np.arange(1 << horizon, dtype=np.uint64)
    popcounts = np.zeros(1 << horizon, dtype=np.int64)
    for j in range(horizon):
        popcounts += ((codes >> np.uint64(j)) & np.uint64(1)).astype(np.int64)
    return (popcounts >= b).astype(np.float64)
