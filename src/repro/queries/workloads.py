"""Named query workloads used by the paper's experiments.

Figure 1 evaluates, per quarter, four statistics of the quarterly (``k=3``)
poverty window; Figures 2/8 track the ``b = 3`` cumulative threshold over
months.  These functions build exactly those query sets so experiments,
benchmarks and examples share one definition.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.queries.cumulative import HammingAtLeast
from repro.queries.window import (
    AllOnes,
    AtLeastMConsecutiveOnes,
    AtLeastMOnes,
    WindowLinearQuery,
)

__all__ = ["quarterly_poverty_workload", "cumulative_threshold_series", "quarter_ends"]


def quarterly_poverty_workload(k: int = 3) -> list[WindowLinearQuery]:
    """The four Figure-1 statistics over a width-``k`` window.

    1. in poverty in **at least one** month of the quarter;
    2. in poverty in **at least two** months;
    3. in poverty in **at least two consecutive** months;
    4. in poverty in **all three** months.

    For ``k != 3`` the same four shapes are built over the wider/narrower
    window (all-``k`` instead of all-three).

    Parameters
    ----------
    k:
        Window width (at least 2; the paper uses quarters, ``k = 3``).

    Returns
    -------
    list of WindowLinearQuery
        The four queries, in the order listed above.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``k < 2`` (the consecutive-months query needs two rounds).
    """
    if k < 2:
        raise ConfigurationError(f"the quarterly workload needs k >= 2, got {k}")
    return [
        AtLeastMOnes(k, 1),
        AtLeastMOnes(k, 2),
        AtLeastMConsecutiveOnes(k, 2),
        AllOnes(k),
    ]


def quarter_ends(horizon: int, k: int = 3) -> list[int]:
    """Rounds at which quarterly windows close: ``k, 2k, ...`` up to ``T``."""
    if horizon < k:
        raise ConfigurationError(f"horizon {horizon} shorter than window {k}")
    return list(range(k, horizon + 1, k))


def cumulative_threshold_series(b: int = 3) -> HammingAtLeast:
    """The Figures-2/8 query: in poverty at least ``b`` of the first t months."""
    return HammingAtLeast(b)
