"""Batched query planning: one vectorized read path for whole workloads.

The paper's evaluation — and any serving deployment worth the name —
answers *workloads* per round, not single queries.  This module is the
planner behind ``Release.answer_batch(queries, times)``: it groups an
arbitrary mix of queries by family (Hamming-threshold, binary window,
categorical window), compiles each group into index/weight arrays that
evaluate against a release's threshold table or window histograms in a
handful of NumPy gathers, and provides the scalar fallback grid that
keeps the protocol total for releases (or queries) the compiler does not
know.

Three guarantees shape every function here:

* **Bit-identity** — a batched answer is the *same float* the scalar
  ``answer(query, t)`` call returns, noise, debiasing, churn and all.
  Cumulative answers vectorize exactly (integer gathers + elementwise
  division); window answers keep the scalar path's dot product per
  ``(query, time)`` cell and only hoist the per-call histogram fetch,
  weight lifting, and population lookups out of the loop.
* **Grid semantics** — a cell with ``t < query.min_time()`` is ``NaN``
  (the convention ``replicate_synthesizer`` already uses); any other
  out-of-range ``t`` raises exactly like the scalar call would.
* **Cacheability** — :func:`workload_key` derives a hashable identity
  for a workload so releases can memoize answers per release version
  (see :class:`AnswerCache`), and :func:`encode_workload` /
  :func:`decode_workload` round-trip a workload through flat arrays so
  the process executor can stage it through shared memory.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.queries.base import WindowQuery
from repro.queries.categorical import CategoricalWindowQuery
from repro.queries.cumulative import HammingAtLeast, HammingExactly

__all__ = [
    "AnswerCache",
    "compile_cumulative",
    "decode_workload",
    "encode_workload",
    "query_signature",
    "release_answer_grid",
    "scalar_answer_grid",
    "workload_key",
]


def query_signature(query) -> tuple | None:
    """Hashable identity of a query, or ``None`` if it has none.

    Two queries with equal signatures are guaranteed to produce equal
    answers on every release, so signatures key the compiled-plan and
    answer caches.  Unknown query types return ``None`` (uncacheable,
    answered through the scalar fallback).
    """
    if isinstance(query, HammingAtLeast):
        return ("hamming_ge", query.b)
    if isinstance(query, HammingExactly):
        return ("hamming_eq", query.b)
    if isinstance(query, CategoricalWindowQuery):
        return ("categorical", query.k, query.alphabet, query.weights.tobytes())
    if isinstance(query, WindowQuery):
        return ("window", query.k, query.weights.tobytes())
    return None


def workload_key(queries, times, **kwargs) -> tuple | None:
    """Hashable identity of a whole batched call, or ``None``.

    Combines every query's :func:`query_signature`, the evaluation
    times, and the keyword arguments (``debias=``,
    ``padding_convention=``, ...).  Returns ``None`` — meaning "do not
    cache" — as soon as any component lacks a stable hashable identity.
    """
    signatures = []
    for query in queries:
        signature = query_signature(query)
        if signature is None:
            return None
        signatures.append(signature)
    options = tuple(sorted(kwargs.items()))
    try:
        hash(options)
    except TypeError:
        return None
    return (tuple(signatures), tuple(int(t) for t in times), options)


class AnswerCache:
    """Release-version-keyed memo of batched workload answers.

    ``get``/``put`` take the owning release's current version; a version
    change (every ``observe()``, state restore, or horizon extension
    bumps it) atomically invalidates all cached grids.  Grids are copied
    on the way in and out so callers can never mutate the cache.
    """

    def __init__(self):
        self._version = None
        self._answers: dict = {}

    def get(self, version, key):
        """Cached answer grid for ``key`` at ``version``, or ``None``."""
        if version != self._version:
            return None
        hit = self._answers.get(key)
        return None if hit is None else hit.copy()

    def put(self, version, key, grid) -> None:
        """Store ``grid`` for ``key``, invalidating stale versions."""
        if version != self._version:
            self._version = version
            self._answers = {}
        self._answers[key] = np.array(grid, dtype=np.float64, copy=True)

    def __len__(self) -> int:
        return len(self._answers)


def scalar_answer_grid(release, queries, times, **kwargs) -> np.ndarray:
    """The default ``answer_batch``: one scalar ``answer()`` per cell.

    Returns a ``(len(queries), len(times))`` float64 grid with ``NaN``
    where ``t < query.min_time()``.  Every release satisfies the
    protocol through this fallback, so batched serving is total even
    for query families the planner cannot compile.
    """
    times = [int(t) for t in times]
    out = np.full((len(queries), len(times)), np.nan, dtype=np.float64)
    for qi, query in enumerate(queries):
        floor = query.min_time()
        for ti, t in enumerate(times):
            if t >= floor:
                out[qi, ti] = release.answer(query, t, **kwargs)
    return out


def release_answer_grid(release, queries, times, debias: bool = True) -> np.ndarray:
    """Answer a workload on any release through its best available path.

    Dispatches to ``release.answer_batch`` when present (every release
    in the package), falling back to :func:`scalar_answer_grid`; the
    ``debias=`` keyword is forwarded only to debias-aware releases,
    mirroring the scalar dispatch the replication harness used.
    """
    kwargs = {"debias": debias} if getattr(release, "debias_aware", False) else {}
    batch = getattr(release, "answer_batch", None)
    if batch is None:
        return scalar_answer_grid(release, queries, times, **kwargs)
    return np.asarray(batch(list(queries), [int(t) for t in times], **kwargs))


def compile_cumulative(queries, horizon: int) -> tuple[np.ndarray, np.ndarray]:
    """Compile Hamming-threshold queries to threshold-table gathers.

    Returns per-query column indices ``(lower, upper)`` into a threshold
    table augmented with one virtual all-zero column at index
    ``horizon + 1``: the count answer at time ``t`` is
    ``table[t, lower] - table[t, upper]``.  ``HammingAtLeast(b)`` maps
    to ``(b, zero)`` (or ``(zero, zero)`` when ``b`` exceeds the
    horizon — structurally 0); ``HammingExactly(b)`` maps to
    ``(b, b + 1)`` with either leg clipped to the zero column.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If any query is not a Hamming-threshold query.
    """
    zero = horizon + 1
    lower = np.empty(len(queries), dtype=np.int64)
    upper = np.empty(len(queries), dtype=np.int64)
    for qi, query in enumerate(queries):
        if isinstance(query, HammingAtLeast):
            lower[qi] = query.b if query.b <= horizon else zero
            upper[qi] = zero
        elif isinstance(query, HammingExactly):
            lower[qi] = query.b if query.b <= horizon else zero
            upper[qi] = query.b + 1 if query.b + 1 <= horizon else zero
        else:
            raise ConfigurationError(
                "the cumulative planner compiles HammingAtLeast/HammingExactly "
                f"queries, got {query!r}"
            )
    return lower, upper


def encode_workload(queries) -> tuple[list, np.ndarray]:
    """Flatten a workload into ``(spec, buffer)`` for shared-memory RPC.

    ``spec`` is a small picklable list (one tuple per query) and
    ``buffer`` one contiguous float64 array holding every weight vector;
    the process executor stages the buffer through its shared-memory
    segments and sends only the spec down the worker pipe.  Query types
    the planner does not know ride along inside the spec verbatim.
    """
    spec: list = []
    parts: list = []
    offset = 0
    for query in queries:
        if isinstance(query, HammingAtLeast):
            spec.append(("hamming_ge", query.b))
        elif isinstance(query, HammingExactly):
            spec.append(("hamming_eq", query.b))
        elif isinstance(query, CategoricalWindowQuery):
            weights = np.ascontiguousarray(query.weights, dtype=np.float64)
            spec.append(
                (
                    "categorical",
                    query.k,
                    query.alphabet,
                    query.name,
                    offset,
                    weights.size,
                )
            )
            parts.append(weights)
            offset += weights.size
        elif isinstance(query, WindowQuery):
            weights = np.ascontiguousarray(query.weights, dtype=np.float64)
            spec.append(("window", query.k, query.name, offset, weights.size))
            parts.append(weights)
            offset += weights.size
        else:
            spec.append(("opaque", query))
    buffer = np.concatenate(parts) if parts else np.zeros(0, dtype=np.float64)
    return spec, buffer


def decode_workload(spec, buffer) -> list:
    """Rebuild the query objects from :func:`encode_workload` output.

    The reconstructed queries carry bit-identical weight vectors (flat
    float64 copies out of ``buffer``), so answers computed on the far
    side of the RPC equal answers computed in-process.
    """
    buffer = np.asarray(buffer, dtype=np.float64)
    queries = []
    for entry in spec:
        tag = entry[0]
        if tag == "hamming_ge":
            queries.append(HammingAtLeast(entry[1]))
        elif tag == "hamming_eq":
            queries.append(HammingExactly(entry[1]))
        elif tag == "categorical":
            _, k, alphabet, name, offset, size = entry
            queries.append(
                CategoricalWindowQuery(
                    k, buffer[offset : offset + size].copy(), alphabet, name=name
                )
            )
        elif tag == "window":
            _, k, name, offset, size = entry
            queries.append(WindowQuery(k, buffer[offset : offset + size].copy(), name))
        elif tag == "opaque":
            queries.append(entry[1])
        else:
            raise ConfigurationError(f"unknown workload spec entry {entry!r}")
    return queries
