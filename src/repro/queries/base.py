"""Query abstractions.

A :class:`Query` evaluates to a fraction in ``[0, 1]`` on a
:class:`~repro.data.dataset.LongitudinalDataset` at a given time.  Window
queries additionally expose a weight vector over the ``2**k`` pattern bins,
which is how the synthetic-data releases answer them directly from their
maintained histograms (and how debiasing subtracts the padding
contribution).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.dataset import LongitudinalDataset
from repro.exceptions import ConfigurationError

__all__ = ["Query", "WindowQuery"]


class Query(abc.ABC):
    """A counting query: a predicate averaged over individuals."""

    #: Human-readable name used in reports and experiment tables.
    name: str = "query"

    @abc.abstractmethod
    def min_time(self) -> int:
        """Earliest round ``t`` at which the query is defined."""

    @abc.abstractmethod
    def evaluate(self, dataset: LongitudinalDataset, t: int) -> float:
        """Ground-truth value ``q(D^1, ..., D^t)`` on the raw panel."""

    def check_time(self, t: int) -> None:
        """Raise if the query is not defined at round ``t``."""
        if t < self.min_time():
            raise ConfigurationError(
                f"{self.name} is defined from t={self.min_time()}, got t={t}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class WindowQuery(Query):
    """A linear query over the length-``k`` window histogram.

    Subclasses provide ``k`` and a length ``2**k`` weight vector ``w``; the
    query value at time ``t`` is ``sum_s w_s * C_s^t / n`` where ``C_s^t``
    is the count of individuals whose window ``(x^{t-k+1}, ..., x^t)``
    equals pattern ``s``.
    """

    def __init__(self, k: int, weights: np.ndarray, name: str):
        if k <= 0:
            raise ConfigurationError(f"window width k must be positive, got {k}")
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (1 << k,):
            raise ConfigurationError(
                f"weights must have length 2**k = {1 << k}, got shape {weights.shape}"
            )
        self.k = int(k)
        self.weights = weights
        self.weights.setflags(write=False)
        self.name = name

    def min_time(self) -> int:
        return self.k

    def evaluate(self, dataset: LongitudinalDataset, t: int) -> float:
        self.check_time(t)
        histogram = dataset.suffix_histogram(t, self.k)
        return float(self.weights @ histogram) / dataset.n_individuals

    def evaluate_histogram(self, histogram: np.ndarray, denominator: float) -> float:
        """Answer from a (possibly synthetic) bin-count vector."""
        histogram = np.asarray(histogram, dtype=np.float64)
        if histogram.shape != self.weights.shape:
            raise ConfigurationError(
                f"histogram has shape {histogram.shape}, expected {self.weights.shape}"
            )
        if denominator <= 0:
            raise ConfigurationError(f"denominator must be positive, got {denominator}")
        return float(self.weights @ histogram) / denominator

    @property
    def weight_sum(self) -> float:
        """``sum_s w_s`` — the padding contribution per fake person per bin."""
        return float(self.weights.sum())

    @property
    def weight_l2(self) -> float:
        """``||w||_2`` — enters the linear-combination error bound (§1)."""
        return float(np.linalg.norm(self.weights))
