"""Query classes supported by the continual synthesizers.

The paper studies two families of counting queries over binary panels
(§2.1):

* **Fixed time window queries** — indicator of a specific length-``k``
  pattern in the most recent window, and, by linear combination, any
  statistic of the window histogram (:mod:`repro.queries.window`).
* **Cumulative time queries** — indicator of Hamming weight at least ``b``
  through time ``t`` (:mod:`repro.queries.cumulative`).

:mod:`repro.queries.workloads` bundles the concrete query sets used in the
paper's figures (the four quarterly poverty statistics of Figure 1 and the
``b = 3`` cumulative series of Figures 2/8).
"""

from repro.queries.base import Query, WindowQuery
from repro.queries.categorical import (
    CategoricalPatternQuery,
    CategoricalWindowQuery,
    CategoryAtLeastM,
    categorical_pattern_table,
)
from repro.queries.cumulative import (
    HammingAtLeast,
    HammingExactly,
    cumulative_as_window_weights,
)
from repro.queries.plan import (
    AnswerCache,
    compile_cumulative,
    decode_workload,
    encode_workload,
    query_signature,
    release_answer_grid,
    scalar_answer_grid,
    workload_key,
)
from repro.queries.window import (
    AllOnes,
    AtLeastMConsecutiveOnes,
    AtLeastMOnes,
    ExactlyMOnes,
    PatternQuery,
    WindowLinearQuery,
)
from repro.queries.workloads import (
    cumulative_threshold_series,
    quarterly_poverty_workload,
)

__all__ = [
    "Query",
    "WindowQuery",
    "CategoricalWindowQuery",
    "CategoricalPatternQuery",
    "CategoryAtLeastM",
    "categorical_pattern_table",
    "PatternQuery",
    "WindowLinearQuery",
    "AtLeastMOnes",
    "AtLeastMConsecutiveOnes",
    "AllOnes",
    "ExactlyMOnes",
    "HammingAtLeast",
    "HammingExactly",
    "cumulative_as_window_weights",
    "quarterly_poverty_workload",
    "cumulative_threshold_series",
    "AnswerCache",
    "compile_cumulative",
    "decode_workload",
    "encode_workload",
    "query_signature",
    "release_answer_grid",
    "scalar_answer_grid",
    "workload_key",
]
