"""Synthetic longitudinal stream generators.

Each generator returns a :class:`~repro.data.dataset.LongitudinalDataset`.
They cover the regimes the paper's experiments and our ablations exercise:

* :func:`all_ones` — the "rather extreme" simulated data of Figures 3/4
  (every report is 1, concentrating all mass in one histogram bin).
* :func:`iid_bernoulli` — memoryless reports; the easiest case.
* :func:`two_state_markov` — persistent states (poverty spells, employment
  spells); the generative backbone of the SIPP simulator.
* :func:`bursty_spells` — rare events with geometric spell lengths.
* :func:`seasonal` — sinusoidally modulated incidence, for trend queries.
* :func:`mixture` — population made of heterogeneous subgroups (the
  subpopulation model of Joseph et al. 2018 discussed in related work).

Dynamic populations (churn):

* :func:`apply_churn` — overlay a hazard-driven entry/exit schedule on
  any static panel, producing a
  :class:`~repro.data.dataset.DynamicPanel` for the synthesizers'
  entry/exit protocol.
* :func:`churn_two_state_markov` — persistent-state reports plus churn
  in one call (the backbone of the attrition-sweep experiment).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import DynamicPanel, LongitudinalDataset
from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, as_generator

__all__ = [
    "all_ones",
    "iid_bernoulli",
    "two_state_markov",
    "bursty_spells",
    "seasonal",
    "mixture",
    "apply_churn",
    "churn_two_state_markov",
]


def _check_shape(n: int, horizon: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")


def _check_prob(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")


def all_ones(n: int, horizon: int) -> LongitudinalDataset:
    """Every individual reports 1 in every round (Figure 3/4 workload).

    Parameters
    ----------
    n:
        Number of individuals.
    horizon:
        Number of rounds ``T``.

    Returns
    -------
    LongitudinalDataset
        The ``n x T`` all-ones panel.
    """
    _check_shape(n, horizon)
    return LongitudinalDataset(np.ones((n, horizon), dtype=np.uint8))


def iid_bernoulli(
    n: int, horizon: int, p: float, seed: SeedLike = None
) -> LongitudinalDataset:
    """Independent ``Bernoulli(p)`` reports.

    Parameters
    ----------
    n:
        Number of individuals.
    horizon:
        Number of rounds ``T``.
    p:
        Per-cell success probability, in ``[0, 1]``.
    seed:
        Seed or generator for the draws.

    Returns
    -------
    LongitudinalDataset
        An ``n x T`` panel of independent ``Bernoulli(p)`` bits.
    """
    _check_shape(n, horizon)
    _check_prob(p, "p")
    generator = as_generator(seed)
    return LongitudinalDataset((generator.random((n, horizon)) < p).astype(np.uint8))


def two_state_markov(
    n: int,
    horizon: int,
    p_stay: float,
    p_enter: float,
    p_initial: float | None = None,
    seed: SeedLike = None,
) -> LongitudinalDataset:
    """Two-state Markov chain per individual.

    Parameters
    ----------
    p_stay:
        ``P(x^t = 1 | x^{t-1} = 1)`` — persistence of the 1-state.
    p_enter:
        ``P(x^t = 1 | x^{t-1} = 0)`` — entry rate into the 1-state.
    p_initial:
        ``P(x^1 = 1)``.  Defaults to the stationary probability
        ``p_enter / (p_enter + 1 - p_stay)`` so that marginals are constant
        over time.
    """
    _check_shape(n, horizon)
    _check_prob(p_stay, "p_stay")
    _check_prob(p_enter, "p_enter")
    if p_initial is None:
        denominator = p_enter + (1.0 - p_stay)
        p_initial = p_enter / denominator if denominator > 0 else 0.0
    _check_prob(p_initial, "p_initial")
    generator = as_generator(seed)
    uniforms = generator.random((n, horizon))
    matrix = np.empty((n, horizon), dtype=np.uint8)
    matrix[:, 0] = uniforms[:, 0] < p_initial
    for t in range(1, horizon):
        threshold = np.where(matrix[:, t - 1] == 1, p_stay, p_enter)
        matrix[:, t] = uniforms[:, t] < threshold
    return LongitudinalDataset(matrix)


def bursty_spells(
    n: int,
    horizon: int,
    spell_rate: float,
    mean_spell_length: float,
    seed: SeedLike = None,
) -> LongitudinalDataset:
    """Rare spells of 1s with geometric lengths.

    Equivalent to a two-state Markov chain with
    ``p_enter = spell_rate`` and ``p_stay = 1 - 1/mean_spell_length``, but
    started from the all-0 state — the profile of "unemployment spell"
    style workloads the paper's introduction motivates.
    """
    _check_prob(spell_rate, "spell_rate")
    if mean_spell_length < 1.0:
        raise ConfigurationError(
            f"mean_spell_length must be at least 1, got {mean_spell_length}"
        )
    return two_state_markov(
        n,
        horizon,
        p_stay=1.0 - 1.0 / mean_spell_length,
        p_enter=spell_rate,
        p_initial=0.0,
        seed=seed,
    )


def seasonal(
    n: int,
    horizon: int,
    base_p: float,
    amplitude: float,
    period: int = 12,
    seed: SeedLike = None,
) -> LongitudinalDataset:
    """Independent reports with sinusoidal incidence over time.

    ``P(x^t = 1) = base_p + amplitude * sin(2 pi t / period)``, clipped to
    ``[0, 1]``.  Exercises population-level trend tracking.
    """
    _check_shape(n, horizon)
    _check_prob(base_p, "base_p")
    if period <= 0:
        raise ConfigurationError(f"period must be positive, got {period}")
    generator = as_generator(seed)
    t = np.arange(1, horizon + 1)
    probs = np.clip(base_p + amplitude * np.sin(2.0 * np.pi * t / period), 0.0, 1.0)
    return LongitudinalDataset((generator.random((n, horizon)) < probs).astype(np.uint8))


def mixture(
    components: Sequence[LongitudinalDataset],
    seed: SeedLike = None,
    shuffle: bool = True,
) -> LongitudinalDataset:
    """Pool several sub-population panels into one dataset.

    All components must share the same horizon.  With ``shuffle`` (default)
    the row order is randomized so group membership is not positional.
    """
    if not components:
        raise ConfigurationError("mixture requires at least one component")
    horizon = components[0].horizon
    for component in components[1:]:
        if component.horizon != horizon:
            raise ConfigurationError("all mixture components must share the horizon")
    stacked = np.vstack([component.matrix for component in components])
    if shuffle:
        generator = as_generator(seed)
        stacked = stacked[generator.permutation(stacked.shape[0])]
    return LongitudinalDataset(stacked)


def apply_churn(
    dataset: LongitudinalDataset,
    entry_rate: float = 0.0,
    exit_hazard: float = 0.0,
    seed: SeedLike = None,
) -> DynamicPanel:
    """Overlay a random entry/exit schedule on a static panel.

    Each individual independently enters late with probability
    ``entry_rate`` (uniformly in rounds ``2..T``) and, once present,
    departs after each round with per-round hazard ``exit_hazard``
    (geometric lifespans, survey-attrition style: once gone, gone for
    good).  Reports outside the lifespan are zeroed — the zero-fill
    convention — and rows are reordered by entry round so the result is
    a valid :class:`~repro.data.dataset.DynamicPanel`.

    Parameters
    ----------
    dataset:
        The static panel supplying every individual's reports.
    entry_rate:
        Probability (in ``[0, 1]``) that an individual enters after
        round 1.  At least one individual is always kept in round 1.
    exit_hazard:
        Per-round departure probability (in ``[0, 1)``) after entry.
    seed:
        Seed or generator for the churn schedule.

    Returns
    -------
    DynamicPanel
        The churned panel; with both rates 0 it carries the original
        rows unchanged (and ``churned`` is False).
    """
    _check_prob(entry_rate, "entry_rate")
    if not 0.0 <= exit_hazard < 1.0:
        raise ConfigurationError(f"exit_hazard must lie in [0, 1), got {exit_hazard}")
    generator = as_generator(seed)
    matrix = np.array(dataset.matrix, dtype=np.uint8)
    n, horizon = matrix.shape

    entry = np.ones(n, dtype=np.int64)
    if entry_rate > 0.0 and horizon > 1:
        late = generator.random(n) < entry_rate
        late[0] = False  # round 1 must admit at least one individual
        entry[late] = generator.integers(2, horizon + 1, size=int(late.sum()))

    exit_round = np.zeros(n, dtype=np.int64)
    if exit_hazard > 0.0:
        # Geometric residual lifespan after entry: individual i reports in
        # rounds entry..entry+L-1 with P(L = l) = h (1-h)^(l-1).
        lifespan = generator.geometric(exit_hazard, size=n)
        proposed = entry + lifespan
        departs = proposed <= horizon
        exit_round[departs] = proposed[departs]

    order = np.argsort(entry, kind="stable")
    matrix, entry, exit_round = matrix[order], entry[order], exit_round[order]

    rounds = np.arange(1, horizon + 1)
    outside = (rounds[None, :] < entry[:, None]) | (
        (exit_round[:, None] != 0) & (rounds[None, :] >= exit_round[:, None])
    )
    matrix[outside] = 0
    return DynamicPanel(matrix, entry, exit_round)


def churn_two_state_markov(
    n: int,
    horizon: int,
    p_stay: float,
    p_enter: float,
    entry_rate: float = 0.0,
    exit_hazard: float = 0.0,
    seed: SeedLike = None,
) -> DynamicPanel:
    """Persistent-state reports over a churning population.

    Draws a :func:`two_state_markov` panel and overlays
    :func:`apply_churn`'s hazard-driven entry/exit schedule, both from
    one seed stream.

    Parameters
    ----------
    n:
        Ever-admitted population size.
    horizon:
        Number of rounds ``T``.
    p_stay, p_enter:
        The Markov persistence and entry probabilities of
        :func:`two_state_markov`.
    entry_rate:
        Probability an individual enters after round 1.
    exit_hazard:
        Per-round departure hazard after entry.
    seed:
        Seed or generator for reports and churn schedule alike.

    Returns
    -------
    DynamicPanel
        The churned persistent-state panel.
    """
    generator = as_generator(seed)
    panel = two_state_markov(n, horizon, p_stay, p_enter, seed=generator)
    return apply_churn(
        panel, entry_rate=entry_rate, exit_hazard=exit_hazard, seed=generator
    )
