"""Synthetic longitudinal stream generators.

Each generator returns a :class:`~repro.data.dataset.LongitudinalDataset`.
They cover the regimes the paper's experiments and our ablations exercise:

* :func:`all_ones` — the "rather extreme" simulated data of Figures 3/4
  (every report is 1, concentrating all mass in one histogram bin).
* :func:`iid_bernoulli` — memoryless reports; the easiest case.
* :func:`two_state_markov` — persistent states (poverty spells, employment
  spells); the generative backbone of the SIPP simulator.
* :func:`bursty_spells` — rare events with geometric spell lengths.
* :func:`seasonal` — sinusoidally modulated incidence, for trend queries.
* :func:`mixture` — population made of heterogeneous subgroups (the
  subpopulation model of Joseph et al. 2018 discussed in related work).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import LongitudinalDataset
from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, as_generator

__all__ = [
    "all_ones",
    "iid_bernoulli",
    "two_state_markov",
    "bursty_spells",
    "seasonal",
    "mixture",
]


def _check_shape(n: int, horizon: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")


def _check_prob(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")


def all_ones(n: int, horizon: int) -> LongitudinalDataset:
    """Every individual reports 1 in every round (Figure 3/4 workload).

    Parameters
    ----------
    n:
        Number of individuals.
    horizon:
        Number of rounds ``T``.

    Returns
    -------
    LongitudinalDataset
        The ``n x T`` all-ones panel.
    """
    _check_shape(n, horizon)
    return LongitudinalDataset(np.ones((n, horizon), dtype=np.uint8))


def iid_bernoulli(n: int, horizon: int, p: float, seed: SeedLike = None) -> LongitudinalDataset:
    """Independent ``Bernoulli(p)`` reports.

    Parameters
    ----------
    n:
        Number of individuals.
    horizon:
        Number of rounds ``T``.
    p:
        Per-cell success probability, in ``[0, 1]``.
    seed:
        Seed or generator for the draws.

    Returns
    -------
    LongitudinalDataset
        An ``n x T`` panel of independent ``Bernoulli(p)`` bits.
    """
    _check_shape(n, horizon)
    _check_prob(p, "p")
    generator = as_generator(seed)
    return LongitudinalDataset((generator.random((n, horizon)) < p).astype(np.uint8))


def two_state_markov(
    n: int,
    horizon: int,
    p_stay: float,
    p_enter: float,
    p_initial: float | None = None,
    seed: SeedLike = None,
) -> LongitudinalDataset:
    """Two-state Markov chain per individual.

    Parameters
    ----------
    p_stay:
        ``P(x^t = 1 | x^{t-1} = 1)`` — persistence of the 1-state.
    p_enter:
        ``P(x^t = 1 | x^{t-1} = 0)`` — entry rate into the 1-state.
    p_initial:
        ``P(x^1 = 1)``.  Defaults to the stationary probability
        ``p_enter / (p_enter + 1 - p_stay)`` so that marginals are constant
        over time.
    """
    _check_shape(n, horizon)
    _check_prob(p_stay, "p_stay")
    _check_prob(p_enter, "p_enter")
    if p_initial is None:
        denominator = p_enter + (1.0 - p_stay)
        p_initial = p_enter / denominator if denominator > 0 else 0.0
    _check_prob(p_initial, "p_initial")
    generator = as_generator(seed)
    uniforms = generator.random((n, horizon))
    matrix = np.empty((n, horizon), dtype=np.uint8)
    matrix[:, 0] = uniforms[:, 0] < p_initial
    for t in range(1, horizon):
        threshold = np.where(matrix[:, t - 1] == 1, p_stay, p_enter)
        matrix[:, t] = uniforms[:, t] < threshold
    return LongitudinalDataset(matrix)


def bursty_spells(
    n: int,
    horizon: int,
    spell_rate: float,
    mean_spell_length: float,
    seed: SeedLike = None,
) -> LongitudinalDataset:
    """Rare spells of 1s with geometric lengths.

    Equivalent to a two-state Markov chain with
    ``p_enter = spell_rate`` and ``p_stay = 1 - 1/mean_spell_length``, but
    started from the all-0 state — the profile of "unemployment spell"
    style workloads the paper's introduction motivates.
    """
    _check_prob(spell_rate, "spell_rate")
    if mean_spell_length < 1.0:
        raise ConfigurationError(
            f"mean_spell_length must be at least 1, got {mean_spell_length}"
        )
    return two_state_markov(
        n,
        horizon,
        p_stay=1.0 - 1.0 / mean_spell_length,
        p_enter=spell_rate,
        p_initial=0.0,
        seed=seed,
    )


def seasonal(
    n: int,
    horizon: int,
    base_p: float,
    amplitude: float,
    period: int = 12,
    seed: SeedLike = None,
) -> LongitudinalDataset:
    """Independent reports with sinusoidal incidence over time.

    ``P(x^t = 1) = base_p + amplitude * sin(2 pi t / period)``, clipped to
    ``[0, 1]``.  Exercises population-level trend tracking.
    """
    _check_shape(n, horizon)
    _check_prob(base_p, "base_p")
    if period <= 0:
        raise ConfigurationError(f"period must be positive, got {period}")
    generator = as_generator(seed)
    t = np.arange(1, horizon + 1)
    probs = np.clip(base_p + amplitude * np.sin(2.0 * np.pi * t / period), 0.0, 1.0)
    return LongitudinalDataset((generator.random((n, horizon)) < probs).astype(np.uint8))


def mixture(
    components: Sequence[LongitudinalDataset],
    seed: SeedLike = None,
    shuffle: bool = True,
) -> LongitudinalDataset:
    """Pool several sub-population panels into one dataset.

    All components must share the same horizon.  With ``shuffle`` (default)
    the row order is randomized so group membership is not positional.
    """
    if not components:
        raise ConfigurationError("mixture requires at least one component")
    horizon = components[0].horizon
    for component in components[1:]:
        if component.horizon != horizon:
            raise ConfigurationError("all mixture components must share the horizon")
    stacked = np.vstack([component.matrix for component in components])
    if shuffle:
        generator = as_generator(seed)
        stacked = stacked[generator.permutation(stacked.shape[0])]
    return LongitudinalDataset(stacked)
