"""Panel and release serialization.

Synthetic data's whole point is to be handed to analysts as microdata
files.  This module round-trips panels through two formats:

* **CSV** — one row per individual, one column per round (header
  ``t1,...,tT``), the format analysts load into R / Stata / pandas;
* **NPZ** — compact numpy archive with metadata, for programmatic
  pipelines.

``save_release_csv`` exports a fixed-window release's synthetic records
together with a small JSON sidecar of the public metadata an analyst needs
to debias (``n``, ``n_pad``, ``k``, ``T``, privacy parameters).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.data.categorical import CategoricalDataset
from repro.data.dataset import LongitudinalDataset
from repro.exceptions import DataValidationError

__all__ = [
    "save_panel_csv",
    "load_panel_csv",
    "save_panel_npz",
    "load_panel_npz",
    "save_release_csv",
]


def _header(horizon: int) -> list[str]:
    return [f"t{t}" for t in range(1, horizon + 1)]


def save_panel_csv(panel, path) -> Path:
    """Write a (binary or categorical) panel as CSV; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_header(panel.horizon))
        for row in panel.matrix:
            writer.writerow(int(v) for v in row)
    return path


def load_panel_csv(path, alphabet: int = 2):
    """Read a panel written by :func:`save_panel_csv`.

    Returns a :class:`LongitudinalDataset` for ``alphabet == 2`` and a
    :class:`CategoricalDataset` otherwise.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataValidationError(f"{path} is empty") from None
        if not header or not header[0].startswith("t"):
            raise DataValidationError(
                f"{path} lacks the expected 't1..tT' header row"
            )
        rows = []
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise DataValidationError(
                    f"{path}:{line_number} has {len(row)} cells, expected {len(header)}"
                )
            rows.append([int(cell) for cell in row])
    matrix = np.asarray(rows, dtype=np.int64).reshape(len(rows), len(header))
    if alphabet == 2:
        return LongitudinalDataset(matrix)
    return CategoricalDataset(matrix, alphabet=alphabet)


def save_panel_npz(panel, path) -> Path:
    """Write a panel as a compressed numpy archive; returns the path."""
    path = Path(path)
    alphabet = getattr(panel, "alphabet", 2)
    np.savez_compressed(path, matrix=panel.matrix, alphabet=alphabet)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_panel_npz(path):
    """Read a panel written by :func:`save_panel_npz`."""
    with np.load(Path(path)) as archive:
        matrix = archive["matrix"]
        alphabet = int(archive["alphabet"])
    if alphabet == 2:
        return LongitudinalDataset(matrix)
    return CategoricalDataset(matrix, alphabet=alphabet)


def save_release_csv(release, directory, stem: str = "synthetic") -> tuple[Path, Path]:
    """Export a fixed-window release: microdata CSV + public metadata JSON.

    The metadata sidecar carries everything an analyst needs to debias
    query answers offline: ``n`` (original population), ``n_pad``, ``k``,
    the horizon, and the synthetic population size.  Returns
    ``(csv_path, json_path)``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    data_path = save_panel_csv(release.synthetic_data(), directory / f"{stem}.csv")
    if not hasattr(release, "alphabet"):  # binary fixed-window release
        metadata = {
            "kind": "fixed_window",
            "window": release.window,
            "n_pad": release.padding.n_pad,
            "horizon": release.padding.horizon,
            "n_original": release.n_original,
            "n_synthetic": release.n_synthetic,
            "negative_count_events": release.negative_count_events,
        }
    else:  # categorical release
        metadata = {
            "kind": "categorical_window",
            "window": release.window,
            "alphabet": release.alphabet,
            "n_pad": release.n_pad,
            "n_original": release.n_original,
            "n_synthetic": release.n_synthetic,
            "negative_count_events": release.negative_count_events,
        }
    json_path = directory / f"{stem}.meta.json"
    json_path.write_text(json.dumps(metadata, indent=2) + "\n")
    return data_path, json_path
