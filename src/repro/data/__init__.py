"""Longitudinal data substrate.

* :mod:`repro.data.dataset` — the ``n x T`` binary panel container every
  synthesizer consumes, with vectorized window/histogram/weight helpers.
* :mod:`repro.data.generators` — synthetic stream generators (iid, Markov,
  all-ones "extreme" data of Figure 3/4, bursty spells, seasonal, mixtures).
* :mod:`repro.data.sipp` — a simulator for the U.S. Census Bureau's Survey
  of Income and Program Participation (SIPP) 2021 sample, plus the paper's
  exact preprocessing pipeline (substitute for the real microdata, which
  cannot be downloaded offline; see DESIGN.md §4).
* :mod:`repro.data.debruijn` — de Bruijn padding records: a concrete
  population of "fake" individuals contributing exactly ``n_pad`` to every
  histogram bin in every window, which makes Algorithm 1's padding and the
  debiasing step exact and testable.
"""

from repro.data.categorical import (
    EMPLOYMENT_TRANSITIONS,
    CategoricalDataset,
    categorical_iid,
    categorical_markov,
    categorical_padding_panel,
    employment_status_panel,
    sticky_transitions,
)
from repro.data.dataset import DynamicPanel, LongitudinalDataset
from repro.data.debruijn import debruijn_sequence, padding_panel
from repro.data.generators import (
    all_ones,
    apply_churn,
    bursty_spells,
    churn_two_state_markov,
    iid_bernoulli,
    mixture,
    seasonal,
    two_state_markov,
)
from repro.data.sipp import (
    SippRawData,
    load_sipp_2021,
    load_sipp_dynamic,
    preprocess_sipp,
    simulate_sipp_raw,
)

__all__ = [
    "LongitudinalDataset",
    "DynamicPanel",
    "apply_churn",
    "churn_two_state_markov",
    "load_sipp_dynamic",
    "CategoricalDataset",
    "categorical_iid",
    "categorical_markov",
    "categorical_padding_panel",
    "EMPLOYMENT_TRANSITIONS",
    "employment_status_panel",
    "sticky_transitions",
    "debruijn_sequence",
    "padding_panel",
    "all_ones",
    "iid_bernoulli",
    "two_state_markov",
    "bursty_spells",
    "seasonal",
    "mixture",
    "SippRawData",
    "simulate_sipp_raw",
    "preprocess_sipp",
    "load_sipp_2021",
]
