"""Survey of Income and Program Participation (SIPP) 2021 — simulated.

The paper's experiments run on the 2021 SIPP public-use file
(``pu2021_csv.zip``), preprocessed into a panel of **23374 households x 12
months** indicating whether the household was in poverty each month
(``THINCPOVT2`` income-to-poverty ratio below 1).  The real file cannot be
downloaded in this offline environment, so this module builds the closest
synthetic equivalent (DESIGN.md §4):

1. :func:`simulate_sipp_raw` produces *raw* SIPP-like person-month records —
   household and person identifiers (some households have several surveyed
   persons), a continuous income-to-poverty ratio per month, and realistic
   missingness — driven by a two-state Markov poverty process calibrated to
   published SIPP poverty dynamics (monthly poverty ≈ 11.5 %, month-to-month
   persistence ≈ 0.87).
2. :func:`preprocess_sipp` applies the paper's preprocessing **verbatim**:
   subset to one longitudinal series per household, binarize the ratio
   (``ratio < 1`` -> in poverty), and delete every household with at least
   one missing value.
3. :func:`load_sipp_2021` runs both and returns a panel with exactly the
   paper's dimensions (N = 23374, T = 12).

The synthesizers consume only the resulting binary panel, and their privacy
and accuracy behaviour depends on ``n``, ``T`` and bin-occupancy profiles —
not on which specific households are poor — so this substitution preserves
the behaviour the paper's figures measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import DynamicPanel, LongitudinalDataset
from repro.data.generators import apply_churn
from repro.exceptions import ConfigurationError, DataValidationError
from repro.rng import SeedLike, as_generator

__all__ = [
    "SippRawData",
    "simulate_sipp_raw",
    "preprocess_sipp",
    "load_sipp_2021",
    "load_sipp_dynamic",
    "SIPP_2021_N_HOUSEHOLDS",
    "SIPP_2021_HORIZON",
    "SIPP_MONTHLY_ATTRITION",
]

SIPP_2021_N_HOUSEHOLDS = 23374
SIPP_2021_HORIZON = 12

# Calibration targets (see module docstring): stationary monthly poverty
# rate and month-to-month persistence of the poverty state.
_POVERTY_RATE = 0.115
_POVERTY_PERSISTENCE = 0.87
# Probability that a surveyed household misses at least one month.
_MISSINGNESS_RATE = 0.06

#: Monthly attrition hazard for the dynamic-panel variant.  SIPP loses
#: roughly a quarter of its sample over a 12-month panel (Census Bureau
#: nonresponse reports); a ~2.5 %/month geometric hazard reproduces that
#: cumulative wave-to-wave attrition profile.
SIPP_MONTHLY_ATTRITION = 0.025
# Fraction of households contributing a second surveyed person.
_MULTI_PERSON_RATE = 0.25


@dataclass(frozen=True)
class SippRawData:
    """Raw SIPP-like person-month records in long format.

    Attributes
    ----------
    household_id, person_id, month:
        Integer identifiers; ``month`` is 1-indexed.  A household may appear
        with several persons (the paper subsets to one series per
        household).
    income_poverty_ratio:
        The ``THINCPOVT2`` analogue: household income divided by the
        household poverty threshold that month.  ``NaN`` marks a missing
        interview.
    """

    household_id: np.ndarray
    person_id: np.ndarray
    month: np.ndarray
    income_poverty_ratio: np.ndarray

    def __post_init__(self):
        lengths = {
            self.household_id.shape[0],
            self.person_id.shape[0],
            self.month.shape[0],
            self.income_poverty_ratio.shape[0],
        }
        if len(lengths) != 1:
            raise DataValidationError("raw SIPP columns must have equal length")

    @property
    def n_rows(self) -> int:
        """Number of person-month rows."""
        return self.household_id.shape[0]


def _poverty_states(
    n: int, horizon: int, generator: np.random.Generator
) -> np.ndarray:
    """Two-state Markov poverty indicator per household (vectorized)."""
    p_stay = _POVERTY_PERSISTENCE
    p_enter = _POVERTY_RATE * (1.0 - p_stay) / (1.0 - _POVERTY_RATE)
    uniforms = generator.random((n, horizon))
    states = np.empty((n, horizon), dtype=np.uint8)
    states[:, 0] = uniforms[:, 0] < _POVERTY_RATE
    for t in range(1, horizon):
        threshold = np.where(states[:, t - 1] == 1, p_stay, p_enter)
        states[:, t] = uniforms[:, t] < threshold
    return states


def simulate_sipp_raw(
    n_households: int,
    horizon: int = SIPP_2021_HORIZON,
    seed: SeedLike = None,
) -> SippRawData:
    """Simulate raw SIPP-like person-month records for ``n_households``.

    The latent poverty state drives the observed continuous ratio: poor
    months draw ``ratio ~ 1 - |N(0, 0.25)|`` clipped above 0 (below the
    threshold), non-poor months draw a lognormal centered well above 1.
    A household's second surveyed person (when present) reports the *same*
    household-level ratio, mirroring how ``THINCPOVT2`` is a household
    variable replicated on person records.
    """
    if n_households <= 0:
        raise ConfigurationError(f"n_households must be positive, got {n_households}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    generator = as_generator(seed)

    states = _poverty_states(n_households, horizon, generator)
    poor_ratio = np.clip(1.0 - np.abs(generator.normal(0.0, 0.25, states.shape)), 0.01, 0.999)
    nonpoor_ratio = 1.0 + generator.lognormal(0.5, 0.6, states.shape)
    ratios = np.where(states == 1, poor_ratio, nonpoor_ratio)

    # Missingness: a household is a "misser" with the calibrated rate, and a
    # misser skips a uniformly random subset of 1..3 months.
    missers = generator.random(n_households) < _MISSINGNESS_RATE
    for household in np.flatnonzero(missers):
        n_missing = int(generator.integers(1, 4))
        missing_months = generator.choice(horizon, size=n_missing, replace=False)
        ratios[household, missing_months] = np.nan

    # Long format, person 1 for everyone; a subset of households contributes
    # a second person with duplicated household-level ratios.
    second_person = np.flatnonzero(generator.random(n_households) < _MULTI_PERSON_RATE)
    household_blocks = [np.arange(n_households), second_person]
    person_numbers = [1, 2]

    household_id_parts = []
    person_id_parts = []
    month_parts = []
    ratio_parts = []
    for households, person in zip(household_blocks, person_numbers):
        n_block = households.shape[0]
        household_id_parts.append(np.repeat(households, horizon))
        person_id_parts.append(np.full(n_block * horizon, person, dtype=np.int64))
        month_parts.append(np.tile(np.arange(1, horizon + 1), n_block))
        ratio_parts.append(ratios[households].reshape(-1))

    return SippRawData(
        household_id=np.concatenate(household_id_parts),
        person_id=np.concatenate(person_id_parts),
        month=np.concatenate(month_parts),
        income_poverty_ratio=np.concatenate(ratio_parts),
    )


def preprocess_sipp(raw: SippRawData, horizon: int = SIPP_2021_HORIZON) -> LongitudinalDataset:
    """The paper's preprocessing pipeline, step for step (§5).

    1. *"we first subset the data to one longitudinal series per household"*
       — keep the lowest person number per household.
    2. *"The SIPP variable THINCPOVT2 is coded as the household income ratio
       to the household poverty threshold in a given month. We binarize this
       such that any values of the ratio smaller than one are coded as 1"*.
    3. *"some households have missing values. We delete every household that
       has at least one missing value"* — households must also have all
       ``horizon`` months present.
    """
    # Step 1: one series per household (lowest person id wins).
    order = np.lexsort((raw.person_id, raw.household_id))
    household = raw.household_id[order]
    person = raw.person_id[order]
    month = raw.month[order]
    ratio = raw.income_poverty_ratio[order]

    first_person = {}
    for h, p in zip(household, person):
        if h not in first_person or p < first_person[h]:
            first_person[h] = p
    keep = np.array([first_person[h] == p for h, p in zip(household, person)])
    household, month, ratio = household[keep], month[keep], ratio[keep]

    # Step 2: binarize (NaN kept as NaN so step 3 can find it).
    in_poverty = np.where(np.isnan(ratio), np.nan, (ratio < 1.0).astype(np.float64))

    # Step 3: pivot to wide and delete incomplete households.
    households = np.unique(household)
    index_of = {h: i for i, h in enumerate(households)}
    wide = np.full((households.shape[0], horizon), np.nan)
    rows = np.fromiter(
        (index_of[h] for h in household), count=household.shape[0], dtype=np.int64
    )
    valid_month = (month >= 1) & (month <= horizon)
    wide[rows[valid_month], month[valid_month] - 1] = in_poverty[valid_month]
    complete = ~np.isnan(wide).any(axis=1)
    return LongitudinalDataset(wide[complete].astype(np.uint8))


def load_sipp_2021(
    seed: SeedLike = 20210, target_households: int | None = SIPP_2021_N_HOUSEHOLDS
) -> LongitudinalDataset:
    """Simulated SIPP 2021 poverty panel with the paper's dimensions.

    Simulates enough raw households that, after preprocessing drops
    incomplete ones, at least ``target_households`` complete series remain,
    then subsamples deterministically to exactly that count.  Pass
    ``target_households=None`` to keep every complete household.

    Parameters
    ----------
    seed:
        Seed or generator for the simulation (the default reproduces the
        panel used across the figures).
    target_households:
        Exact number of households to keep (default: the paper's
        N = 23374), or ``None`` for every complete household.

    Returns
    -------
    LongitudinalDataset
        The binary poverty panel, ``target_households x 12``.
    """
    generator = as_generator(seed)
    oversample = 1.10  # covers the ~6 % missingness with ample slack
    n_raw = (
        int(np.ceil(SIPP_2021_N_HOUSEHOLDS * oversample))
        if target_households is None
        else int(np.ceil(target_households * oversample))
    )
    raw = simulate_sipp_raw(n_raw, horizon=SIPP_2021_HORIZON, seed=generator)
    panel = preprocess_sipp(raw)
    if target_households is None:
        return panel
    if panel.n_individuals < target_households:
        raise DataValidationError(
            f"simulation produced only {panel.n_individuals} complete households; "
            f"needed {target_households}"
        )
    chosen = generator.choice(panel.n_individuals, size=target_households, replace=False)
    return panel.subset(np.sort(chosen))


def load_sipp_dynamic(
    seed: SeedLike = 20210,
    target_households: int | None = SIPP_2021_N_HOUSEHOLDS,
    attrition_hazard: float = SIPP_MONTHLY_ATTRITION,
    entry_rate: float = 0.02,
) -> DynamicPanel:
    """Simulated SIPP poverty panel with realistic sample churn.

    The paper's preprocessing *deletes* every household with a missing
    month, which silently assumes a fixed population; this loader keeps
    the panel dynamic instead: households attrit wave by wave with a
    geometric monthly hazard (the real SIPP's dominant churn mode) and a
    small share of households enters mid-panel (added sample members).
    Reports outside a household's observed span follow the zero-fill
    convention of :mod:`repro.core.population`.

    Parameters
    ----------
    seed:
        Seed or generator; drives both the underlying poverty panel
        (:func:`load_sipp_2021`) and the churn schedule.
    target_households:
        Ever-admitted household count (default: the paper's N = 23374),
        or ``None`` for every complete simulated household.
    attrition_hazard:
        Monthly departure probability after entry (default
        :data:`SIPP_MONTHLY_ATTRITION`).
    entry_rate:
        Probability a household enters after month 1.

    Returns
    -------
    DynamicPanel
        The churned poverty panel, ready for the synthesizers'
        entry/exit protocol (``run(panel)`` or ``rounds()``).
    """
    generator = as_generator(seed)
    panel = load_sipp_2021(seed=generator, target_households=target_households)
    return apply_churn(
        panel, entry_rate=entry_rate, exit_hazard=attrition_hazard, seed=generator
    )
