"""de Bruijn padding records.

Algorithm 1 pads every histogram bin with ``n_pad`` "fake" people so that
noisy counts stay positive.  The paper treats padding as an additive
constant on each count; this module makes the padding *concrete*: an actual
population of fake individuals whose window histogram equals exactly
``n_pad`` in every bin at every time step.

The construction uses a binary de Bruijn cycle ``B(2, k)`` — a cyclic
sequence of length ``2**k`` containing every length-``k`` pattern exactly
once as a (cyclic) window.  Take one fake individual per rotation offset of
the cycle (``2**k`` of them, each reporting the cycle starting from their
offset, wrapping around as long as needed): at every time ``t >= k`` their
``k``-windows are the ``2**k`` distinct patterns, i.e. exactly one per bin.
``n_pad`` copies of this population put exactly ``n_pad`` in every bin in
every window, and the padding answer to any window query can be computed
exactly — which is what makes the debiasing step of §3.2 an *exact*
correction rather than an approximation.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import LongitudinalDataset
from repro.exceptions import ConfigurationError

__all__ = ["debruijn_sequence", "padding_panel"]


def debruijn_sequence(k: int, alphabet: int = 2) -> np.ndarray:
    """The lexicographically-least de Bruijn cycle ``B(alphabet, k)``.

    Returns a vector of length ``alphabet**k`` whose cyclic length-``k``
    windows enumerate every pattern over ``{0, ..., alphabet-1}`` exactly
    once.  Uses the standard Lyndon-word (FKM) construction; ``alphabet=2``
    serves Algorithm 1's binary padding, larger alphabets serve the
    categorical extension (paper §1: the fixed-window solution "naturally
    extend[s] to handle categorical data").
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    if alphabet < 2:
        raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
    sequence: list[int] = []
    a = [0] * (alphabet * k)

    def extend(t: int, p: int) -> None:
        if t > k:
            if k % p == 0:
                sequence.extend(a[1 : p + 1])
            return
        a[t] = a[t - p]
        extend(t + 1, p)
        for j in range(a[t - p] + 1, alphabet):
            a[t] = j
            extend(t + 1, t)

    extend(1, 1)
    dtype = np.uint8 if alphabet <= 256 else np.int64
    result = np.asarray(sequence, dtype=dtype)
    assert result.shape == (alphabet**k,), "de Bruijn construction produced wrong length"
    return result


def padding_panel(k: int, n_pad: int, horizon: int) -> LongitudinalDataset:
    """Padding population: ``n_pad * 2**k`` fake individuals over ``horizon``.

    Every length-``k`` window histogram of the returned panel equals exactly
    ``n_pad`` in every bin, for every ``t in [k, horizon]``.

    Parameters
    ----------
    k:
        Window width.
    n_pad:
        Fake individuals per length-``k`` bin (non-negative).
    horizon:
        Number of rounds ``T >= k``.

    Returns
    -------
    LongitudinalDataset
        The materialized padding panel (possibly with zero rows).

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``n_pad`` is negative or ``horizon < k``.
    """
    if n_pad < 0:
        raise ConfigurationError(f"n_pad must be non-negative, got {n_pad}")
    if horizon < k:
        raise ConfigurationError(f"horizon {horizon} shorter than window width {k}")
    cycle = debruijn_sequence(k)
    length = cycle.shape[0]
    if n_pad == 0:
        return LongitudinalDataset(np.zeros((0, horizon), dtype=np.uint8))
    # Row r follows the cycle starting at offset r; tile enough copies of
    # the cycle to cover the horizon, then slice per offset.
    repeats = -(-(horizon + length) // length)  # ceil division
    tiled = np.tile(cycle, repeats)
    offsets = np.arange(length)[:, None] + np.arange(horizon)[None, :]
    base = tiled[offsets]  # (2**k, horizon)
    return LongitudinalDataset(np.tile(base, (n_pad, 1)))
