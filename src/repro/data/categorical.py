"""Categorical longitudinal panels — the paper's multi-category extension.

Section 1 of the paper: "The solutions we develop for fixed time window
queries naturally extend to handle categorical data with more than 2
categories."  This module provides the data substrate for that extension:
an ``n x T`` panel over ``{0, ..., q-1}`` (e.g. SIPP employment status:
employed / unemployed / not in labor force), the base-``q`` window-code
helpers mirroring :class:`LongitudinalDataset`, generators, and the
categorical de Bruijn padding population.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.debruijn import debruijn_sequence
from repro.exceptions import ConfigurationError, DataValidationError
from repro.rng import SeedLike, as_generator

__all__ = [
    "CategoricalDataset",
    "EMPLOYMENT_TRANSITIONS",
    "categorical_iid",
    "categorical_markov",
    "categorical_padding_panel",
    "employment_status_panel",
    "sticky_transitions",
]

#: Monthly transition matrix of the 3-state employment-status workload
#: (employed / unemployed / not in labor force) used by the categorical
#: experiment, benchmark, and example: employment is sticky, unemployment
#: resolves mostly back to employment, and labor-force exit is persistent.
EMPLOYMENT_TRANSITIONS = np.array(
    [[0.90, 0.05, 0.05], [0.30, 0.60, 0.10], [0.05, 0.10, 0.85]]
)
EMPLOYMENT_TRANSITIONS.setflags(write=False)


class CategoricalDataset:
    """An immutable ``n x T`` panel over ``{0, ..., alphabet - 1}``.

    The categorical counterpart of
    :class:`~repro.data.dataset.LongitudinalDataset` (which is the special
    case ``alphabet = 2``).  Window patterns are coded base-``q``
    big-endian: pattern ``(s_1, ..., s_k)`` maps to
    ``sum_j s_j * q**(k - j)``, so the most recent report is the least
    significant digit.

    Parameters
    ----------
    matrix:
        ``n x T`` integer array with entries in ``[0, alphabet)``.
    alphabet:
        Number of categories ``q >= 2``.

    Raises
    ------
    repro.exceptions.DataValidationError
        If the matrix is not 2-D or holds out-of-range categories.
    """

    def __init__(self, matrix, alphabet: int):
        if alphabet < 2:
            raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise DataValidationError(
                f"panel must be 2-dimensional (individuals x time), got shape {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= alphabet):
            raise DataValidationError(
                f"panel entries must lie in [0, {alphabet}), got range "
                f"[{arr.min()}, {arr.max()}]"
            )
        self.alphabet = int(alphabet)
        self._matrix = arr.astype(np.int64).copy()
        self._matrix.setflags(write=False)

    @property
    def matrix(self) -> np.ndarray:
        """The underlying read-only ``int64`` matrix."""
        return self._matrix

    @property
    def n_individuals(self) -> int:
        """Number of rows ``n``."""
        return self._matrix.shape[0]

    @property
    def horizon(self) -> int:
        """Number of reporting periods ``T``."""
        return self._matrix.shape[1]

    def column(self, t: int) -> np.ndarray:
        """The round-``t`` report vector (1-indexed)."""
        self._check_time(t)
        return self._matrix[:, t - 1]

    def columns(self):
        """Iterate over report vectors in arrival order."""
        for t in range(1, self.horizon + 1):
            yield self._matrix[:, t - 1]

    def prefix(self, t: int) -> "CategoricalDataset":
        """The panel restricted to rounds ``1..t``."""
        self._check_time(t)
        return CategoricalDataset(self._matrix[:, :t], self.alphabet)

    def window_codes(self, t: int, k: int) -> np.ndarray:
        """Base-``q`` integer codes of each individual's current window."""
        self._check_window(t, k)
        window = self._matrix[:, t - k : t]
        powers = self.alphabet ** np.arange(k - 1, -1, -1, dtype=np.int64)
        return window @ powers

    def suffix_histogram(self, t: int, k: int) -> np.ndarray:
        """Counts of each length-``k`` pattern at time ``t`` (length q^k)."""
        codes = self.window_codes(t, k)
        return np.bincount(codes, minlength=self.alphabet**k).astype(np.int64)

    def __eq__(self, other) -> bool:
        if not isinstance(other, CategoricalDataset):
            return NotImplemented
        return (
            self.alphabet == other.alphabet
            and self._matrix.shape == other._matrix.shape
            and bool((self._matrix == other._matrix).all())
        )

    def __hash__(self):
        return hash((self.alphabet, self._matrix.shape, self._matrix.tobytes()))

    def __repr__(self) -> str:
        return (
            f"CategoricalDataset(n={self.n_individuals}, T={self.horizon}, "
            f"alphabet={self.alphabet})"
        )

    def _check_time(self, t: int) -> None:
        if not 1 <= t <= self.horizon:
            raise DataValidationError(f"time {t} outside [1, {self.horizon}]")

    def _check_window(self, t: int, k: int) -> None:
        self._check_time(t)
        if not 1 <= k <= self.horizon:
            raise DataValidationError(f"window width {k} outside [1, {self.horizon}]")
        if t < k:
            raise DataValidationError(
                f"window of width {k} undefined before t={k}, got t={t}"
            )


def categorical_iid(
    n: int,
    horizon: int,
    probabilities: Sequence[float],
    seed: SeedLike = None,
) -> CategoricalDataset:
    """Independent categorical reports with the given category distribution.

    Parameters
    ----------
    n:
        Number of individuals.
    horizon:
        Number of rounds ``T``.
    probabilities:
        Category distribution (length >= 2, non-negative, sums to 1).
    seed:
        Seed or generator for the draws.

    Returns
    -------
    CategoricalDataset
        An ``n x T`` panel of i.i.d. categorical reports.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If the distribution or dimensions are invalid.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 1 or probs.shape[0] < 2:
        raise ConfigurationError("probabilities must list at least two categories")
    if (probs < 0).any() or not np.isclose(probs.sum(), 1.0):
        raise ConfigurationError("probabilities must be non-negative and sum to 1")
    if n <= 0 or horizon <= 0:
        raise ConfigurationError("n and horizon must be positive")
    generator = as_generator(seed)
    matrix = generator.choice(probs.shape[0], size=(n, horizon), p=probs)
    return CategoricalDataset(matrix, alphabet=probs.shape[0])


def categorical_markov(
    n: int,
    horizon: int,
    transition: np.ndarray,
    initial: Sequence[float] | None = None,
    seed: SeedLike = None,
) -> CategoricalDataset:
    """First-order Markov chain over categories per individual.

    ``transition[i, j] = P(x^t = j | x^{t-1} = i)``; ``initial`` defaults to
    the uniform distribution.  Models multi-state longitudinal variables
    like employment status (employed / unemployed / out of labor force).

    Parameters
    ----------
    n:
        Number of individuals.
    horizon:
        Number of rounds ``T``.
    transition:
        ``q x q`` row-stochastic transition matrix.
    initial:
        Optional length-``q`` initial distribution (default uniform).
    seed:
        Seed or generator for the draws.

    Returns
    -------
    CategoricalDataset
        An ``n x T`` panel of per-individual Markov trajectories.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If the transition matrix or initial distribution is invalid.
    """
    transition = np.asarray(transition, dtype=np.float64)
    if transition.ndim != 2 or transition.shape[0] != transition.shape[1]:
        raise ConfigurationError("transition must be a square matrix")
    q = transition.shape[0]
    if q < 2:
        raise ConfigurationError("need at least two categories")
    if (transition < 0).any() or not np.allclose(transition.sum(axis=1), 1.0):
        raise ConfigurationError("transition rows must be distributions")
    if n <= 0 or horizon <= 0:
        raise ConfigurationError("n and horizon must be positive")
    if initial is None:
        initial = np.full(q, 1.0 / q)
    initial = np.asarray(initial, dtype=np.float64)
    if initial.shape != (q,) or (initial < 0).any() or not np.isclose(initial.sum(), 1.0):
        raise ConfigurationError("initial must be a distribution over the categories")

    generator = as_generator(seed)
    matrix = np.empty((n, horizon), dtype=np.int64)
    matrix[:, 0] = generator.choice(q, size=n, p=initial)
    cumulative = transition.cumsum(axis=1)
    for t in range(1, horizon):
        uniforms = generator.random(n)
        rows = cumulative[matrix[:, t - 1]]
        matrix[:, t] = (uniforms[:, None] > rows).sum(axis=1)
    return CategoricalDataset(matrix, alphabet=q)


def sticky_transitions(alphabet: int, persistence: float = 0.85) -> np.ndarray:
    """A ``q x q`` transition matrix with sticky states.

    Each state repeats with probability ``persistence`` and moves to any
    other state uniformly otherwise — the generic-``q`` stand-in for the
    hand-calibrated :data:`EMPLOYMENT_TRANSITIONS` when an experiment
    sweeps the alphabet size.

    Parameters
    ----------
    alphabet:
        Number of categories ``q >= 2``.
    persistence:
        Per-round probability of repeating the current state, in
        ``(0, 1]``.

    Returns
    -------
    numpy.ndarray
        Row-stochastic ``q x q`` matrix.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``alphabet`` or ``persistence`` is out of range.
    """
    if alphabet < 2:
        raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
    if not 0 < persistence <= 1:
        raise ConfigurationError(
            f"persistence must lie in (0, 1], got {persistence}"
        )
    off = (1.0 - persistence) / (alphabet - 1)
    matrix = np.full((alphabet, alphabet), off)
    np.fill_diagonal(matrix, persistence)
    return matrix


def employment_status_panel(
    n: int, horizon: int, alphabet: int = 3, seed: SeedLike = None
) -> CategoricalDataset:
    """The multi-category reference workload: per-month employment status.

    A first-order Markov panel over ``q`` labor-market states — the
    calibrated 3-state :data:`EMPLOYMENT_TRANSITIONS` chain by default,
    or a :func:`sticky_transitions` chain for other alphabet sizes.  Used
    by the ``categorical`` experiment, the categorical benchmark, and the
    employment example so they all draw from one definition.

    Parameters
    ----------
    n:
        Number of individuals.
    horizon:
        Number of monthly rounds ``T``.
    alphabet:
        Number of status categories ``q >= 2`` (default 3:
        employed / unemployed / not in labor force).
    seed:
        Seed or generator for the draws.

    Returns
    -------
    CategoricalDataset
        An ``n x T`` panel of status trajectories.
    """
    if alphabet == 3:
        transitions = EMPLOYMENT_TRANSITIONS
    else:
        transitions = sticky_transitions(alphabet)
    return categorical_markov(n, horizon, transitions, seed=seed)


def categorical_padding_panel(
    k: int, n_pad: int, horizon: int, alphabet: int
) -> CategoricalDataset:
    """Padding population with exactly ``n_pad`` per ``q^k`` bin per window.

    The categorical generalization of
    :func:`~repro.data.debruijn.padding_panel`: one fake individual per
    rotation offset of the de Bruijn cycle ``B(q, k)``, times ``n_pad``.
    """
    if n_pad < 0:
        raise ConfigurationError(f"n_pad must be non-negative, got {n_pad}")
    if horizon < k:
        raise ConfigurationError(f"horizon {horizon} shorter than window width {k}")
    cycle = debruijn_sequence(k, alphabet=alphabet)
    length = cycle.shape[0]
    if n_pad == 0:
        return CategoricalDataset(np.zeros((0, horizon), dtype=np.int64), alphabet)
    repeats = -(-(horizon + length) // length)
    tiled = np.tile(cycle, repeats)
    offsets = np.arange(length)[:, None] + np.arange(horizon)[None, :]
    base = tiled[offsets]
    return CategoricalDataset(np.tile(base, (n_pad, 1)), alphabet)
