"""The longitudinal panel container.

A :class:`LongitudinalDataset` wraps an ``n x T`` matrix over ``{0, 1}``:
one row per individual, one column per reporting period.  This matches the
paper's data model with universe ``X = {0, 1}`` — each individual reports
one new bit per round.  Time is **1-indexed** throughout the public API, as
in the paper (``t = 1, ..., T``); internally column ``t - 1`` stores round
``t``.

The class provides the vectorized counting primitives both synthesizers
need: window pattern codes and histograms (Algorithm 1) and Hamming-weight
census / threshold counts / increments (Algorithm 2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DataValidationError

__all__ = ["LongitudinalDataset", "DynamicPanel"]


class LongitudinalDataset:
    """An immutable ``n x T`` binary panel.

    Parameters
    ----------
    matrix:
        Array-like of shape ``(n, T)`` with entries in ``{0, 1}``.  The data
        is copied into a read-only ``uint8`` array.

    Examples
    --------
    >>> panel = LongitudinalDataset([[1, 0, 1], [0, 0, 1]])
    >>> panel.n_individuals, panel.horizon
    (2, 3)
    >>> panel.suffix_histogram(t=3, k=2).tolist()  # windows '01' and '01'
    [0, 2, 0, 0]
    """

    def __init__(self, matrix):
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise DataValidationError(
                f"panel must be 2-dimensional (individuals x time), got shape {arr.shape}"
            )
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise DataValidationError("panel entries must be 0 or 1")
        self._matrix = arr.astype(np.uint8).copy()
        self._matrix.setflags(write=False)

    # ------------------------------------------------------------------
    # Shape and access
    # ------------------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The underlying read-only ``uint8`` matrix."""
        return self._matrix

    @property
    def n_individuals(self) -> int:
        """Number of rows ``n``."""
        return self._matrix.shape[0]

    @property
    def horizon(self) -> int:
        """Number of reporting periods ``T``."""
        return self._matrix.shape[1]

    def column(self, t: int) -> np.ndarray:
        """The round-``t`` report vector ``D_t`` (1-indexed)."""
        self._check_time(t)
        return self._matrix[:, t - 1]

    def columns(self) -> Iterable[np.ndarray]:
        """Iterate over report vectors ``D_1, ..., D_T`` in arrival order."""
        for t in range(1, self.horizon + 1):
            yield self._matrix[:, t - 1]

    def prefix(self, t: int) -> "LongitudinalDataset":
        """The panel restricted to rounds ``1..t``."""
        self._check_time(t)
        return LongitudinalDataset(self._matrix[:, :t])

    def subset(self, indices: Sequence[int]) -> "LongitudinalDataset":
        """The panel restricted to the given individuals."""
        return LongitudinalDataset(self._matrix[np.asarray(indices)])

    def concat(self, other: "LongitudinalDataset") -> "LongitudinalDataset":
        """Stack two panels with equal horizons (e.g. data + padding)."""
        if other.horizon != self.horizon:
            raise DataValidationError(
                f"cannot concat panels with horizons {self.horizon} and {other.horizon}"
            )
        return LongitudinalDataset(np.vstack([self._matrix, other._matrix]))

    # ------------------------------------------------------------------
    # Fixed-window primitives (Algorithm 1)
    # ------------------------------------------------------------------

    def window_codes(self, t: int, k: int) -> np.ndarray:
        """Integer codes of each individual's window ``(x^{t-k+1}, ..., x^t)``.

        The code reads the window as a big-endian ``k``-bit number, so
        pattern ``s = (s_1, ..., s_k)`` maps to ``sum_j s_j 2^(k-j)``.
        Requires ``t >= k``.
        """
        self._check_window(t, k)
        window = self._matrix[:, t - k : t]
        powers = 1 << np.arange(k - 1, -1, -1)
        return window @ powers.astype(np.int64)

    def suffix_histogram(self, t: int, k: int) -> np.ndarray:
        """Counts ``C_s^t`` of each length-``k`` pattern at time ``t``.

        Returns a length ``2**k`` int64 vector indexed by pattern code.
        """
        codes = self.window_codes(t, k)
        return np.bincount(codes, minlength=1 << k).astype(np.int64)

    # ------------------------------------------------------------------
    # Cumulative primitives (Algorithm 2)
    # ------------------------------------------------------------------

    def hamming_weights(self, t: int) -> np.ndarray:
        """Each individual's cumulative number of 1s through round ``t``.

        ``t = 0`` is allowed and returns all zeros (the paper's convention
        ``x^t = 0`` for ``t <= 0``).
        """
        if t == 0:
            return np.zeros(self.n_individuals, dtype=np.int64)
        self._check_time(t)
        return self._matrix[:, :t].sum(axis=1, dtype=np.int64)

    def threshold_counts(self, t: int) -> np.ndarray:
        """``S_b^t = #{i : weight_i(t) >= b}`` for ``b = 0, ..., T``."""
        weights = self.hamming_weights(t)
        # counts_by_weight[w] = #individuals with weight exactly w
        counts_by_weight = np.bincount(weights, minlength=self.horizon + 1)
        # S_b = sum_{w >= b} counts_by_weight[w]
        return counts_by_weight[::-1].cumsum()[::-1].astype(np.int64)

    def increments(self, t: int) -> np.ndarray:
        """``z_b^t`` for ``b = 1, ..., t``: the stream elements of round ``t``.

        ``z_b^t`` counts individuals with exactly ``b - 1`` ones through
        ``t - 1`` who report 1 at round ``t`` — the increment of ``S_b``.
        Returns a length-``t`` vector indexed by ``b - 1``.
        """
        self._check_time(t)
        prev_weights = self.hamming_weights(t - 1)
        reporting_one = self.column(t) == 1
        counts = np.bincount(prev_weights[reporting_one], minlength=t)
        return counts[:t].astype(np.int64)

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, LongitudinalDataset):
            return NotImplemented
        return self._matrix.shape == other._matrix.shape and bool(
            (self._matrix == other._matrix).all()
        )

    def __hash__(self):
        return hash((self._matrix.shape, self._matrix.tobytes()))

    def __repr__(self) -> str:
        return f"LongitudinalDataset(n={self.n_individuals}, T={self.horizon})"

    def _check_time(self, t: int) -> None:
        if not 1 <= t <= self.horizon:
            raise DataValidationError(f"time {t} outside [1, {self.horizon}]")

    def _check_window(self, t: int, k: int) -> None:
        self._check_time(t)
        if not 1 <= k <= self.horizon:
            raise DataValidationError(f"window width {k} outside [1, {self.horizon}]")
        if t < k:
            raise DataValidationError(f"window of width {k} undefined before t={k}, got t={t}")


class DynamicPanel:
    """A longitudinal panel over a churning population.

    Wraps an ``n_ever x T`` binary matrix over the *ever-admitted*
    population together with each individual's lifespan: ``entry_round``
    (first round present, 1-indexed) and ``exit_round`` (first round
    absent; 0 means the individual never departs).  Rows must be ordered
    by admission (non-decreasing ``entry_round``) so that row index
    doubles as the individual's id in the synthesizers' admission-order
    protocol; reports outside an individual's lifespan must be 0 (the
    zero-fill convention of :mod:`repro.core.population`).

    Parameters
    ----------
    matrix:
        Array-like of shape ``(n_ever, T)`` with entries in ``{0, 1}``;
        entries outside each row's lifespan must be 0.
    entry_round:
        Length-``n_ever`` 1-indexed entry rounds, non-decreasing.
    exit_round:
        Length-``n_ever`` exit rounds; each is 0 (never departs) or
        strictly greater than the individual's entry round.
    """

    def __init__(self, matrix, entry_round, exit_round):
        panel = LongitudinalDataset(matrix)
        self._matrix = panel.matrix
        self._entry = np.asarray(entry_round, dtype=np.int64)
        self._exit = np.asarray(exit_round, dtype=np.int64)
        n_ever, horizon = self._matrix.shape
        if self._entry.shape != (n_ever,) or self._exit.shape != (n_ever,):
            raise DataValidationError(
                f"entry/exit rounds must have shape ({n_ever},), got "
                f"{self._entry.shape} and {self._exit.shape}"
            )
        if n_ever and (self._entry[0] != 1 or (np.diff(self._entry) < 0).any()):
            raise DataValidationError(
                "rows must be ordered by admission: entry rounds start at 1 "
                "and are non-decreasing"
            )
        if ((self._entry < 1) | (self._entry > horizon)).any():
            raise DataValidationError(f"entry rounds must lie in [1, {horizon}]")
        departs = self._exit != 0
        if (self._exit[departs] <= self._entry[departs]).any():
            raise DataValidationError(
                "exit rounds must be 0 (never) or strictly after the entry round"
            )
        # Zero-fill sanity: no reports outside a lifespan.
        rounds = np.arange(1, horizon + 1)
        outside = (rounds[None, :] < self._entry[:, None]) | (
            departs[:, None] & (rounds[None, :] >= self._exit[:, None])
        )
        if (self._matrix[outside] != 0).any():
            raise DataValidationError(
                "reports outside an individual's lifespan must be 0 "
                "(the zero-fill convention)"
            )

    @property
    def matrix(self) -> np.ndarray:
        """The read-only ``uint8`` matrix over the ever-admitted rows."""
        return self._matrix

    @property
    def n_ever(self) -> int:
        """Individuals ever admitted over the whole horizon."""
        return self._matrix.shape[0]

    @property
    def horizon(self) -> int:
        """Number of reporting periods ``T``."""
        return self._matrix.shape[1]

    @property
    def entry_round(self) -> np.ndarray:
        """Per-row entry rounds (copy)."""
        return self._entry.copy()

    @property
    def exit_round(self) -> np.ndarray:
        """Per-row exit rounds, 0 for never-departing rows (copy)."""
        return self._exit.copy()

    def active_mask(self, t: int) -> np.ndarray:
        """Boolean mask of the rows present in round ``t`` (1-indexed)."""
        if not 1 <= t <= self.horizon:
            raise DataValidationError(f"time {t} outside [1, {self.horizon}]")
        departs = self._exit != 0
        return (self._entry <= t) & (~departs | (self._exit > t))

    def n_active(self, t: int) -> int:
        """Individuals present in round ``t``."""
        return int(self.active_mask(t).sum())

    def rounds(self):
        """Iterate ``(column, entrants, exits)`` round events in order.

        Yields
        ------
        tuple
            Per round ``t``: the active-population report ``column``
            (ascending row id), the number of rows entering at ``t``
            (their reports are the column's final entries), and the row
            ids exiting as of ``t`` — exactly the arguments of the
            synthesizers' ``observe(column, entrants=, exits=)``.
        """
        for t in range(1, self.horizon + 1):
            active = self.active_mask(t)
            column = self._matrix[active, t - 1].astype(np.int64)
            entrants = int((self._entry == t).sum()) if t > 1 else 0
            exits = np.flatnonzero(self._exit == t)
            yield column, entrants, exits

    def as_longitudinal(self) -> LongitudinalDataset:
        """The zero-filled static panel over the ever-admitted rows.

        This is the panel a fixed-population synthesizer would consume
        under the zero-fill convention — the noiseless reference for
        churn experiments.
        """
        return LongitudinalDataset(self._matrix)

    @property
    def churned(self) -> bool:
        """True when any row enters after round 1 or ever departs."""
        return bool((self._entry > 1).any() or (self._exit != 0).any())

    def __repr__(self) -> str:
        return (
            f"DynamicPanel(n_ever={self.n_ever}, T={self.horizon}, "
            f"churned={self.churned})"
        )
