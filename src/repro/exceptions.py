"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing configuration mistakes from runtime (data-dependent) failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PrivacyBudgetError",
    "ConsistencyError",
    "NegativeCountError",
    "StreamLengthError",
    "DataValidationError",
    "NotFittedError",
    "SerializationError",
    "RecoveryError",
    "DegradedServiceWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """Invalid parameters supplied to a mechanism or synthesizer.

    Raised eagerly at construction time (e.g. non-positive privacy budget,
    window width larger than the time horizon, synthetic population size that
    cannot accommodate the padding).
    """


class PrivacyBudgetError(ReproError, RuntimeError):
    """An operation would exceed the declared zero-concentrated DP budget."""


class ConsistencyError(ReproError, RuntimeError):
    """A longitudinal consistency invariant was violated.

    The continual synthesizers maintain the invariant that synthetic records
    persist across rounds: the number of synthetic records ending in suffix
    ``z`` at round ``t`` must equal the number extended into ``z0`` or ``z1``
    at round ``t + 1``.  This error indicates an internal bookkeeping bug or
    a caller mutating released data in place; it should never occur during
    normal operation.
    """


class NegativeCountError(ReproError, RuntimeError):
    """A target synthetic count went negative and the policy is ``"raise"``.

    Under the good event of Theorem 3.2 the padding parameter ``n_pad``
    guarantees non-negative counts with probability ``1 - beta``.  Outside the
    good event the fixed-window synthesizer either raises this error or, with
    ``on_negative="redistribute"``, shifts mass within the affected suffix
    pair while preserving the consistency sum.
    """


class StreamLengthError(ReproError, RuntimeError):
    """A stream counter received more elements than its declared horizon."""


class DataValidationError(ReproError, ValueError):
    """Input data violates the longitudinal panel contract.

    The synthesizers consume an ``n x T`` binary panel: one row per
    individual, one column per reporting period, entries in ``{0, 1}``.
    """


class NotFittedError(ReproError, RuntimeError):
    """A result accessor was called before the corresponding round ran."""


class RecoveryError(ReproError, RuntimeError):
    """Crash recovery could not restore a correct service state.

    Raised by the :mod:`repro.serve` supervision layer when recovery
    cannot be completed soundly: no usable checkpoint or journal exists,
    a journaled round does not replay byte-identically (which would mean
    re-noising an already-published release — forbidden by the one-
    release-per-round DP contract), the retry budget for restarting dead
    workers is exhausted, or an operation (e.g. ``checkpoint``) is
    invalid on a degraded service.  The supervisor fails closed with
    this error rather than ever serving silently wrong answers.
    """


class DegradedServiceWarning(UserWarning):
    """A sharded service is serving from a subset of its shards.

    Emitted (via :mod:`warnings`) when a shard has been declared
    unrecoverable and the service — explicitly opted in via
    ``degraded_ok=True`` — continues to serve population-weighted merged
    answers from the surviving shards.  Answers carry an explicit
    ``degraded`` flag and the per-shard health report names the failed
    shards; the default (opt-out) behavior is to fail closed instead.
    """


class SerializationError(ReproError, RuntimeError):
    """A checkpoint bundle could not be written, read, or applied.

    Raised by the :mod:`repro.serve` checkpoint machinery instead of bare
    ``ValueError``/``KeyError`` when a bundle is structurally corrupt, fails
    its integrity checksum, declares an unsupported format version, or
    describes state incompatible with the object it is being loaded into
    (e.g. a different bit-generator family or horizon).  Catching this error
    is the supported way to detect an unusable checkpoint; anything else
    escaping :func:`repro.serve.checkpoint.read_bundle` is a bug.
    """
