"""Seeded multi-repetition experiment runner.

Every figure in the paper repeats a synthesizer 1000 times on the same
dataset and plots the distribution of the answers.
:func:`replicate_synthesizer` is the generic engine: a factory builds a
fresh synthesizer per repetition (fed an independent child seed), the
synthesizer runs over the panel, and each (query, time) answer is recorded.

Three execution strategies are available (``strategy=``):

* ``"batched"`` — all ``R`` repetitions of Algorithm 2 advance as one
  ``(R, T)`` NumPy state machine (:mod:`repro.core.replicated`): one
  batched noise draw per round, batched monotonization, and no synthetic
  record draws (cumulative answers read off the threshold tables).  The
  order-of-magnitude fast path for cumulative figures; requires a
  :class:`~repro.core.cumulative.CumulativeSynthesizer` factory with a
  native counter bank and Hamming queries.
* ``"process"`` — a chunked :class:`~concurrent.futures.ProcessPoolExecutor`
  fallback for Algorithm 1 / arbitrary factories.  Each repetition receives
  exactly the same spawned child generator as the serial path, so results
  are *bit-exact* with ``"serial"`` — noise and all — regardless of the
  worker count or chunking.  Uses the ``fork`` start method (the dataset
  and factory are inherited, never pickled); on platforms without ``fork``
  it degrades to the serial loop.
* ``"serial"`` — the reference one-repetition-at-a-time loop.

``strategy=None`` consults ``$REPRO_REPLICATION_STRATEGY`` and defaults to
``"auto"``: batched when the factory and queries qualify, serial otherwise.
An *explicit* ``strategy="batched"`` argument is strict (ineligible
workloads raise); the environment variable is a process-wide preference,
so an env-sourced ``"batched"`` degrades to serial where it cannot apply.
"""

from __future__ import annotations

import math
import os
import threading
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.metrics import SeriesSummary
from repro.data.dataset import LongitudinalDataset
from repro.exceptions import ConfigurationError
from repro.queries.base import Query
from repro.queries.plan import release_answer_grid
from repro.rng import SeedLike, as_generator, spawn

__all__ = [
    "ReplicatedAnswers",
    "replicate_synthesizer",
    "resolve_strategy",
    "resolve_n_jobs",
    "window_strategy",
    "cumulative_strategy",
    "STRATEGIES",
]

#: Execution strategies for :func:`replicate_synthesizer`.
STRATEGIES = ("auto", "batched", "process", "serial")


def resolve_strategy(strategy: str | None = None) -> str:
    """Resolve and validate a replication-strategy choice.

    ``None`` consults the ``REPRO_REPLICATION_STRATEGY`` environment
    variable (so a CI job can flip every replication call in the process)
    and defaults to ``"auto"``.  Unrecognized values — explicit or from
    the environment — raise instead of silently falling back.
    """
    if strategy is None:
        env = os.environ.get("REPRO_REPLICATION_STRATEGY", "").strip().lower()
        if not env:
            return "auto"
        if env not in STRATEGIES:
            raise ConfigurationError(
                f"REPRO_REPLICATION_STRATEGY must be one of {STRATEGIES}, got {env!r}"
            )
        return env
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"strategy must be one of {STRATEGIES}, got {strategy!r}"
        )
    return strategy


def window_strategy(strategy: str | None) -> str:
    """Soften a ``"batched"`` request for window-pipeline runs.

    Algorithm 1 has no batched fast path, so experiments built on
    :class:`~repro.core.fixed_window.FixedWindowSynthesizer` map
    ``"batched"`` to ``"auto"`` instead of aborting — the same convention
    as the ``--engine`` flag, which the window pipeline accepts and
    ignores.  The request is resolved first, so a process-wide
    ``REPRO_REPLICATION_STRATEGY=batched`` softens exactly like the
    explicit flag; this keeps ``repro-experiments all
    --replication-strategy batched`` (or the env var) runnable across the
    whole registry.
    """
    strategy = resolve_strategy(strategy)
    return "auto" if strategy == "batched" else strategy


def cumulative_strategy(strategy: str | None, engine: str, counter: str) -> str:
    """Soften a ``"batched"`` request that this cumulative run cannot honor.

    The batched engine needs the vectorized counter engine and a counter
    with a native bank (see ``_batched_config``); experiments that sweep
    engines or counters call this so one ineligible combination downgrades
    to ``"auto"`` instead of aborting the whole sweep.  Resolves the
    environment variable first, like :func:`window_strategy`.
    """
    from repro.streams.registry import available_banks

    strategy = resolve_strategy(strategy)
    if strategy == "batched" and (
        engine != "vectorized" or counter not in available_banks()
    ):
        return "auto"
    return strategy


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Worker count for the process strategy.

    ``None`` consults ``$REPRO_N_JOBS`` and falls back to the CPU count.
    """
    if n_jobs is None:
        env = os.environ.get("REPRO_N_JOBS", "").strip()
        if env:
            try:
                n_jobs = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_N_JOBS must be an integer, got {env!r}"
                ) from None
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    if n_jobs <= 0:
        raise ConfigurationError(f"n_jobs must be positive, got {n_jobs}")
    return n_jobs


@dataclass(frozen=True)
class ReplicatedAnswers:
    """Answers of a replicated continual-release experiment.

    Attributes
    ----------
    answers:
        Shape ``(n_reps, n_queries, n_times)``.
    truth:
        Shape ``(n_queries, n_times)`` ground truth on the raw panel.
    times:
        The evaluation rounds (1-indexed).
    query_names:
        One label per query row.
    """

    answers: np.ndarray
    truth: np.ndarray
    times: tuple[int, ...]
    query_names: tuple[str, ...]

    @property
    def n_reps(self) -> int:
        """Number of repetitions."""
        return self.answers.shape[0]

    def errors(self) -> np.ndarray:
        """Signed errors, same shape as ``answers``."""
        return self.answers - self.truth[None, :, :]

    def max_abs_error_per_rep(self) -> np.ndarray:
        """Worst error over queries and times, per repetition."""
        return np.abs(self.errors()).max(axis=(1, 2))

    def summary(self, query_index: int = 0, band=(2.5, 97.5)) -> SeriesSummary:
        """Distribution summary of one query's series across repetitions."""
        if not 0 <= query_index < len(self.query_names):
            raise ConfigurationError(
                f"query_index must lie in [0, {len(self.query_names)}), got {query_index}"
            )
        return SeriesSummary.from_samples(
            x=np.asarray(self.times, dtype=np.float64),
            samples=self.answers[:, query_index, :],
            truth=self.truth[query_index],
            label=self.query_names[query_index],
            band=band,
        )

    def summaries(self, band=(2.5, 97.5)) -> list[SeriesSummary]:
        """One :class:`SeriesSummary` per query."""
        return [self.summary(i, band=band) for i in range(len(self.query_names))]


def _default_answer(release, query: Query, t: int, debias: bool) -> float:
    """Answer dispatch on the release's declared capability.

    Releases that accept the ``debias`` flag advertise it with a truthy
    ``debias_aware`` attribute (see
    :class:`~repro.core.window_engine.WindowRelease`); everything else —
    cumulative releases, third-party :class:`~repro.types.Release`
    implementations — is called with the bare protocol signature.
    """
    if getattr(release, "debias_aware", False):
        return release.answer(query, t, debias=debias)
    return release.answer(query, t)


def replicate_synthesizer(
    factory: Callable[[np.random.Generator], object],
    dataset: LongitudinalDataset,
    queries: Sequence[Query],
    times: Sequence[int],
    n_reps: int,
    seed: SeedLike = None,
    debias: bool = True,
    answer_fn: Callable[[object, Query, int, bool], float] | None = None,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> ReplicatedAnswers:
    """Run ``n_reps`` independent synthesizer runs and collect answers.

    Parameters
    ----------
    factory:
        Called with a fresh child :class:`numpy.random.Generator` per
        repetition; must return an object with ``run(dataset) -> release``.
    queries, times:
        The (query, round) grid to record.  Times at which a query is not
        yet defined (``t < query.min_time()``) are recorded as ``NaN``.
    debias:
        Passed through to window releases (ignored by cumulative ones).
    answer_fn:
        Override for custom release types; receives
        ``(release, query, t, debias)``.  Under ``strategy="process"`` it
        executes in forked workers: its *return values* come back, but any
        in-process side effects (logging, accumulating diagnostics) stay
        in the children — pass ``strategy="serial"`` when you rely on
        them.
    strategy:
        ``"batched"``, ``"process"``, ``"serial"``, or ``"auto"`` (see the
        module docstring); ``None`` resolves via
        ``$REPRO_REPLICATION_STRATEGY`` and defaults to ``"auto"``.
    n_jobs:
        Worker count for ``strategy="process"`` (``None``: ``$REPRO_N_JOBS``
        or the CPU count).  Ignored by the other strategies.
    """
    if n_reps <= 0:
        raise ConfigurationError(f"n_reps must be positive, got {n_reps}")
    if not queries:
        raise ConfigurationError("need at least one query")
    if not times:
        raise ConfigurationError("need at least one evaluation time")
    # An explicitly-passed "batched" is a strict demand (ineligible
    # workloads raise); an environment-sourced one is a process-wide
    # preference and degrades to the serial loop where batched can't apply.
    explicit = strategy is not None
    strategy = resolve_strategy(strategy)

    times = tuple(int(t) for t in times)
    truth = np.full((len(queries), len(times)), np.nan)
    for qi, query in enumerate(queries):
        for ti, t in enumerate(times):
            if t >= query.min_time():
                truth[qi, ti] = query.evaluate(dataset, t)

    if strategy in ("auto", "batched"):
        config = _batched_config(factory, dataset, queries, answer_fn)
        if config is not None:
            answers = _answers_batched(config, dataset, queries, times, n_reps, seed)
        elif strategy == "batched" and explicit:
            raise ConfigurationError(
                "strategy='batched' needs a CumulativeSynthesizer factory with "
                "a native counter bank (engine='vectorized', no counter_kwargs), "
                "HammingAtLeast/HammingExactly queries, a matching dataset "
                "horizon, and no custom answer_fn; use 'process', 'serial', or "
                "'auto' for everything else"
            )
        else:
            answers = _answers_serial(
                factory, dataset, queries, times, n_reps, seed, debias, answer_fn
            )
    elif strategy == "process":
        answers = _answers_process(
            factory, dataset, queries, times, n_reps, seed, debias, answer_fn, n_jobs
        )
    else:
        answers = _answers_serial(
            factory, dataset, queries, times, n_reps, seed, debias, answer_fn
        )

    return ReplicatedAnswers(
        answers=answers,
        truth=truth,
        times=times,
        query_names=tuple(query.name for query in queries),
    )


# ----------------------------------------------------------------------
# Serial strategy (the reference loop)
# ----------------------------------------------------------------------


def _answers_for_rep(
    factory, generator, dataset, queries, times, debias, answer_fn, out_row
) -> None:
    """One repetition: build, run, record the (query, time) grid in place.

    The default dispatch routes the whole grid through
    :func:`repro.queries.plan.release_answer_grid` (one compiled batch per
    release, bit-identical with the scalar loop).  A custom ``answer_fn``
    runs per cell unless it carries an ``answer_grid`` attribute — a
    callable ``(release, queries, times, debias) -> grid`` — in which case
    the whole workload is handed over at once (see
    :func:`repro.analysis.utility.utility_answer`).
    """
    synthesizer = factory(generator)
    release = synthesizer.run(dataset)
    if answer_fn is None:
        out_row[...] = release_answer_grid(release, queries, times, debias=debias)
        return
    grid_fn = getattr(answer_fn, "answer_grid", None)
    if grid_fn is not None:
        out_row[...] = grid_fn(release, queries, times, debias)
        return
    for qi, query in enumerate(queries):
        for ti, t in enumerate(times):
            if t >= query.min_time():
                out_row[qi, ti] = answer_fn(release, query, t, debias)


def _answers_serial(
    factory, dataset, queries, times, n_reps, seed, debias, answer_fn
) -> np.ndarray:
    answers = np.full((n_reps, len(queries), len(times)), np.nan)
    for rep, generator in enumerate(spawn(seed, n_reps)):
        _answers_for_rep(
            factory, generator, dataset, queries, times, debias, answer_fn, answers[rep]
        )
    return answers


# ----------------------------------------------------------------------
# Process strategy (chunked fork pool, bit-exact with serial)
# ----------------------------------------------------------------------

# Shared task state for forked workers.  The payload (factory closures,
# the panel, query objects) is inherited through fork() rather than
# pickled per task — only the per-rep child generators cross the pipe.
# The lock serializes pool lifetimes: a concurrent (or nested) process
# replication would otherwise fork workers against the wrong payload, so
# contenders fall back to the bit-exact serial loop instead.
_FORK_PAYLOAD: tuple | None = None
_FORK_LOCK = threading.Lock()


def _process_chunk(generators) -> np.ndarray:
    factory, dataset, queries, times, debias, answer_fn = _FORK_PAYLOAD
    answers = np.full((len(generators), len(queries), len(times)), np.nan)
    for i, generator in enumerate(generators):
        _answers_for_rep(
            factory, generator, dataset, queries, times, debias, answer_fn, answers[i]
        )
    return answers


def _answers_process(
    factory, dataset, queries, times, n_reps, seed, debias, answer_fn, n_jobs
) -> np.ndarray:
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    if "fork" not in multiprocessing.get_all_start_methods():
        # No fork (e.g. Windows): closures cannot reach the workers, so the
        # pool cannot run arbitrary factories.  Serial is bit-exact anyway.
        return _answers_serial(
            factory, dataset, queries, times, n_reps, seed, debias, answer_fn
        )

    generators = spawn(seed, n_reps)
    jobs = min(resolve_n_jobs(n_jobs), n_reps)
    # ~4 chunks per worker amortizes task dispatch while smoothing stragglers.
    chunk_size = max(1, math.ceil(n_reps / (jobs * 4)))
    chunks = [generators[i : i + chunk_size] for i in range(0, n_reps, chunk_size)]

    global _FORK_PAYLOAD
    if not _FORK_LOCK.acquire(blocking=False):
        return _answers_serial(
            factory, dataset, queries, times, n_reps, seed, debias, answer_fn
        )
    try:
        _FORK_PAYLOAD = (factory, dataset, queries, times, debias, answer_fn)
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chunks)), mp_context=context
        ) as pool:
            parts = list(pool.map(_process_chunk, chunks))
    finally:
        _FORK_PAYLOAD = None
        _FORK_LOCK.release()
    return np.concatenate(parts, axis=0)


# ----------------------------------------------------------------------
# Batched strategy (Algorithm 2 fast path)
# ----------------------------------------------------------------------


def _batched_config(factory, dataset, queries, answer_fn) -> dict | None:
    """Probe the factory; return replicate_cumulative kwargs when eligible.

    Eligibility: default answer dispatch, all-Hamming queries, and a fresh
    :class:`~repro.core.cumulative.CumulativeSynthesizer` with a *native*
    vectorized bank (a :class:`~repro.streams.bank.FallbackBank` means the
    counter has no rep axis — scalar engines and counter_kwargs land
    there too) on the dataset's horizon.  The probe instance is built with
    a throwaway generator and discarded; it never observes data.
    """
    from repro.core.cumulative import CumulativeSynthesizer
    from repro.queries.cumulative import HammingAtLeast, HammingExactly
    from repro.streams.bank import FallbackBank

    if answer_fn is not None:
        return None
    if not all(isinstance(q, (HammingAtLeast, HammingExactly)) for q in queries):
        return None
    probe = factory(as_generator(0))
    if not isinstance(probe, CumulativeSynthesizer) or probe.t != 0:
        return None
    if probe.bank is None or isinstance(probe.bank, FallbackBank):
        return None
    if probe.horizon != dataset.horizon:
        return None
    return {
        "rho": probe.rho,
        "counter": probe.counter_name,
        "budget": probe.rho_per_threshold,
        "noise_method": probe.noise_method,
    }


def _answers_batched(config, dataset, queries, times, n_reps, seed) -> np.ndarray:
    from repro.core.replicated import replicate_cumulative

    replicated = replicate_cumulative(dataset, n_reps, seed=seed, **config)
    return replicated.answer_grid(queries, times)
