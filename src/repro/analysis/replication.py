"""Seeded multi-repetition experiment runner.

Every figure in the paper repeats a synthesizer 1000 times on the same
dataset and plots the distribution of the answers.
:func:`replicate_synthesizer` is the generic engine: a factory builds a
fresh synthesizer per repetition (fed an independent child seed), the
synthesizer runs over the panel, and each (query, time) answer is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.metrics import SeriesSummary
from repro.data.dataset import LongitudinalDataset
from repro.exceptions import ConfigurationError
from repro.queries.base import Query
from repro.rng import SeedLike, spawn

__all__ = ["ReplicatedAnswers", "replicate_synthesizer"]


@dataclass(frozen=True)
class ReplicatedAnswers:
    """Answers of a replicated continual-release experiment.

    Attributes
    ----------
    answers:
        Shape ``(n_reps, n_queries, n_times)``.
    truth:
        Shape ``(n_queries, n_times)`` ground truth on the raw panel.
    times:
        The evaluation rounds (1-indexed).
    query_names:
        One label per query row.
    """

    answers: np.ndarray
    truth: np.ndarray
    times: tuple[int, ...]
    query_names: tuple[str, ...]

    @property
    def n_reps(self) -> int:
        """Number of repetitions."""
        return self.answers.shape[0]

    def errors(self) -> np.ndarray:
        """Signed errors, same shape as ``answers``."""
        return self.answers - self.truth[None, :, :]

    def max_abs_error_per_rep(self) -> np.ndarray:
        """Worst error over queries and times, per repetition."""
        return np.abs(self.errors()).max(axis=(1, 2))

    def summary(self, query_index: int = 0, band=(2.5, 97.5)) -> SeriesSummary:
        """Distribution summary of one query's series across repetitions."""
        if not 0 <= query_index < len(self.query_names):
            raise ConfigurationError(
                f"query_index must lie in [0, {len(self.query_names)}), got {query_index}"
            )
        return SeriesSummary.from_samples(
            x=np.asarray(self.times, dtype=np.float64),
            samples=self.answers[:, query_index, :],
            truth=self.truth[query_index],
            label=self.query_names[query_index],
            band=band,
        )

    def summaries(self, band=(2.5, 97.5)) -> list[SeriesSummary]:
        """One :class:`SeriesSummary` per query."""
        return [self.summary(i, band=band) for i in range(len(self.query_names))]


def _default_answer(release, query: Query, t: int, debias: bool) -> float:
    """Answer dispatch: window releases take the ``debias`` flag."""
    from repro.core.cumulative import CumulativeRelease

    if isinstance(release, CumulativeRelease):
        return release.answer(query, t)
    return release.answer(query, t, debias=debias)


def replicate_synthesizer(
    factory: Callable[[np.random.Generator], object],
    dataset: LongitudinalDataset,
    queries: Sequence[Query],
    times: Sequence[int],
    n_reps: int,
    seed: SeedLike = None,
    debias: bool = True,
    answer_fn: Callable[[object, Query, int, bool], float] | None = None,
) -> ReplicatedAnswers:
    """Run ``n_reps`` independent synthesizer runs and collect answers.

    Parameters
    ----------
    factory:
        Called with a fresh child :class:`numpy.random.Generator` per
        repetition; must return an object with ``run(dataset) -> release``.
    queries, times:
        The (query, round) grid to record.  Times at which a query is not
        yet defined (``t < query.min_time()``) are recorded as ``NaN``.
    debias:
        Passed through to window releases (ignored by cumulative ones).
    answer_fn:
        Override for custom release types; receives
        ``(release, query, t, debias)``.
    """
    if n_reps <= 0:
        raise ConfigurationError(f"n_reps must be positive, got {n_reps}")
    if not queries:
        raise ConfigurationError("need at least one query")
    if not times:
        raise ConfigurationError("need at least one evaluation time")
    answer = answer_fn or _default_answer

    times = tuple(int(t) for t in times)
    truth = np.full((len(queries), len(times)), np.nan)
    for qi, query in enumerate(queries):
        for ti, t in enumerate(times):
            if t >= query.min_time():
                truth[qi, ti] = query.evaluate(dataset, t)

    answers = np.full((n_reps, len(queries), len(times)), np.nan)
    for rep, generator in enumerate(spawn(seed, n_reps)):
        synthesizer = factory(generator)
        release = synthesizer.run(dataset)
        for qi, query in enumerate(queries):
            for ti, t in enumerate(times):
                if t >= query.min_time():
                    answers[rep, qi, ti] = answer(release, query, t, debias)

    return ReplicatedAnswers(
        answers=answers,
        truth=truth,
        times=times,
        query_names=tuple(query.name for query in queries),
    )
