"""Noise-aware confidence intervals for released query answers.

Because the privacy noise distribution is *public* (its scale is part of
the mechanism description), an analyst can attach calibrated uncertainty to
every debiased answer — one of the practical benefits of noise-aware DP
releases that raw synthetic data normally obscures.

* :func:`window_answer_ci` uses the Theorem 3.2 error accounting: each bin
  of the released histogram deviates from ``C_s^t + n_pad`` by a mean-zero
  subgaussian with variance at most ``(sigma + 1/2)^2``, time-uniformly,
  where ``sigma^2 = (T-k+1)/(2 rho)``.  A width-``k'`` query lifted to
  weights ``w`` over the ``2^k`` bins then has error stddev at most
  ``sqrt(sum_s w_s^2) * (sigma + 1/2) / n`` (per-bin errors are treated as
  uncorrelated; the pair coupling introduced by the consistency correction
  is anti-correlated within pairs, making this slightly conservative for
  queries with aligned weights — the coverage test verifies empirically).
* :func:`cumulative_answer_ci` uses the underlying stream counter's error
  stddev at time ``t``; monotonization never increases the worst-case error
  (Lemma 4.2), so the raw counter scale is a conservative proxy.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.queries.base import WindowQuery
from repro.queries.cumulative import HammingAtLeast

if TYPE_CHECKING:  # imported lazily at runtime to avoid a core<->analysis cycle
    from repro.core.cumulative import CumulativeRelease
    from repro.core.fixed_window import FixedWindowRelease

__all__ = ["normal_quantile", "window_answer_ci", "cumulative_answer_ci"]


def normal_quantile(level: float) -> float:
    """Two-sided standard-normal quantile: ``z`` with ``P(|N| <= z) = level``.

    Computed with the Acklam/Moro rational approximation (absolute error
    below 1.2e-8 over the full range), so no SciPy dependency is needed in
    the core path.
    """
    if not 0.0 < level < 1.0:
        raise ConfigurationError(f"level must lie in (0, 1), got {level}")
    p = 0.5 + level / 2.0  # upper-tail probability point

    # Coefficients of Acklam's inverse-normal approximation.
    a = (
        -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
        1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
        6.680131188771972e01, -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
        -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
        ) / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def window_answer_ci(
    release: "FixedWindowRelease",
    query: WindowQuery,
    t: int,
    level: float = 0.95,
) -> tuple[float, float]:
    """Confidence interval around a debiased fixed-window answer.

    Returns ``(lower, upper)`` such that the true fraction
    ``q(D^1..D^t)`` lies inside with approximately the requested
    probability over the mechanism's coins.
    """
    from repro.core.debias import lift_window_weights

    if query.k > release.window:
        raise ConfigurationError(
            f"query width {query.k} exceeds the release window {release.window}; "
            "no calibrated interval exists for unsupported widths"
        )
    estimate = release.answer(query, t, debias=True)
    synthesizer = release._synth
    sigma = math.sqrt(float(synthesizer.sigma_sq))
    weights = lift_window_weights(query.weights, query.k, release.window)
    weight_l2 = math.sqrt(float((weights**2).sum()))
    stddev = weight_l2 * (sigma + 0.5) / release.n_original
    z = normal_quantile(level)
    return estimate - z * stddev, estimate + z * stddev


def cumulative_answer_ci(
    release: "CumulativeRelease",
    query: HammingAtLeast,
    t: int,
    level: float = 0.95,
) -> tuple[float, float]:
    """Confidence interval around a cumulative threshold answer.

    Uses the threshold's stream-counter error stddev at the effective
    stream position (counter ``b`` starts at round ``b``); Lemma 4.2 makes
    the raw counter scale a conservative proxy for the monotonized error.
    """
    if not isinstance(query, HammingAtLeast):
        raise ConfigurationError(
            f"cumulative CIs support HammingAtLeast queries, got {query!r}"
        )
    estimate = release.answer(query, t)
    synthesizer = release._synth
    if not 1 <= query.b <= synthesizer.horizon:
        # b = 0 (everyone) and b > T (no one) are exact constants.
        return estimate, estimate
    position = max(t - query.b + 1, 1)
    raw_stddev = synthesizer.counter_error_stddev(query.b, position)
    if raw_stddev is None:
        # Threshold not yet active: the estimate is the exact constant 0.
        return estimate, estimate
    stddev = raw_stddev / release.m
    z = normal_quantile(level)
    return estimate - z * stddev, estimate + z * stddev
