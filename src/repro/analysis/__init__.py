"""Analysis toolkit: theoretical bounds, error metrics, replication harness.

* :mod:`repro.analysis.theory` — closed-form bounds from the paper
  (Theorem 3.2, Corollary 3.3, Theorem A.2, Corollary B.1) used to draw the
  dashed bound lines of Figures 3/4 and to choose the default padding.
* :mod:`repro.analysis.metrics` — error metrics over replicated runs.
* :mod:`repro.analysis.replication` — the seeded multi-repetition runner
  behind every figure (the paper repeats each synthesizer 1000 times).
* :mod:`repro.analysis.tables` — plain-text rendering of result series
  (this reproduction's "figures" are printed series tables).
* :mod:`repro.analysis.utility` — padding-aware pMSE scoring of synthetic
  releases (the Snoke & Slavković propensity-score metric, saturated
  closed-form over finite alphabets) and the replicated utility harness.
"""

from repro.analysis.confidence import (
    cumulative_answer_ci,
    normal_quantile,
    window_answer_ci,
)
from repro.analysis.metrics import (
    bias,
    max_abs_error,
    percentile_bands,
    rmse,
    SeriesSummary,
)
from repro.analysis.replication import (
    STRATEGIES,
    ReplicatedAnswers,
    replicate_synthesizer,
    resolve_n_jobs,
    resolve_strategy,
)
from repro.analysis.tables import render_comparison_table, render_series_table
from repro.analysis.utility import (
    PMSEProbe,
    PMSEScore,
    UtilityReport,
    expected_null_pmse,
    panel_hamming_codes,
    panel_window_codes,
    pmse_panels,
    pmse_release,
    propensity_pmse,
    propensity_pmse_counts,
    score_synthesizer,
    utility_answer,
)
from repro.analysis.theory import (
    corollary_3_3_relative_bound,
    corollary_b1_alpha,
    debiased_error_bound,
    default_n_pad,
    theorem_3_2_bound,
    tree_counter_error_bound,
)

__all__ = [
    "normal_quantile",
    "window_answer_ci",
    "cumulative_answer_ci",
    "theorem_3_2_bound",
    "default_n_pad",
    "corollary_3_3_relative_bound",
    "debiased_error_bound",
    "tree_counter_error_bound",
    "corollary_b1_alpha",
    "max_abs_error",
    "bias",
    "rmse",
    "percentile_bands",
    "SeriesSummary",
    "ReplicatedAnswers",
    "replicate_synthesizer",
    "resolve_strategy",
    "resolve_n_jobs",
    "STRATEGIES",
    "render_series_table",
    "render_comparison_table",
    "PMSEScore",
    "PMSEProbe",
    "UtilityReport",
    "propensity_pmse",
    "propensity_pmse_counts",
    "expected_null_pmse",
    "panel_window_codes",
    "panel_hamming_codes",
    "pmse_panels",
    "pmse_release",
    "score_synthesizer",
    "utility_answer",
]
