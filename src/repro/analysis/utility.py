"""Utility evaluation harness: pMSE scoring of synthetic releases.

The repo benchmarks *speed* aggressively, but synthetic-data *quality*
was only checked through figure replication.  This module closes that gap
with the **propensity score mean-squared error** (pMSE) of Snoke &
Slavković: pool the real and synthetic records, fit a propensity model
that predicts whether a record is synthetic, and measure how far the
fitted propensities stray from the synthetic fraction ``c``.  If the
synthetic data is distributed like the real data, no model can tell the
two apart and the pMSE is small; a distribution shift (bias from
clamping, over-noising, broken consistency) shows up as separable records
and a large pMSE.

Because every release in this codebase is a panel over a *finite
alphabet* (binary poverty bits or q-ary employment states), the
propensity model can be **saturated and closed-form**: featurize each
record by its recent length-``w`` window pattern (a base-``q`` code), and
the maximum-likelihood propensity in each pattern cell is simply the
cell's synthetic fraction.  No SciPy, no logistic solver — one
``bincount`` per side.

Padding records are handled the way the paper's §3.2 estimator handles
them: Algorithm 1's released panel deliberately contains ``n_pad``
*public* fake individuals per pattern bin, and an analyst subtracts that
known contribution before reading any statistic.  The scorer does the
same — when a release carries a :class:`~repro.core.padding.PaddingSpec`
the padding counts are removed from the synthetic histogram before the
propensity fit — so pMSE measures genuine distributional defects (noise,
clamping bias, broken consistency), not the mechanism's own declared
padding.

Scores are reported as the **pMSE ratio**: observed pMSE divided by its
null expectation for a same-distribution synthetic sample of the same
size (the saturated-model analogue of the ``(k-1)(1-c)^2 c / N``
normalization of Snoke et al.).  Interpretation:

* ``0``  — the synthetic records are indistinguishable cell-by-cell from
  the real ones (e.g. the non-private oracle, which releases the data
  itself);
* ``~1`` — as separable as a fresh sample from the true distribution
  (the best any honest generator can do);
* ``>> 1`` — a real distributional defect.

:func:`score_synthesizer` runs the scorer over replicated runs through
:func:`~repro.analysis.replication.replicate_synthesizer` by disguising
the scorer as a query (:class:`PMSEProbe`), so every replication strategy
(serial / process) and every release type with a ``synthetic_data(t)``
view can be scored with the same machinery that produces the paper
figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.metrics import max_abs_error, rmse
from repro.analysis.replication import ReplicatedAnswers, replicate_synthesizer
from repro.exceptions import ConfigurationError, DataValidationError
from repro.queries.base import Query
from repro.queries.plan import release_answer_grid
from repro.rng import SeedLike

__all__ = [
    "PMSEScore",
    "propensity_pmse",
    "propensity_pmse_counts",
    "expected_null_pmse",
    "panel_window_codes",
    "panel_hamming_codes",
    "pmse_panels",
    "pmse_release",
    "PMSEProbe",
    "utility_answer",
    "UtilityReport",
    "score_synthesizer",
]


def expected_null_pmse(n_real: float, n_synthetic: float, df: int) -> float:
    """Expected pMSE when the synthetic data has the true distribution.

    For the saturated categorical propensity model, each occupied cell's
    real/synthetic split is binomial with success probability
    ``c = n_synthetic / N``, and estimating ``c`` from the pooled sample
    removes one degree of freedom, giving ``E[pMSE] = df * c (1 - c) / N``
    with ``df = occupied cells - 1`` — the exact-variance analogue of the
    asymptotic ``(k - 1)(1 - c)^2 c / N`` normalization that Snoke &
    Slavković derive for logistic propensity models.

    Parameters
    ----------
    n_real, n_synthetic:
        Record masses of the two pooled sides (both positive; fractional
        after padding debiasing).
    df:
        Model degrees of freedom: occupied pattern cells minus one.

    Returns
    -------
    float
        The null expectation; 0.0 when ``df`` is 0 (a single cell holds
        everything, so propensities carry no signal).
    """
    if n_real <= 0 or n_synthetic <= 0:
        raise ConfigurationError(
            f"need records on both sides, got n_real={n_real}, "
            f"n_synthetic={n_synthetic}"
        )
    if df < 0:
        raise ConfigurationError(f"df must be non-negative, got {df}")
    total = n_real + n_synthetic
    c = n_synthetic / total
    return df * c * (1.0 - c) / total


@dataclass(frozen=True)
class PMSEScore:
    """One pMSE evaluation of a synthetic sample against real records.

    Attributes
    ----------
    pmse:
        Observed propensity mean-squared error.
    null_pmse:
        Expected pMSE for a fresh same-distribution sample
        (:func:`expected_null_pmse`); the denominator of :attr:`ratio`.
    n_real, n_synthetic:
        Pooled record masses (fractional when padding was debiased out of
        the synthetic counts).
    n_cells:
        Occupied pattern cells (cells with at least one pooled record).
    """

    pmse: float
    null_pmse: float
    n_real: float
    n_synthetic: float
    n_cells: int

    @property
    def ratio(self) -> float:
        """Observed pMSE over its same-distribution null expectation.

        0 means indistinguishable, ~1 means as separable as a fresh true
        sample, much larger means a distributional defect.  When the null
        expectation is 0 (single occupied cell) the ratio is 0 by
        convention — there is no propensity signal to normalize.
        """
        if self.null_pmse == 0.0:
            return 0.0
        return self.pmse / self.null_pmse


def propensity_pmse(
    real_codes: np.ndarray,
    synthetic_codes: np.ndarray,
    n_cells: int | None = None,
) -> PMSEScore:
    """pMSE of the saturated propensity model over discrete feature codes.

    Pools the two code vectors, fits the saturated model (cell propensity
    = the cell's synthetic fraction, the logistic MLE with one indicator
    per cell), and averages the squared propensity deviations from the
    overall synthetic share ``c``.

    Parameters
    ----------
    real_codes, synthetic_codes:
        1-D non-negative integer feature codes — one per record — in the
        same code space (e.g. window-pattern codes from
        :func:`panel_window_codes`).  Both must be non-empty.
    n_cells:
        Size of the code space (codes lie in ``[0, n_cells)``).  ``None``
        infers the smallest spanning size; the value only bounds the
        ``bincount`` width, the score itself depends on occupied cells.

    Returns
    -------
    PMSEScore
        The observed pMSE with its null normalization.
    """
    real_codes = np.asarray(real_codes)
    synthetic_codes = np.asarray(synthetic_codes)
    for label, codes in (("real", real_codes), ("synthetic", synthetic_codes)):
        if codes.ndim != 1:
            raise DataValidationError(
                f"{label} codes must be 1-D, got shape {codes.shape}"
            )
        if codes.size == 0:
            raise DataValidationError(f"{label} codes are empty; nothing to score")
        if not np.issubdtype(codes.dtype, np.integer):
            raise DataValidationError(
                f"{label} codes must be integers, got dtype {codes.dtype}"
            )
        if codes.min() < 0:
            raise DataValidationError(f"{label} codes must be non-negative")
    span = int(max(real_codes.max(), synthetic_codes.max())) + 1
    if n_cells is None:
        n_cells = span
    elif span > n_cells:
        raise DataValidationError(
            f"codes reach {span - 1} but n_cells is only {n_cells}"
        )
    real_counts = np.bincount(real_codes, minlength=n_cells)
    synthetic_counts = np.bincount(synthetic_codes, minlength=n_cells)
    return propensity_pmse_counts(real_counts, synthetic_counts)


def propensity_pmse_counts(
    real_counts: np.ndarray, synthetic_counts: np.ndarray
) -> PMSEScore:
    """pMSE of the saturated propensity model over cell count vectors.

    The count-vector form of :func:`propensity_pmse`: each entry is the
    record mass of one pattern cell.  Counts may be fractional — the
    utility harness uses this to score *debiased* synthetic histograms,
    subtracting a release's public padding contribution before the fit
    (see :func:`pmse_release`).

    Parameters
    ----------
    real_counts, synthetic_counts:
        1-D non-negative count vectors of equal length (one entry per
        pattern cell), each with positive total mass.

    Returns
    -------
    PMSEScore
        The observed pMSE with its null normalization.
    """
    real_counts = np.asarray(real_counts, dtype=np.float64)
    synthetic_counts = np.asarray(synthetic_counts, dtype=np.float64)
    for label, counts in (("real", real_counts), ("synthetic", synthetic_counts)):
        if counts.ndim != 1:
            raise DataValidationError(
                f"{label} counts must be 1-D, got shape {counts.shape}"
            )
        if counts.size and counts.min() < 0:
            raise DataValidationError(f"{label} counts must be non-negative")
    if real_counts.shape != synthetic_counts.shape:
        raise DataValidationError(
            f"count vectors must share one cell space, got {real_counts.shape} "
            f"vs {synthetic_counts.shape}"
        )
    n_real = float(real_counts.sum())
    n_synthetic = float(synthetic_counts.sum())
    if n_real <= 0 or n_synthetic <= 0:
        raise DataValidationError(
            f"need positive mass on both sides, got real={n_real}, "
            f"synthetic={n_synthetic}"
        )
    pooled = real_counts + synthetic_counts
    occupied = pooled > 0
    total = n_real + n_synthetic
    c = n_synthetic / total
    propensity = synthetic_counts[occupied] / pooled[occupied]
    pmse = float((pooled[occupied] * (propensity - c) ** 2).sum() / total)
    df = int(occupied.sum()) - 1
    return PMSEScore(
        pmse=pmse,
        null_pmse=expected_null_pmse(n_real, n_synthetic, df),
        n_real=n_real,
        n_synthetic=n_synthetic,
        n_cells=int(occupied.sum()),
    )


def _panel_alphabet(panel) -> int:
    """Alphabet size of a panel: ``alphabet`` attribute or binary."""
    return int(getattr(panel, "alphabet", 2))


def panel_window_codes(panel, t: int, width: int) -> np.ndarray:
    """Per-record feature codes: the length-``width`` window ending at ``t``.

    Works on any panel exposing ``window_codes(t, k)`` —
    :class:`~repro.data.dataset.LongitudinalDataset` and
    :class:`~repro.data.categorical.CategoricalDataset` alike.  The
    effective width is clipped to ``t`` (a window cannot predate the
    stream).

    Parameters
    ----------
    panel:
        The panel to featurize.
    t:
        Evaluation round, 1-indexed, ``1 <= t <= panel.horizon``.
    width:
        Requested window width (positive; clipped to ``t``).

    Returns
    -------
    numpy.ndarray
        1-D integer codes in ``[0, alphabet**w)`` with
        ``w = min(width, t)``.
    """
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    if not 1 <= t <= panel.horizon:
        raise ConfigurationError(
            f"t must lie in [1, {panel.horizon}], got {t}"
        )
    return np.asarray(panel.window_codes(t, min(int(width), int(t))))


def panel_hamming_codes(panel, t: int) -> np.ndarray:
    """Per-record feature codes: the Hamming weight of rounds ``1..t``.

    The cumulative synthesizer (Algorithm 2) releases data that preserves
    the *distribution of cumulative weights*, not window patterns, so its
    releases are scored in this feature space: one code per record, equal
    to the number of 1-rounds among the first ``t`` columns (an integer
    in ``[0, t]``).  Binary panels only.

    Parameters
    ----------
    panel:
        A binary panel exposing ``hamming_weights(t)``.
    t:
        Evaluation round, 1-indexed, ``1 <= t <= panel.horizon``.

    Returns
    -------
    numpy.ndarray
        1-D integer codes in ``[0, t]``, one per record.
    """
    if not 1 <= t <= panel.horizon:
        raise ConfigurationError(f"t must lie in [1, {panel.horizon}], got {t}")
    weights = getattr(panel, "hamming_weights", None)
    if weights is None:
        raise ConfigurationError(
            f"{type(panel).__name__} has no hamming_weights; Hamming "
            "features need a binary panel"
        )
    return np.asarray(weights(int(t)))


def pmse_panels(real_panel, synthetic_panel, t: int, width: int) -> PMSEScore:
    """pMSE between a real panel at round ``t`` and a synthetic panel.

    Featurizes both sides by their most recent window patterns and scores
    them with :func:`propensity_pmse`.  The synthetic panel is read at its
    own final round (releases return the round-``t`` prefix; per-round
    density samples are ``window``-wide panels), and the effective width
    is the largest one both sides support.

    Parameters
    ----------
    real_panel:
        Ground-truth panel (binary or categorical).
    synthetic_panel:
        The release's synthetic panel for round ``t``.
    t:
        Evaluation round on the real panel (1-indexed).
    width:
        Requested feature-window width; clipped to what both panels
        cover.

    Returns
    -------
    PMSEScore
        The score at round ``t``.
    """
    q_real = _panel_alphabet(real_panel)
    q_synthetic = _panel_alphabet(synthetic_panel)
    if q_real != q_synthetic:
        raise DataValidationError(
            f"alphabet mismatch: real panel has q={q_real}, "
            f"synthetic has q={q_synthetic}"
        )
    w = min(int(width), int(t), int(synthetic_panel.horizon))
    real_codes = panel_window_codes(real_panel, t, w)
    synthetic_codes = panel_window_codes(
        synthetic_panel, min(int(t), int(synthetic_panel.horizon)), w
    )
    return propensity_pmse(real_codes, synthetic_codes, n_cells=q_real**w)


def _release_panel(release, t: int):
    """The synthetic panel a release exposes for round ``t``.

    Every built-in release type — both algorithms, all baselines — spells
    this ``synthetic_data(t)``; it is the one pMSE-scoring requirement
    beyond the :class:`~repro.types.Release` protocol.
    """
    try:
        view = release.synthetic_data
    except AttributeError:
        raise ConfigurationError(
            f"release {type(release).__name__} exposes no synthetic_data(t); "
            "cannot score it with pMSE"
        ) from None
    return view(t)


def pmse_release(
    real_panel, release, t: int, width: int, features: str = "window"
) -> PMSEScore:
    """Padding-aware pMSE of a release's round-``t`` synthetic panel.

    Like :func:`pmse_panels`, but reads the panel off the release and —
    when the release advertises a public
    :class:`~repro.core.padding.PaddingSpec` — scores it against the
    *padded* truth: the declared contribution (``n_pad * q**(k - w)``
    records per width-``w`` cell) is added to the real histogram before
    the propensity fit, because truth-plus-padding is exactly the
    distribution a padded release is built to match.  This mirrors the
    paper's §3.2 estimator, which treats the padding as a public offset;
    crucially it needs no clamping, so the score stays an unbiased read
    of noise and consistency defects.  (Subtracting the padding from the
    synthetic side instead would force a clamp at zero — re-introducing
    the very §3.1 clamping bias the padding is designed to avoid.)
    Releases without padding (the clamping baseline, density samples, the
    oracle) are scored on their raw histograms.

    Parameters
    ----------
    real_panel:
        Ground-truth panel the release is scored against.
    release:
        Any release exposing ``synthetic_data(t)`` or ``panel(t)``.
    t:
        Evaluation round on the real panel (1-indexed).
    width:
        Requested feature-window width; clipped to what both sides cover
        (ignored for Hamming features).
    features:
        Feature space: ``"window"`` (length-``width`` pattern codes, the
        default) or ``"hamming"`` (cumulative-weight codes via
        :func:`panel_hamming_codes` — the space Algorithm 2 preserves).

    Returns
    -------
    PMSEScore
        The score at round ``t``.
    """
    if features not in ("window", "hamming"):
        raise ConfigurationError(
            f"features must be 'window' or 'hamming', got {features!r}"
        )
    synthetic = _release_panel(release, t)
    q = _panel_alphabet(real_panel)
    if q != _panel_alphabet(synthetic):
        raise DataValidationError(
            f"alphabet mismatch: real panel has q={q}, "
            f"synthetic has q={_panel_alphabet(synthetic)}"
        )
    t_synthetic = min(int(t), int(synthetic.horizon))
    padding = getattr(release, "padding", None)
    if callable(padding):  # per-round specs (the recompute baseline)
        padding = padding(t)
    n_pad = int(getattr(padding, "n_pad", 0) or 0)
    if features == "hamming":
        real_codes = panel_hamming_codes(real_panel, t)
        synthetic_codes = panel_hamming_codes(synthetic, t_synthetic)
        n_cells = int(t) + 1
        real_counts = np.bincount(real_codes, minlength=n_cells).astype(np.float64)
        synthetic_counts = np.bincount(
            synthetic_codes, minlength=n_cells
        ).astype(np.float64)
        if n_pad:
            pad_codes = panel_hamming_codes(
                padding.panel, min(int(t), padding.horizon)
            )
            real_counts += np.bincount(pad_codes, minlength=n_cells)[:n_cells]
        return propensity_pmse_counts(real_counts, synthetic_counts)
    w = min(int(width), int(t), int(synthetic.horizon))
    real_codes = panel_window_codes(real_panel, t, w)
    synthetic_codes = panel_window_codes(synthetic, t_synthetic, w)
    real_counts = np.bincount(real_codes, minlength=q**w).astype(np.float64)
    synthetic_counts = np.bincount(synthetic_codes, minlength=q**w).astype(
        np.float64
    )
    if n_pad and w <= padding.window:
        real_counts += float(n_pad) * float(padding.alphabet) ** (
            padding.window - w
        )
    return propensity_pmse_counts(real_counts, synthetic_counts)


class PMSEProbe(Query):
    """A pMSE scorer disguised as a query for the replication harness.

    :func:`~repro.analysis.replication.replicate_synthesizer` records a
    ``(query, time)`` answer grid; this probe occupies one query row whose
    "answer" is the release's pMSE ratio at each round (computed by
    :func:`utility_answer`) and whose "truth" is 0 — the score of a
    perfect release, since the real data against itself has pMSE exactly
    0.  Replicated pMSE frontiers therefore reuse the exact machinery
    (seeding, strategies, process pools) that produces the paper figures.

    Parameters
    ----------
    panel:
        The ground-truth panel the releases are scored against.
    width:
        Feature-window width passed to :func:`pmse_release`.
    name:
        Row label in the replicated answer grid.
    features:
        Feature space (``"window"`` or ``"hamming"``), see
        :func:`pmse_release`.
    """

    def __init__(
        self,
        panel,
        width: int,
        name: str = "pmse_ratio",
        features: str = "window",
    ):
        if width <= 0:
            raise ConfigurationError(f"width must be positive, got {width}")
        if features not in ("window", "hamming"):
            raise ConfigurationError(
                f"features must be 'window' or 'hamming', got {features!r}"
            )
        self.panel = panel
        self.width = int(width)
        self.name = str(name)
        self.features = str(features)

    def min_time(self) -> int:
        """Defined from round 1 (the width clips itself to ``t``)."""
        return 1

    def evaluate(self, dataset, t: int) -> float:
        """Ground truth of the probe: a perfect release scores 0."""
        self.check_time(t)
        return 0.0

    def score(self, release, t: int) -> float:
        """Padding-aware pMSE ratio of the round-``t`` synthetic panel."""
        return pmse_release(
            self.panel, release, t, self.width, features=self.features
        ).ratio


def utility_answer(release, query, t: int, debias: bool) -> float:
    """Answer dispatch for :func:`replicate_synthesizer` utility runs.

    :class:`PMSEProbe` rows are scored against the release's synthetic
    panel; every other query goes through the default release dispatch
    (module-level so forked process workers inherit it).

    Parameters
    ----------
    release:
        The per-repetition release object.
    query:
        The grid row being answered (a probe or a regular query).
    t:
        Evaluation round.
    debias:
        Passed through to window releases for regular queries.
    """
    if isinstance(query, PMSEProbe):
        return query.score(release, t)
    from repro.analysis.replication import _default_answer

    return _default_answer(release, query, t, debias)


def _utility_answer_grid(release, queries, times, debias) -> np.ndarray:
    """Whole-grid dispatch for utility runs (``utility_answer.answer_grid``).

    Regular query rows compile through
    :func:`repro.queries.plan.release_answer_grid` as one batch;
    :class:`PMSEProbe` rows are scored per round on the synthetic panel
    (the scorer reads records, not histograms, so there is nothing to
    compile).  Bit-identical with looping :func:`utility_answer`.
    """
    out = np.full((len(queries), len(times)), np.nan, dtype=np.float64)
    regular = [qi for qi, q in enumerate(queries) if not isinstance(q, PMSEProbe)]
    if regular:
        out[regular] = release_answer_grid(
            release, [queries[qi] for qi in regular], times, debias=debias
        )
    for qi, query in enumerate(queries):
        if isinstance(query, PMSEProbe):
            for ti, t in enumerate(times):
                if t >= query.min_time():
                    out[qi, ti] = query.score(release, t)
    return out


utility_answer.answer_grid = _utility_answer_grid


@dataclass(frozen=True)
class UtilityReport:
    """Replicated utility scores of one synthesizer on one workload.

    Attributes
    ----------
    label:
        Scenario label (algorithm / baseline name).
    grid:
        The full replicated answer grid: regular query rows first, then
        one :class:`PMSEProbe` row per probe.
    query_names:
        Names of the regular (accuracy-metric) query rows.
    probe_names:
        Names of the pMSE probe rows.
    """

    label: str
    grid: ReplicatedAnswers
    query_names: tuple[str, ...]
    probe_names: tuple[str, ...]

    def _row(self, name: str) -> int:
        try:
            return self.grid.query_names.index(name)
        except ValueError:
            raise ConfigurationError(
                f"unknown row {name!r}; grid has {self.grid.query_names}"
            ) from None

    def pmse_ratios(self, probe: str | None = None) -> np.ndarray:
        """The ``(n_reps, n_times)`` pMSE-ratio samples of one probe row.

        Parameters
        ----------
        probe:
            Probe row name; defaults to the first (usually only) probe.
        """
        if not self.probe_names:
            raise ConfigurationError(f"report {self.label!r} has no pMSE probe")
        return self.grid.answers[:, self._row(probe or self.probe_names[0]), :]

    @property
    def mean_pmse_ratio(self) -> float:
        """Mean pMSE ratio over repetitions and evaluated rounds."""
        return float(np.nanmean(self.pmse_ratios()))

    @property
    def final_pmse_ratio(self) -> float:
        """Mean pMSE ratio at the last evaluated round."""
        return float(np.nanmean(self.pmse_ratios()[:, -1]))

    def query_rmse(self, name: str | None = None) -> float:
        """RMSE of one query row against its ground truth, over all cells.

        Parameters
        ----------
        name:
            Query row name; defaults to the first regular query.
        """
        if not self.query_names:
            raise ConfigurationError(f"report {self.label!r} has no query rows")
        row = self._row(name or self.query_names[0])
        answers = self.grid.answers[:, row, :]
        truth = np.broadcast_to(self.grid.truth[row][None, :], answers.shape)
        defined = ~np.isnan(truth)
        return rmse(answers[defined], truth[defined])

    def query_max_abs_error(self, name: str | None = None) -> float:
        """Worst absolute error of one query row over reps and rounds.

        Parameters
        ----------
        name:
            Query row name; defaults to the first regular query.
        """
        if not self.query_names:
            raise ConfigurationError(f"report {self.label!r} has no query rows")
        row = self._row(name or self.query_names[0])
        answers = self.grid.answers[:, row, :]
        truth = np.broadcast_to(self.grid.truth[row][None, :], answers.shape)
        defined = ~np.isnan(truth)
        return max_abs_error(answers[defined], truth[defined])


def score_synthesizer(
    factory: Callable[[np.random.Generator], object],
    panel,
    queries: Sequence[Query],
    times: Sequence[int],
    n_reps: int,
    seed: SeedLike = None,
    *,
    width: int = 3,
    features: str = "window",
    label: str = "synthesizer",
    debias: bool = True,
    strategy: str | None = None,
    n_jobs: int | None = None,
) -> UtilityReport:
    """Replicated utility scoring of one synthesizer factory.

    Runs ``n_reps`` independent repetitions through
    :func:`~repro.analysis.replication.replicate_synthesizer` with a
    :class:`PMSEProbe` appended to the query list, so one pass yields
    both the accuracy metrics (rmse / max-abs against ground truth) and
    the distributional pMSE frontier.

    Parameters
    ----------
    factory:
        Per-repetition synthesizer factory (receives a child generator).
    panel:
        Ground-truth panel; also the pMSE reference.
    queries:
        Regular accuracy queries to record alongside the probe.
    times:
        Evaluation rounds.
    n_reps:
        Repetitions.
    seed:
        Master seed for the replication harness.
    width:
        pMSE feature-window width (see :func:`pmse_release`).
    features:
        pMSE feature space (``"window"`` or ``"hamming"``).
    label:
        Scenario label stored on the report.
    debias:
        Passed to window releases for the regular queries.
    strategy, n_jobs:
        Replication strategy knobs (the probe disables the batched fast
        path, so runs execute serially or on the process pool).

    Returns
    -------
    UtilityReport
        Accuracy and pMSE scores over the replicated runs.
    """
    probe = PMSEProbe(panel, width, features=features)
    grid = replicate_synthesizer(
        factory,
        panel,
        [*queries, probe],
        times,
        n_reps,
        seed=seed,
        debias=debias,
        answer_fn=utility_answer,
        strategy=strategy,
        n_jobs=n_jobs,
    )
    return UtilityReport(
        label=str(label),
        grid=grid,
        query_names=tuple(q.name for q in queries),
        probe_names=(probe.name,),
    )
