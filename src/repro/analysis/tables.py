"""Plain-text rendering of experiment results.

The paper's evaluation consists of figures; this reproduction prints the
same information as aligned text tables — one row per x-value with ground
truth, median, and the 2.5/97.5 percentile band — so benchmark output can
be compared against the figures line by line.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.metrics import SeriesSummary

__all__ = ["render_series_table", "render_comparison_table"]


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def render_series_table(
    summary: SeriesSummary,
    x_label: str = "t",
    value_format: str = "{:.4f}",
    extra_columns: dict[str, np.ndarray] | None = None,
) -> str:
    """Render one summarized series as an aligned table.

    Columns: x, truth, median, p2.5, p97.5, mean, plus any extra columns
    (e.g. a theoretical bound line).
    """
    headers = [x_label, "truth", "median", "p2.5", "p97.5", "mean"]
    columns = [
        [f"{int(v)}" if float(v).is_integer() else f"{v:g}" for v in summary.x],
        [value_format.format(v) for v in summary.truth],
        [value_format.format(v) for v in summary.median],
        [value_format.format(v) for v in summary.lower],
        [value_format.format(v) for v in summary.upper],
        [value_format.format(v) for v in summary.mean],
    ]
    for name, values in (extra_columns or {}).items():
        headers.append(name)
        columns.append([value_format.format(v) for v in np.asarray(values)])

    widths = [
        max(len(header), max((len(cell) for cell in column), default=0))
        for header, column in zip(headers, columns)
    ]
    lines = [f"== {summary.label} =="]
    lines.append(_format_row(headers, widths))
    lines.append(_format_row(["-" * w for w in widths], widths))
    for row_index in range(len(summary.x)):
        lines.append(
            _format_row([column[row_index] for column in columns], widths)
        )
    return "\n".join(lines)


def render_comparison_table(
    rows: Sequence[dict],
    columns: Sequence[str],
    title: str = "",
    value_format: str = "{:.4f}",
) -> str:
    """Render a list of result dicts as an aligned table.

    Used by the ablation benchmarks (one row per counter / padding level /
    budget split).  Non-numeric values are stringified as-is.
    """
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(value_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(column), max((len(row[i]) for row in rendered), default=0))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(_format_row(columns, widths))
    lines.append(_format_row(["-" * w for w in widths], widths))
    for cells in rendered:
        lines.append(_format_row(cells, widths))
    return "\n".join(lines)
