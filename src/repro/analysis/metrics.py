"""Error metrics and distribution summaries for replicated experiments.

The paper's figures show, per query and time point, the empirical
distribution of the private answers across 1000 repetitions against the
ground truth ("X's indicate the ground truth").  :class:`SeriesSummary`
captures the same information numerically: median, 2.5 and 97.5 percentiles
(the dotted lines of Figures 3/4), mean, and the ground-truth series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["max_abs_error", "bias", "rmse", "percentile_bands", "SeriesSummary"]


def _validated_pair(estimates, truth, metric: str) -> tuple[np.ndarray, np.ndarray]:
    """Coerce and validate an (estimates, truth) metric input pair.

    Empty estimates have no well-defined error (silently returning 0.0
    would let an accuracy regression that produces *no* answers pass a
    gate), and shape-incompatible inputs would either raise a bare NumPy
    broadcast error or, worse, broadcast to something unintended.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimates.size == 0:
        raise ConfigurationError(
            f"{metric} needs at least one estimate; got an empty array "
            "(an empty answer grid is a bug, not a zero-error run)"
        )
    try:
        np.broadcast_shapes(estimates.shape, truth.shape)
    except ValueError:
        raise ConfigurationError(
            f"{metric}: estimates shape {estimates.shape} is not "
            f"broadcast-compatible with truth shape {truth.shape}"
        ) from None
    return estimates, truth


def max_abs_error(estimates: np.ndarray, truth: np.ndarray) -> float:
    """Worst-case absolute error over all entries.

    Parameters
    ----------
    estimates:
        Non-empty array of released answers.
    truth:
        Ground truth, broadcast-compatible with ``estimates``.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``estimates`` is empty or the shapes are incompatible.
    """
    estimates, truth = _validated_pair(estimates, truth, "max_abs_error")
    return float(np.max(np.abs(estimates - truth)))


def bias(estimates: np.ndarray, truth: float) -> float:
    """Mean signed deviation of replicated estimates from the truth.

    Parameters
    ----------
    estimates:
        Non-empty array of released answers.
    truth:
        Ground truth (scalar, or broadcast-compatible array).

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``estimates`` is empty or the shapes are incompatible.
    """
    estimates, truth = _validated_pair(estimates, truth, "bias")
    return float(np.mean(estimates - truth))


def rmse(estimates: np.ndarray, truth: float) -> float:
    """Root mean squared error of replicated estimates.

    Parameters
    ----------
    estimates:
        Non-empty array of released answers.
    truth:
        Ground truth (scalar, or broadcast-compatible array).

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``estimates`` is empty or the shapes are incompatible.
    """
    estimates, truth = _validated_pair(estimates, truth, "rmse")
    return float(np.sqrt(np.mean((estimates - truth) ** 2)))


def percentile_bands(
    samples: np.ndarray, percentiles: tuple[float, ...] = (2.5, 50.0, 97.5)
) -> np.ndarray:
    """Percentiles along the replication axis (axis 0).

    Returns an array of shape ``(len(percentiles), *samples.shape[1:])`` —
    with the default percentiles: lower band, median, upper band, matching
    the dotted/solid lines of Figures 3/4.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim < 1 or samples.shape[0] == 0:
        raise ConfigurationError("samples must have at least one replication")
    return np.percentile(samples, percentiles, axis=0)


@dataclass(frozen=True)
class SeriesSummary:
    """Distribution of a replicated series against its ground truth.

    All arrays share the length of ``x`` (the series index — time steps or
    quarters).

    Attributes
    ----------
    x:
        Series index (time steps or quarters).
    truth:
        Ground-truth value per index, evaluated on the raw panel.
    median, lower, upper:
        Replication median and band quantiles per index.
    mean:
        Replication mean per index.
    label:
        Display label for tables and reports.
    """

    x: np.ndarray
    truth: np.ndarray
    median: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    mean: np.ndarray
    label: str = field(default="series")

    @classmethod
    def from_samples(
        cls,
        x,
        samples: np.ndarray,
        truth,
        label: str = "series",
        band: tuple[float, float] = (2.5, 97.5),
    ) -> "SeriesSummary":
        """Summarize ``samples`` of shape ``(n_reps, len(x))``."""
        x = np.asarray(x, dtype=np.float64)
        samples = np.asarray(samples, dtype=np.float64)
        truth = np.asarray(truth, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[1] != x.shape[0]:
            raise ConfigurationError(
                f"samples must have shape (n_reps, {x.shape[0]}), got {samples.shape}"
            )
        if truth.shape != x.shape:
            raise ConfigurationError(
                f"truth must have shape {x.shape}, got {truth.shape}"
            )
        lower, median, upper = np.percentile(samples, [band[0], 50.0, band[1]], axis=0)
        return cls(
            x=x,
            truth=truth,
            median=median,
            lower=lower,
            upper=upper,
            mean=samples.mean(axis=0),
            label=label,
        )

    @property
    def max_median_error(self) -> float:
        """Worst deviation of the median series from the truth."""
        return float(np.max(np.abs(self.median - self.truth)))

    @property
    def max_mean_bias(self) -> float:
        """Worst absolute bias of the mean series."""
        return float(np.max(np.abs(self.mean - self.truth)))

    def covers_truth(self) -> np.ndarray:
        """Boolean per point: does the band contain the ground truth?"""
        return (self.lower <= self.truth) & (self.truth <= self.upper)
