"""Closed-form accuracy bounds from the paper.

Every bound is implemented exactly as stated (constants included) so that
benchmarks can draw the same dashed "theoretical bound" lines as Figures 3/4
and tests can check that observed errors stay below them at the stated
confidence.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError

__all__ = [
    "theorem_3_2_bound",
    "default_n_pad",
    "corollary_3_3_relative_bound",
    "debiased_error_bound",
    "tree_levels",
    "tree_counter_error_bound",
    "corollary_b1_weights_unnormalized",
    "corollary_b1_alpha",
]


def _check_window_params(horizon: int, window: int, rho: float, beta: float) -> None:
    if window <= 0 or horizon <= 0 or window > horizon:
        raise ConfigurationError(
            f"need 1 <= window <= horizon, got window={window}, horizon={horizon}"
        )
    if rho <= 0:
        raise ConfigurationError(f"rho must be positive, got {rho}")
    if not 0 < beta < 1:
        raise ConfigurationError(f"beta must lie in (0, 1), got {beta}")


def theorem_3_2_bound(
    horizon: int, window: int, rho: float, beta: float, alphabet: int = 2
) -> float:
    """Max additive count error of Algorithm 1 (Theorem 3.2, eq. 5).

    With probability at least ``1 - beta``,

        max_{s,t} |p_s^t - (C_s^t + n_pad)|
            <= (sqrt((T-k+1)/rho) + 1/sqrt(2))
               * sqrt(log(2^k (T-k+1) / beta)).

    ``alphabet`` generalizes the union bound from ``2**k`` to ``q**k`` bins
    for the categorical extension (the rounding-term constant ``1/sqrt(2)``
    is kept as a conservative heuristic for ``q > 2``, where the residue
    rounding spreads at most ``q - 1`` units across ``q`` children).
    """
    _check_window_params(horizon, window, rho, beta)
    if alphabet < 2:
        raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
    steps = horizon - window + 1
    log_term = math.log((alphabet**window) * steps / beta)
    return (math.sqrt(steps / rho) + 1.0 / math.sqrt(2.0)) * math.sqrt(log_term)


def default_n_pad(
    horizon: int, window: int, rho: float, beta: float, alphabet: int = 2
) -> int:
    """Padding per bin guaranteeing non-negative counts w.p. ``1 - beta``.

    Theorem 3.2: as long as ``n_pad`` is at least the error bound, all noisy
    counts stay non-negative and the algorithm succeeds.  Rounded up to an
    integer because padding is a number of fake people.
    """
    return math.ceil(theorem_3_2_bound(horizon, window, rho, beta, alphabet=alphabet))


def corollary_3_3_relative_bound(
    horizon: int,
    window: int,
    rho: float,
    beta: float,
    n: int,
    true_fraction: float,
) -> float:
    """Relative (fraction-scale) error bound without debiasing (Cor. 3.3).

    Uses the explicit form from the corollary's proof:
    ``2 lambda / n + 2^(k+1) lambda / n * (C_s^t / n)`` with ``lambda`` the
    Theorem 3.2 bound.  The second term is the padding-induced bias on the
    biased estimator ``p_s^t / n*``; debiasing removes it (see
    :func:`debiased_error_bound`).
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if not 0.0 <= true_fraction <= 1.0:
        raise ConfigurationError(f"true_fraction must lie in [0,1], got {true_fraction}")
    lam = theorem_3_2_bound(horizon, window, rho, beta)
    return 2.0 * lam / n + (2 ** (window + 1)) * lam / n * true_fraction


def debiased_error_bound(horizon: int, window: int, rho: float, beta: float, n: int) -> float:
    """Fraction-scale error bound after the debiasing step (§3.2).

    ``max_{s,t} |(p_s^t - n_pad) - C_s^t| / n`` is at most the Theorem 3.2
    count bound divided by ``n``.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    return theorem_3_2_bound(horizon, window, rho, beta) / n


def tree_levels(length: int) -> int:
    """Dyadic levels for a stream of the given length: ``max(ceil_log2, 1)``.

    Matches the paper's ``max(ceil(log2(T - b + 1)), 1)`` convention.
    """
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length}")
    return max(math.ceil(math.log2(length)), 1) if length > 1 else 1


def tree_counter_error_bound(
    horizon: int, rho: float, beta: float, t: int | None = None
) -> float:
    """Error bound of the tree-based counter (Theorem A.2 / Appendix B form).

    ``|S~_t - S_t| <= ceil(log2 t) * sqrt(ceil(log2 T) / rho * log(1/beta))``
    with each logarithm clamped below by 1.
    """
    if rho <= 0:
        raise ConfigurationError(f"rho must be positive, got {rho}")
    if not 0 < beta < 1:
        raise ConfigurationError(f"beta must lie in (0, 1), got {beta}")
    t = horizon if t is None else t
    levels_t = tree_levels(t)
    levels_horizon = tree_levels(horizon)
    return levels_t * math.sqrt(levels_horizon / rho * math.log(1.0 / beta))


def corollary_b1_weights_unnormalized(horizon: int) -> list[int]:
    """Per-threshold budget weights ``max(ceil(log2(T-b+1)), 1)^3``.

    Indexed by ``b - 1`` for ``b = 1, ..., T``.  Corollary B.1 allocates
    ``rho_b`` proportional to these cubes so every counter's worst-case
    bound is equalized.
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    return [tree_levels(horizon - b + 1) ** 3 for b in range(1, horizon + 1)]


def corollary_b1_alpha(horizon: int, rho: float, beta: float, n: int) -> float:
    """Fraction-scale accuracy of Algorithm 2 with tree counters (Cor. B.1).

    ``alpha* = (1/n) sqrt( sum_b max(ceil(log2(T-b+1)),1)^3 / rho * log(1/beta) )``
    holding with probability at least ``1 - T * beta``.
    """
    if rho <= 0:
        raise ConfigurationError(f"rho must be positive, got {rho}")
    if not 0 < beta < 1:
        raise ConfigurationError(f"beta must lie in (0, 1), got {beta}")
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    total = sum(corollary_b1_weights_unnormalized(horizon))
    return math.sqrt(total / rho * math.log(1.0 / beta)) / n
