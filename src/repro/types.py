"""The public interface contracts: value types and structural protocols.

Two layers live here:

* :class:`AttributeFrame` — the **value type** of one round of
  multi-attribute reports: an ``(n, d)`` matrix (one row per individual,
  one column per attribute) plus the attribute names.  Single-attribute
  callers never need to build one — every ``observe`` accepts a plain
  1-D column and wraps it — but the frame is what flows through the
  serving stack (sharded row-splitting, shared-memory staging) when
  ``d >= 2``.
* The **structural protocols**: :class:`Synthesizer` (the full modern
  surface — ``observe`` / ``run`` / ``release`` / ``config_dict`` /
  ``state_dict``) and :class:`Release` (scalar ``answer`` plus the
  batched ``answer_batch`` workload surface).  Third parties can
  implement their own synthesizers or release objects and use them with
  the replication harness, the serving layer, and the experiment
  machinery, as long as they satisfy these protocols; the conformance
  test suite asserts that every built-in class does.

The pre-PR-9 protocols (``SynthesizerProtocol``, keyed on the removed
``observe_column`` spelling, and ``ReleaseProtocol``) are gone along
with the deprecation shims — their one-release migration window is up.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError

__all__ = [
    "AttributeFrame",
    "as_frame",
    "Synthesizer",
    "Release",
    "StreamCounterProtocol",
]


def _default_names(width: int) -> tuple[str, ...]:
    """Positional attribute names used when the caller provides none."""
    return tuple(f"attr{i}" for i in range(width))


class AttributeFrame:
    """One round of multi-attribute reports: an ``(n, d)`` matrix + names.

    The frame is deliberately a single C-contiguous integer matrix rather
    than a mapping of columns: row operations (sharded splitting, churn
    routing, shared-memory staging) become one fancy-index or slice, and
    the flattened buffer ships through the process executor's staging
    segments exactly like a single column does.

    Parameters
    ----------
    data:
        ``(n, d)`` integer matrix — or a 1-D length-``n`` vector, treated
        as a single-attribute ``(n, 1)`` frame.
    names:
        Attribute names, one per column (default ``attr0, attr1, ...``).

    Raises
    ------
    repro.exceptions.DataValidationError
        If the matrix is not 1-D/2-D or the name count mismatches.
    """

    __slots__ = ("_data", "_names")

    def __init__(self, data, names: Sequence[str] | None = None):
        arr = np.asarray(data)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2:
            raise DataValidationError(
                f"frame data must be 1-D or (n, d), got shape {arr.shape}"
            )
        if arr.shape[1] == 0:
            raise DataValidationError("frame needs at least one attribute column")
        self._data = np.ascontiguousarray(arr)
        if names is None:
            self._names = _default_names(arr.shape[1])
        else:
            self._names = tuple(str(name) for name in names)
        if len(self._names) != self._data.shape[1]:
            raise DataValidationError(
                f"{len(self._names)} names for {self._data.shape[1]} columns"
            )
        if len(set(self._names)) != len(self._names):
            raise DataValidationError(f"attribute names must be unique: {self._names}")

    @property
    def names(self) -> tuple[str, ...]:
        """The attribute names, in column order."""
        return self._names

    @property
    def data(self) -> np.ndarray:
        """The underlying C-contiguous ``(n, d)`` matrix."""
        return self._data

    @property
    def n(self) -> int:
        """Number of reporting individuals (rows)."""
        return int(self._data.shape[0])

    @property
    def width(self) -> int:
        """Number of attributes ``d`` (columns)."""
        return int(self._data.shape[1])

    def column(self, name) -> np.ndarray:
        """One attribute's report vector, by name or column index.

        Parameters
        ----------
        name:
            Attribute name (string) or 0-based column index.

        Returns
        -------
        numpy.ndarray
            A 1-D view of that attribute's column.
        """
        if isinstance(name, str):
            try:
                index = self._names.index(name)
            except ValueError:
                raise ConfigurationError(
                    f"unknown attribute {name!r}; frame has {self._names}"
                ) from None
        else:
            index = int(name)
            if not 0 <= index < self.width:
                raise ConfigurationError(
                    f"column index {index} outside [0, {self.width})"
                )
        return self._data[:, index]

    def sole(self) -> np.ndarray:
        """The single column of a width-1 frame (the 1-D compatibility view).

        Raises
        ------
        repro.exceptions.DataValidationError
            If the frame holds more than one attribute.
        """
        if self.width != 1:
            raise DataValidationError(
                f"expected a single-attribute frame, got {self.width} "
                f"attributes {self._names}"
            )
        return self._data[:, 0]

    def take(self, indices) -> "AttributeFrame":
        """A new frame holding the given rows (in the given order).

        Parameters
        ----------
        indices:
            Row indices (any integer index array or slice).

        Returns
        -------
        AttributeFrame
            The selected rows with the same attribute names.
        """
        return AttributeFrame(self._data[indices], self._names)

    @classmethod
    def from_columns(cls, columns: Mapping[str, np.ndarray]) -> "AttributeFrame":
        """Build a frame from a ``name -> column`` mapping (insertion order).

        Parameters
        ----------
        columns:
            Equal-length 1-D report vectors keyed by attribute name.

        Returns
        -------
        AttributeFrame
            The stacked ``(n, d)`` frame.
        """
        if not columns:
            raise DataValidationError("from_columns needs at least one column")
        names = tuple(columns)
        stacked = np.column_stack([np.asarray(columns[name]) for name in names])
        return cls(stacked, names)

    def __eq__(self, other) -> bool:
        if not isinstance(other, AttributeFrame):
            return NotImplemented
        return (
            self._names == other._names
            and self._data.shape == other._data.shape
            and bool((self._data == other._data).all())
        )

    def __hash__(self):
        return hash((self._names, self._data.shape, self._data.tobytes()))

    def __repr__(self) -> str:
        return f"AttributeFrame(n={self.n}, attributes={list(self._names)})"


def as_frame(data, names: Sequence[str] | None = None) -> AttributeFrame:
    """Coerce observe-style input into an :class:`AttributeFrame`.

    Accepts a frame (returned unchanged — names, when given, are checked
    rather than re-applied), a ``name -> column`` mapping, or a plain
    1-D/2-D array (wrapped with ``names``).

    Parameters
    ----------
    data:
        An :class:`AttributeFrame`, a mapping of columns, or an array.
    names:
        Expected attribute names; applied to bare arrays and validated
        against frames/mappings.

    Returns
    -------
    AttributeFrame
        The coerced frame.

    Raises
    ------
    repro.exceptions.DataValidationError
        If an existing frame's or mapping's names don't match ``names``.
    """
    if isinstance(data, AttributeFrame):
        frame = data
    elif isinstance(data, Mapping):
        frame = AttributeFrame.from_columns(data)
    else:
        return AttributeFrame(data, names)
    if names is not None and frame.names != tuple(names):
        raise DataValidationError(
            f"frame attributes {frame.names} do not match expected {tuple(names)}"
        )
    return frame


@runtime_checkable
class Release(Protocol):
    """A released artifact that answers queries at released rounds.

    ``answer`` is the scalar path; ``answer_batch`` answers a whole
    workload as a ``(len(queries), len(times))`` float64 grid with
    ``NaN`` where ``t < query.min_time()``, **bit-identical** with the
    scalar loop.  Implementations may vectorize through
    :mod:`repro.queries.plan`; the scalar fallback
    :func:`repro.queries.plan.scalar_answer_grid` satisfies the
    contract for any release.
    """

    def answer(self, query, t: int, *args, **kwargs) -> float:
        """Answer a query at round ``t``."""
        ...

    def answer_batch(self, queries, times, *args, **kwargs) -> np.ndarray:
        """Answer a workload of queries at a set of rounds as one grid."""
        ...


@runtime_checkable
class Synthesizer(Protocol):
    """The full modern synthesizer surface (PR 9's unified protocol).

    ``observe`` is the canonical streaming entry point — it accepts a
    1-D column or an :class:`AttributeFrame` and threads churn through
    ``entrants=`` / ``exits=``; ``config_dict`` / ``state_dict`` are the
    checkpoint surface every serving layer builds on.
    """

    def observe(self, data, *, entrants: int = 0, exits=None) -> Release:
        """Consume one round of reports; return the release view."""
        ...

    def run(self, dataset) -> Release:
        """Batch driver over a whole panel."""
        ...

    @property
    def release(self) -> Release:
        """View of everything released so far."""
        ...

    def config_dict(self) -> dict:
        """JSON-able construction parameters (checkpoint ``config``)."""
        ...

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot of the mutable state (checkpoint ``state``)."""
        ...


@runtime_checkable
class StreamCounterProtocol(Protocol):
    """A private running-sum estimator pluggable into Algorithm 2."""

    def feed(self, z: int) -> float:
        """Consume one stream element; return the noisy running sum."""
        ...

    def run(self, stream: Iterable[int]) -> np.ndarray:
        """Feed an entire stream; return the noisy prefix sums."""
        ...

    def error_stddev(self, t: int) -> float:
        """Standard deviation of the estimate error at time ``t``."""
        ...
