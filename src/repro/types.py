"""Structural typing protocols for the public interfaces.

Third parties can implement their own synthesizers (e.g. around a different
single-shot generator) or release objects and use them with the replication
harness and experiment machinery, as long as they satisfy these protocols.
The test suite asserts that every built-in class does.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

import numpy as np

__all__ = ["SynthesizerProtocol", "ReleaseProtocol", "StreamCounterProtocol"]


@runtime_checkable
class ReleaseProtocol(Protocol):
    """A released artifact that answers queries at released rounds."""

    def answer(self, query, t: int, *args, **kwargs) -> float:
        """Answer a query at round ``t``."""
        ...


@runtime_checkable
class SynthesizerProtocol(Protocol):
    """A continual synthesizer consumable by the replication harness."""

    def observe_column(self, column) -> ReleaseProtocol:
        """Consume one round's report vector; return the release view."""
        ...

    def run(self, dataset) -> ReleaseProtocol:
        """Batch driver over a whole panel."""
        ...

    @property
    def release(self) -> ReleaseProtocol:
        """View of everything released so far."""
        ...


@runtime_checkable
class StreamCounterProtocol(Protocol):
    """A private running-sum estimator pluggable into Algorithm 2."""

    def feed(self, z: int) -> float:
        """Consume one stream element; return the noisy running sum."""
        ...

    def run(self, stream: Iterable[int]) -> np.ndarray:
        """Feed an entire stream; return the noisy prefix sums."""
        ...

    def error_stddev(self, t: int) -> float:
        """Standard deviation of the estimate error at time ``t``."""
        ...
