"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness used by the chaos test suites (``tests/serve/``) and the
``--chaos`` self-check of the serving demo: seedable injectors that
kill, hang, and delay shard workers, corrupt checkpoint bytes, truncate
journal tails, and starve shared-memory staging.  Nothing here is
needed for normal serving; it lives in the package (not in ``tests/``)
so the demo executable and external users can drive the same faults.
"""

from repro.testing.faults import FaultInjector, starve_shared_memory

__all__ = ["FaultInjector", "starve_shared_memory"]
