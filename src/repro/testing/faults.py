"""Deterministic, seedable fault injection for the serving layer.

Every injector is a plain function of explicit inputs (paths, shard
indices, a seeded RNG) so a chaos test that fails replays bit-for-bit
from its seed.  The harness targets the real failure surfaces of
:mod:`repro.serve`:

* **worker faults** — :meth:`FaultInjector.kill_worker` (SIGKILL, the
  "kill -9 mid-stream" of the acceptance criteria),
  :meth:`~FaultInjector.hang_worker` / :meth:`~FaultInjector.resume_worker`
  (SIGSTOP/SIGCONT — a hung-but-alive worker, which only an RPC timeout
  can detect), and :meth:`~FaultInjector.delay_worker` (a bounded stop);
* **storage faults** — :meth:`~FaultInjector.corrupt_bytes` (seeded
  byte flips anywhere in a checkpoint bundle or journal) and
  :meth:`~FaultInjector.truncate_tail` (torn writes);
* **resource faults** — :func:`starve_shared_memory`, a context manager
  that makes shared-memory segment *creation* fail with ``ENOSPC`` in
  the calling process (forked workers are unaffected, exactly like a
  full ``/dev/shm`` on the serving host).

The worker injectors require the ``"process"`` executor — with serial
or thread stepping there is no worker process to fault — and accept
either a :class:`~repro.serve.sharded.ShardedService` or a
:class:`~repro.serve.supervisor.SupervisedService`.
"""

from __future__ import annotations

import errno
import os
import signal
import time

import numpy as np

from repro.exceptions import ConfigurationError
from repro.serve.executor import ProcessShardExecutor

__all__ = ["FaultInjector", "starve_shared_memory"]


def _process_executor(service) -> ProcessShardExecutor:
    """Unwrap a (supervised) service down to its process executor."""
    inner = getattr(service, "service", service)  # SupervisedService -> inner
    executor = getattr(inner, "_executor", inner)
    if not isinstance(executor, ProcessShardExecutor):
        raise ConfigurationError(
            "worker fault injection needs the 'process' executor; "
            f"got strategy {getattr(executor, 'strategy', '?')!r}"
        )
    return executor


class starve_shared_memory:
    """Context manager: shared-memory creation fails with ``ENOSPC``.

    Patches ``multiprocessing.shared_memory.SharedMemory`` *in the
    calling process only* — already-forked workers keep their real
    binding, so the fault lands exactly where a full ``/dev/shm`` would:
    on the parent's staging-buffer growth.  Reentrant and exception-safe;
    the real class is restored on exit.

    Parameters
    ----------
    message:
        Text carried by the injected ``OSError`` (``errno.ENOSPC``).
    """

    def __init__(self, message: str = "fault injection: shared memory exhausted"):
        self._message = str(message)
        self._original = None

    def __enter__(self) -> "starve_shared_memory":
        from multiprocessing import shared_memory

        self._module = shared_memory
        self._original = shared_memory.SharedMemory
        message = self._message

        def _starved(*args, **kwargs):
            raise OSError(errno.ENOSPC, message)

        shared_memory.SharedMemory = _starved
        return self

    def __exit__(self, *exc_info) -> None:
        self._module.SharedMemory = self._original
        self._original = None


class FaultInjector:
    """Seeded source of worker, storage, and resource faults.

    Parameters
    ----------
    seed:
        Seeds the victim-selection and byte-corruption RNG, so a chaos
        scenario replays identically from its seed.

    Attributes
    ----------
    log:
        Chronological record of every injected fault (strings), so a
        failing chaos test prints exactly what was done to the service.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self.log: list[str] = []

    def pick_shard(self, n_shards: int) -> int:
        """Choose a victim shard uniformly (deterministic given the seed).

        Parameters
        ----------
        n_shards:
            Number of shards to choose among.
        """
        victim = int(self._rng.integers(n_shards))
        self.log.append(f"pick_shard({n_shards}) -> {victim}")
        return victim

    # ------------------------------------------------------------------
    # Worker faults (process executor only)
    # ------------------------------------------------------------------

    def kill_worker(self, service, shard: int) -> int:
        """SIGKILL shard ``shard``'s worker process (kill -9 mid-stream).

        Parameters
        ----------
        service:
            A ``ShardedService`` or ``SupervisedService`` running the
            ``"process"`` executor.
        shard:
            Victim shard index.

        Returns
        -------
        int
            The killed worker's pid.
        """
        process = _process_executor(service)._processes[shard]
        pid = process.pid
        os.kill(pid, signal.SIGKILL)
        process.join(timeout=10.0)
        self.log.append(f"kill_worker(shard={shard}, pid={pid})")
        return pid

    def hang_worker(self, service, shard: int) -> int:
        """SIGSTOP shard ``shard``'s worker: alive but unresponsive.

        The worker stops consuming RPCs without dying, so only an RPC
        timeout (``RetryPolicy.rpc_timeout``) can detect it — the
        liveness probe still sees a live process.  Pair with
        :meth:`resume_worker`, or rely on the kill-escalated teardown
        (SIGKILL terminates stopped processes; SIGTERM does not).

        Parameters
        ----------
        service:
            A service running the ``"process"`` executor.
        shard:
            Victim shard index.

        Returns
        -------
        int
            The stopped worker's pid.
        """
        pid = _process_executor(service)._processes[shard].pid
        os.kill(pid, signal.SIGSTOP)
        self.log.append(f"hang_worker(shard={shard}, pid={pid})")
        return pid

    def resume_worker(self, service, shard: int) -> None:
        """SIGCONT a worker previously stopped by :meth:`hang_worker`.

        Parameters
        ----------
        service:
            A service running the ``"process"`` executor.
        shard:
            The previously hung shard index.
        """
        process = _process_executor(service)._processes[shard]
        if process.pid is not None and process.is_alive():
            os.kill(process.pid, signal.SIGCONT)
        self.log.append(f"resume_worker(shard={shard})")

    def delay_worker(self, service, shard: int, seconds: float) -> None:
        """Stop a worker for ``seconds``, then resume it (a slow shard).

        Parameters
        ----------
        service:
            A service running the ``"process"`` executor.
        shard:
            Victim shard index.
        seconds:
            How long the worker stays stopped.
        """
        self.hang_worker(service, shard)
        try:
            time.sleep(seconds)
        finally:
            self.resume_worker(service, shard)
        self.log.append(f"delay_worker(shard={shard}, seconds={seconds})")

    # ------------------------------------------------------------------
    # Storage faults
    # ------------------------------------------------------------------

    def corrupt_bytes(
        self, path, n_bytes: int = 64, *, region: str = "tail"
    ) -> list[int]:
        """Flip ``n_bytes`` random bytes of a file in place.

        Parameters
        ----------
        path:
            File to damage (a checkpoint bundle, a journal, …).
        n_bytes:
            How many byte positions to XOR with a random non-zero mask.
        region:
            ``"tail"`` confines the damage to the final ``n_bytes``
            bytes (a torn trailing write — e.g. a zip central
            directory); ``"any"`` spreads it uniformly over the file.

        Returns
        -------
        list of int
            The corrupted byte offsets (sorted), for diagnostics.
        """
        path = os.fspath(path)
        size = os.path.getsize(path)
        if size == 0:
            return []
        n_bytes = min(int(n_bytes), size)
        if region == "tail":
            offsets = np.arange(size - n_bytes, size)
        elif region == "any":
            offsets = np.sort(
                self._rng.choice(size, size=n_bytes, replace=False)
            )
        else:
            raise ConfigurationError(
                f"region must be 'tail' or 'any', got {region!r}"
            )
        masks = self._rng.integers(1, 256, size=offsets.shape[0], dtype=np.uint8)
        with open(path, "r+b") as handle:
            for offset, mask in zip(offsets, masks):
                handle.seek(int(offset))
                byte = handle.read(1)[0]
                handle.seek(int(offset))
                handle.write(bytes([byte ^ int(mask)]))
        self.log.append(
            f"corrupt_bytes({os.path.basename(path)}, n={n_bytes}, region={region})"
        )
        return [int(offset) for offset in offsets]

    def truncate_tail(self, path, n_bytes: int) -> int:
        """Cut the final ``n_bytes`` bytes off a file (a torn write).

        Parameters
        ----------
        path:
            File to truncate (typically the release journal).
        n_bytes:
            Bytes to remove from the end (clamped to the file size).

        Returns
        -------
        int
            The file's new size.
        """
        path = os.fspath(path)
        size = os.path.getsize(path)
        new_size = max(0, size - int(n_bytes))
        os.truncate(path, new_size)
        self.log.append(
            f"truncate_tail({os.path.basename(path)}, cut={size - new_size})"
        )
        return new_size

    # ------------------------------------------------------------------
    # Resource faults
    # ------------------------------------------------------------------

    def starve_shared_memory(self) -> starve_shared_memory:
        """Context manager making shared-memory creation fail (ENOSPC).

        See :class:`starve_shared_memory`; provided as a method so chaos
        scripts can drive every fault through one injector object.
        """
        self.log.append("starve_shared_memory()")
        return starve_shared_memory()
