"""Online serving subsystem: incremental ingestion, durability, sharding.

The paper's model is *continual*: the curator observes one bit per
individual per round and must publish after every round.  This package is
the serving-side layer for that model, on top of the algorithm cores in
:mod:`repro.core`:

* :class:`~repro.serve.streaming.StreamingSynthesizer` — true-online
  ingestion: ``observe(data) -> Release`` for one ``(n,)`` report column
  (or multi-attribute :class:`~repro.types.AttributeFrame`) at a time
  (no panel up front), per-round releases bit-exact with the offline
  ``run()``.
* :meth:`~repro.serve.streaming.StreamingSynthesizer.checkpoint` /
  :meth:`~repro.serve.streaming.StreamingSynthesizer.restore` — durable
  state: the full mid-stream state (counter-bank arrays, threshold table,
  synthetic store, zCDP ledger, RNG bit-generator states) round-trips
  through a versioned, checksummed bundle, and a restored stream
  continues **byte-identically**, noise included.
* :class:`~repro.serve.sharded.ShardedService` — the multi-tenant
  scaling primitive: K independent shards over a partitioned population,
  per-shard budgets (parallel composition), merged query answers, and
  whole-service checkpointing.
* :mod:`repro.serve.executor` — how shards are stepped:
  :data:`~repro.serve.executor.EXECUTOR_STRATEGIES` (``"serial"``,
  ``"thread"``, ``"process"``), all byte-identical; the process strategy
  keeps each shard in a persistent forked worker and stages round
  columns through shared memory.
* :mod:`repro.serve.checkpoint` — the bundle format itself
  (``manifest.json`` + streamed ``arrays/<key>.npy`` members in one
  zip, SHA-256 integrity checks,
  :class:`~repro.exceptions.SerializationError` on corruption).
* :class:`~repro.serve.supervisor.SupervisedService` — the
  fault-tolerance layer: every published round is recorded in an
  append-only fsync'd :class:`~repro.serve.journal.ReleaseJournal`
  before it is acknowledged, the service checkpoints itself
  periodically, and crash recovery *replays* the journal tail
  byte-identically (never re-noising a published release), driven by
  the knobs of a :class:`~repro.serve.policy.RetryPolicy`.

See the "serving", "scaling out", "checkpoint format", and "fault
tolerance" pages of the docs site (``docs/``) for a guided tour.
"""

from repro.serve.checkpoint import (
    FORMAT_NAME,
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    read_bundle,
    state_fingerprint,
    write_bundle,
)
from repro.serve.executor import (
    EXECUTOR_STRATEGIES,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ThreadShardExecutor,
)
from repro.serve.journal import JournalRecord, ReleaseJournal
from repro.serve.policy import POLICY_ENV_VARS, RetryPolicy
from repro.serve.sharded import ShardedService
from repro.serve.streaming import StreamingSynthesizer
from repro.serve.supervisor import SupervisedService

__all__ = [
    "StreamingSynthesizer",
    "ShardedService",
    "SupervisedService",
    "ReleaseJournal",
    "JournalRecord",
    "RetryPolicy",
    "POLICY_ENV_VARS",
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "EXECUTOR_STRATEGIES",
    "read_bundle",
    "write_bundle",
    "state_fingerprint",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
]
