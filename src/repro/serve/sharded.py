"""Multi-tenant scaling: one logical stream over K independent shards.

A :class:`ShardedService` partitions the population across ``K``
independent :class:`~repro.serve.streaming.StreamingSynthesizer` shards.
Each shard runs the full algorithm on its own disjoint sub-population
with its *own* zCDP accountant — because the shards hold disjoint
individuals, parallel composition applies and the service-wide guarantee
is the **maximum** per-shard spend, not the sum.  Query answers are
merged as population-weighted averages of the per-shard answers, which
for counting queries equals answering from the union of the shards'
synthetic populations.

This is the first scaling primitive toward serving very large panels:
shards are independent state machines (they can be advanced on separate
cores or hosts), and the whole service checkpoints into a single bundle
that nests one streaming bundle per shard.

Example
-------
::

    from repro.serve import ShardedService
    from repro.queries import HammingAtLeast

    service = ShardedService(4, algorithm="cumulative",
                             horizon=12, rho=0.005, seed=0)
    for column in arriving_columns:     # one (n,) bit vector per round
        service.observe_round(column)
    service.answer(HammingAtLeast(3), t=6)
    service.checkpoint("service.ckpt")
"""

from __future__ import annotations

import io

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    ConsistencyError,
    DataValidationError,
    NotFittedError,
    SerializationError,
)
from repro.rng import SeedLike, spawn
from repro.serve.checkpoint import read_bundle, write_bundle
from repro.serve.streaming import _ALGORITHMS, StreamingSynthesizer

__all__ = ["ShardedService"]


class ShardedService:
    """K independent streaming shards behind one observe/answer façade.

    Parameters
    ----------
    n_shards:
        Number of shards ``K >= 1``.  Individuals are assigned
        contiguously (``np.array_split`` order) on the first observed
        round and the assignment is fixed for the stream's lifetime.
    algorithm:
        ``"cumulative"`` (Algorithm 2, default) or ``"fixed_window"``
        (Algorithm 1).
    seed:
        Master seed; each shard receives an independent spawned child
        stream, so results are reproducible for any ``K``.
    **synthesizer_kwargs:
        Forwarded to every shard's synthesizer constructor — for
        ``"cumulative"`` at least ``horizon`` and ``rho``; for
        ``"fixed_window"`` also ``window``.  Note ``rho`` is the
        *per-shard* budget: by parallel composition over disjoint
        sub-populations the whole service satisfies ``rho``-zCDP, not
        ``K * rho``.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``n_shards < 1`` or the algorithm name is unknown.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        algorithm: str = "cumulative",
        seed: SeedLike = None,
        **synthesizer_kwargs,
    ):
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.algorithm = str(algorithm)
        self._boundaries: np.ndarray | None = None  # K+1 split points
        self._poisoned: str | None = None  # set when shard clocks desync
        # One source of truth for supported algorithms: the streaming
        # wrapper's registry, whose constructor classmethods share the
        # algorithm tags (StreamingSynthesizer.cumulative etc.).
        if self.algorithm not in _ALGORITHMS:
            raise ConfigurationError(
                f"algorithm must be one of {sorted(_ALGORITHMS)}, got {algorithm!r}"
            )
        factory = getattr(StreamingSynthesizer, self.algorithm)
        seeds = spawn(seed, self.n_shards)
        self._shards = [
            factory(seed=shard_seed, **synthesizer_kwargs) for shard_seed in seeds
        ]

    @classmethod
    def _from_shards(
        cls,
        shards: list[StreamingSynthesizer],
        algorithm: str,
        boundaries: np.ndarray | None,
    ) -> "ShardedService":
        """Internal: assemble a service around already-built shards."""
        service = object.__new__(cls)
        service.n_shards = len(shards)
        service.algorithm = algorithm
        service._shards = list(shards)
        service._boundaries = boundaries
        service._poisoned = None
        return service

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------

    @property
    def shards(self) -> tuple[StreamingSynthesizer, ...]:
        """The per-shard streaming synthesizers, in assignment order."""
        return tuple(self._shards)

    @property
    def t(self) -> int:
        """Rounds observed so far (identical across shards)."""
        return self._shards[0].t

    @property
    def horizon(self) -> int:
        """Total rounds the stream will carry."""
        return self._shards[0].horizon

    @property
    def n(self) -> int:
        """Total population across all shards."""
        if self._boundaries is None:
            raise NotFittedError("no data observed yet")
        return int(self._boundaries[-1])

    def shard_slices(self) -> list[slice]:
        """The contiguous index range each shard owns.

        Returns
        -------
        list of slice
            ``slice(start, stop)`` per shard, in shard order.

        Raises
        ------
        repro.exceptions.NotFittedError
            Before the first round fixes the assignment.
        """
        if self._boundaries is None:
            raise NotFittedError("no data observed yet")
        bounds = self._boundaries
        return [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(self.n_shards)]

    def observe_round(self, column) -> "ShardedService":
        """Ingest the next round: split the column and advance every shard.

        Parameters
        ----------
        column:
            The round's ``(n,)`` report vector over the *whole*
            population.  The first round fixes ``n`` and the contiguous
            shard assignment; later rounds must match it.

        Returns
        -------
        ShardedService
            ``self``, for chaining with :meth:`answer`.

        Raises
        ------
        repro.exceptions.DataValidationError
            On non-1-D or non-binary input, a population size change, an
            exhausted horizon, or when the population is smaller than the
            shard count.  This validation happens *before* any shard
            advances, so a rejected column leaves every shard's clock
            unchanged and the corrected column can simply be resubmitted.
        repro.exceptions.ConsistencyError
            If a shard fails *mid-round* (only possible through
            noise-dependent per-shard failures such as
            ``on_negative="raise"``): earlier shards have already
            ingested the round, so the service marks itself
            desynchronized and refuses all further operations except
            :meth:`shard_ledgers` — restore from the last checkpoint (or
            use ``on_negative="redistribute"``, the default, which
            cannot fail mid-round).
        """
        self._check_not_poisoned()
        column = np.asarray(column)
        if column.ndim != 1:
            raise DataValidationError(f"column must be 1-D, got shape {column.shape}")
        if column.size and not np.isin(column, (0, 1)).all():
            raise DataValidationError("column entries must be 0 or 1")
        if self.t >= self.horizon:
            raise DataValidationError(f"horizon {self.horizon} already exhausted")
        if self._boundaries is None:
            n = int(column.shape[0])
            if n < self.n_shards:
                raise DataValidationError(
                    f"population {n} is smaller than n_shards={self.n_shards}"
                )
            sizes = np.array(
                [len(part) for part in np.array_split(np.arange(n), self.n_shards)]
            )
            self._boundaries = np.concatenate([[0], np.cumsum(sizes)])
        elif column.shape[0] != self.n:
            raise DataValidationError(
                f"column has {column.shape[0]} entries, expected n={self.n}"
            )
        round_number = self.t + 1  # read before shard 0's clock advances
        advanced = 0
        try:
            for shard, part in zip(self._shards, self.shard_slices()):
                shard.observe_round(column[part])
                advanced += 1
        except Exception:
            # Pre-validation covers every data-level failure, so reaching
            # here means a shard failed *during* its update.  Whether or
            # not earlier shards advanced, the round is now partially
            # ingested and the clocks can no longer be trusted —
            # fail closed instead of serving silently wrong merges.
            self._poisoned = (
                f"round {round_number} failed after {advanced} of "
                f"{self.n_shards} shards ingested it"
            )
            raise
        return self

    def answer(self, query, t: int, **kwargs) -> float:
        """Merged query answer at round ``t``.

        Parameters
        ----------
        query:
            Any query the per-shard releases answer
            (:class:`~repro.queries.cumulative.HammingAtLeast` /
            ``HammingExactly`` for the cumulative algorithm, window
            queries for the fixed-window one).
        t:
            Round to answer at.
        **kwargs:
            Forwarded to every shard release's ``answer`` (e.g.
            ``debias=`` for window queries).

        Returns
        -------
        float
            The population-weighted average of per-shard answers.  Since
            each shard's answer is a fraction of its own (synthetic)
            population, the weighted average equals the fraction over
            the union — exactly what a single unsharded release reports.
        """
        self._check_not_poisoned()
        weighted = 0.0
        total = 0
        for shard in self._shards:
            release = shard.release
            weight = self._merge_weight(release, **kwargs)
            weighted += weight * release.answer(query, t, **kwargs)
            total += weight
        return weighted / total

    def _merge_weight(self, release, **kwargs) -> int:
        """Population weight of one shard's answers."""
        if self.algorithm == "cumulative":
            return release.m
        # Debiased window answers are fractions of the real sub-population;
        # biased ones are fractions of the padded synthetic population.
        if kwargs.get("debias", True):
            return release.n_original
        return release.n_synthetic

    def _check_not_poisoned(self) -> None:
        """Refuse to operate on a desynchronized service."""
        if self._poisoned is not None:
            raise ConsistencyError(
                f"shard clocks are desynchronized ({self._poisoned}); "
                "restore the service from its last checkpoint"
            )

    def zcdp_spent(self) -> float:
        """Service-wide zCDP spend: the *maximum* over shards.

        The shards hold disjoint individuals, so parallel composition
        gives the union mechanism a guarantee of ``max_k rho_k``, not the
        sum.  Returns 0.0 when every shard runs noiseless
        (``rho = inf``).
        """
        spends = [
            shard.synthesizer.accountant.spent
            for shard in self._shards
            if shard.synthesizer.accountant is not None
        ]
        return max(spends, default=0.0)

    def shard_ledgers(self) -> list[tuple[float, float]]:
        """Per-shard ``(spent, remaining)`` zCDP, in shard order.

        Shards running noiseless (``rho = inf``) report ``(0.0, inf)``.
        """
        out = []
        for shard in self._shards:
            accountant = shard.synthesizer.accountant
            if accountant is None:
                out.append((0.0, float("inf")))
            else:
                out.append((accountant.spent, accountant.remaining))
        return out

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def checkpoint(self, path) -> None:
        """Serialize the whole service (all shards) into one bundle.

        Parameters
        ----------
        path:
            Target file path or writable binary file object.  The bundle
            nests one complete streaming bundle per shard (stored as
            bytes inside the service's ``arrays.npz``), so shard state
            inherits the same integrity checks.

        Raises
        ------
        repro.exceptions.SerializationError
            If any shard state cannot be serialized.
        """
        self._check_not_poisoned()
        shard_blobs: dict = {}
        for index, shard in enumerate(self._shards):
            buffer = io.BytesIO()
            shard.checkpoint(buffer)
            shard_blobs[str(index)] = {
                "bundle": np.frombuffer(buffer.getvalue(), dtype=np.uint8)
            }
        state = {"shards": shard_blobs}
        if self._boundaries is not None:
            state["boundaries"] = np.asarray(self._boundaries, dtype=np.int64)
        write_bundle(
            path,
            kind="sharded",
            config={"algorithm": self.algorithm, "n_shards": self.n_shards},
            state=state,
            # The shard blobs are complete bundles (already compressed);
            # deflating them again would only burn CPU.
            compress_arrays=False,
        )

    @classmethod
    def restore(cls, path) -> "ShardedService":
        """Resume a service from a :meth:`checkpoint` bundle.

        Parameters
        ----------
        path:
            Bundle file path or readable binary file object.

        Returns
        -------
        ShardedService
            A service whose future rounds and answers are byte-identical
            to the uninterrupted one's.

        Raises
        ------
        repro.exceptions.SerializationError
            If the bundle (or any nested shard bundle) is corrupt,
            tampered with, or version-mismatched.
        """
        config, state = read_bundle(path, kind="sharded")
        try:
            algorithm = str(config["algorithm"])
            n_shards = int(config["n_shards"])
            shard_blobs = dict(state["shards"])
            shard_keys = sorted(int(k) for k in shard_blobs)
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid sharded bundle: {exc}") from exc
        if n_shards < 1:
            raise SerializationError(
                f"sharded bundle declares n_shards={n_shards}; must be >= 1"
            )
        if shard_keys != list(range(n_shards)):
            raise SerializationError(
                f"sharded bundle must hold shards 0..{n_shards - 1}, "
                f"got {sorted(shard_blobs)}"
            )
        shards = []
        for index in range(n_shards):
            try:
                blob = np.asarray(shard_blobs[str(index)]["bundle"], dtype=np.uint8)
            except (KeyError, TypeError, ValueError) as exc:
                raise SerializationError(
                    f"invalid shard entry {index}: {exc}"
                ) from exc
            shards.append(StreamingSynthesizer.restore(io.BytesIO(blob.tobytes())))
        # Cross-shard consistency: the nested bundles are individually
        # checksummed, but nothing stops a (buggy or foreign) writer from
        # combining shards that never belonged together — fail closed
        # here rather than crash or serve desynced merges later.
        for index, shard in enumerate(shards):
            if shard.algorithm != algorithm:
                raise SerializationError(
                    f"shard {index} runs algorithm {shard.algorithm!r} but the "
                    f"service bundle declares {algorithm!r}"
                )
        clocks = {shard.t for shard in shards}
        if len(clocks) > 1:
            raise SerializationError(
                f"shard clocks are desynchronized: {[s.t for s in shards]}"
            )
        horizons = {shard.horizon for shard in shards}
        if len(horizons) > 1:
            raise SerializationError(
                f"shard horizons disagree: {[s.horizon for s in shards]}"
            )
        boundaries = None
        if next(iter(clocks)) > 0 and "boundaries" not in state:
            raise SerializationError(
                "sharded bundle has fitted shards (t > 0) but no shard "
                "assignment boundaries"
            )
        if "boundaries" in state:
            boundaries = np.asarray(state["boundaries"], dtype=np.int64)
            if boundaries.shape != (n_shards + 1,):
                raise SerializationError(
                    f"boundaries have shape {boundaries.shape}, "
                    f"expected ({n_shards + 1},)"
                )
            if boundaries[0] != 0 or (np.diff(boundaries) < 0).any():
                raise SerializationError(
                    f"assignment boundaries {boundaries.tolist()} must start "
                    "at 0 and be non-decreasing"
                )
            sizes = np.diff(boundaries)
            populations = [shard.synthesizer._n for shard in shards]
            if any(
                n is not None and n != int(size)
                for n, size in zip(populations, sizes)
            ):
                raise SerializationError(
                    f"shard populations {populations} disagree with the "
                    f"assignment boundaries {boundaries.tolist()}"
                )
        return cls._from_shards(shards, algorithm, boundaries)

    def __repr__(self) -> str:
        fitted = self._boundaries is not None
        return (
            f"ShardedService(algorithm={self.algorithm!r}, K={self.n_shards}, "
            f"t={self.t}, n={self.n if fitted else '?'})"
        )
